"""A sqlite-backed streaming loader: million-tuple instances in bounded memory.

Every pre-existing loader path (:class:`~repro.engine.database.Database`,
:func:`~repro.engine.csv_loader.load_csv`, :func:`repro.io`) builds an
object-per-fact :class:`~repro.core.instance.Instance` before anything
else can happen, which caps workloads at what fits in a Python heap —
a few hundred thousand facts.  :class:`StreamingInstanceStore` removes
that cap for the load path:

* rows are **ingested in chunks** (from iterators, ``.tbl`` files, or
  CSV) into one sqlite table per relation, with set semantics (a
  primary key over all value columns + ``INSERT OR IGNORE``) matching
  ``Instance``'s frozenset exactly;
* every value is stored in a canonical JSON encoding (type-faithful
  for the JSON scalars: ``1`` and ``"1"`` stay distinct) next to a
  precomputed ``str(fact)`` sort key, so every scan — and therefore
  every downstream id assignment — is deterministic and identical to
  the in-memory ``sorted(..., key=str)`` order;
* **consistency and conflicts are computed in SQL**: per FD, a
  ``GROUP BY`` over the left-hand-side columns with a
  ``COUNT(DISTINCT rhs)`` detects violating groups without
  materializing a single :class:`Fact`;
* only the **conflict kernel** — the facts participating in at least
  one conflict — is ever materialized at scale.  Facts outside every
  conflict belong to every repair and cannot affect any optimality
  verdict, so checking, repairing, and priority assignment all happen
  on the kernel, whose size tracks the injected-violation count, not
  the instance;
* the kernel's :class:`~repro.core.interning.FactInterner` and
  :class:`~repro.core.bitset_index.BitsetConflictIndex` are built from
  **chunked scans** of the store (the scan order *is* interning
  order), never from a full ``Instance``.

For small instances :meth:`StreamingInstanceStore.to_instance` also
materializes the whole store, which is what the loader-equivalence
property suite uses to hold the streaming path to the in-memory path:
identical interner fingerprints, conflict sets, and checker verdicts
across chunk sizes.
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.bitset_index import BitsetConflictIndex
from repro.core.fact import Fact
from repro.core.fd import FD
from repro.core.instance import Instance
from repro.core.interning import FactInterner
from repro.core.schema import Schema
from repro.exceptions import ReproError, UsageError

__all__ = [
    "StreamingInstanceStore",
    "encode_value",
    "decode_value",
    "canonical_value",
    "fact_sort_key",
]

#: Values crossing the streaming boundary must be JSON scalars — the
#: same closure the wire protocol and the journal accept.
_SCALAR_TYPES = (str, int, float, bool, type(None))

#: Joins encoded rhs columns into one group expression.  json.dumps
#: with ensure_ascii=True escapes every control character, so the unit
#: separator can never occur inside an encoded value.
_RHS_SEPARATOR = "\x1f"

DEFAULT_CHUNK_SIZE = 8192


def encode_value(value: Any) -> str:
    """The type-faithful column encoding of one constant.

    This is the encoding scans decode back out; it distinguishes
    ``1``/``1.0``/``True`` so the surviving fact keeps its exact
    values.  Equality, deduplication, and FD grouping run on
    :func:`canonical_value` instead.
    """
    if not isinstance(value, _SCALAR_TYPES):
        raise UsageError(
            f"the streaming loader stores JSON scalars only, got "
            f"{type(value).__name__}: {value!r}"
        )
    return json.dumps(value)


def decode_value(text: str) -> Any:
    """Inverse of :func:`encode_value`."""
    return json.loads(text)


def canonical_value(value: Any) -> str:
    """An encoding with ``x == y  ⇔  canonical_value(x) == canonical_value(y)``.

    Python's value equality crosses the numeric types — ``0 == False``,
    ``1 == 1.0 == True`` — and :class:`Fact` equality (hence frozenset
    deduplication and conflict detection) inherits it.  The SQL side
    must agree, so primary keys and FD ``GROUP BY`` columns hold this
    encoding: every bool and every integral float collapses onto its
    ``int`` equal (exact — integral floats convert losslessly), while
    strings, ``None``, and non-integral floats keep their
    :func:`encode_value` form, which never collides with an int's.
    """
    if isinstance(value, bool):
        return json.dumps(int(value))
    if isinstance(value, float) and value.is_integer():
        return json.dumps(int(value))
    return encode_value(value)


def fact_sort_key(relation: str, values: Sequence[Any]) -> str:
    """``str(Fact(relation, values))`` computed without building the fact.

    This is the total order the whole codebase sorts facts by
    (``sorted(..., key=str)``), precomputed at ingest so sqlite can
    ``ORDER BY`` it and hand back scans in interning order.
    """
    inner = ", ".join(repr(value) for value in values)
    return f"{relation}({inner})"


def _table(relation: str) -> str:
    return f't_{relation}'


def _columns(arity: int) -> List[str]:
    """The canonical-encoding columns (keys, grouping, equality)."""
    return [f"c{i}" for i in range(1, arity + 1)]


def _value_columns(arity: int) -> List[str]:
    """The type-faithful columns (what scans decode back out)."""
    return [f"v{i}" for i in range(1, arity + 1)]


class StreamingInstanceStore:
    """Chunked sqlite ingestion and SQL-side conflict analysis.

    Parameters
    ----------
    schema:
        The fixed schema; one table per relation symbol is created.
    path:
        sqlite database location.  The default ``":memory:"`` bounds
        memory by the *instance* size (fine for tests); pass a file
        path for genuinely bounded-memory loads at scale.
    chunk_size:
        Rows per ``executemany`` batch and per cursor fetch.

    Examples
    --------
    >>> from repro.core import Schema
    >>> schema = Schema.single_relation(["1 -> 2"], arity=2)
    >>> store = StreamingInstanceStore(schema)
    >>> store.ingest_rows("R", [(1, "a"), (1, "b"), (2, "c"), (1, "a")])
    3
    >>> store.is_consistent()
    False
    >>> sorted(map(str, store.conflict_kernel()))
    ["R(1, 'a')", "R(1, 'b')"]
    """

    def __init__(
        self,
        schema: Schema,
        path: Union[str, Path] = ":memory:",
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        if chunk_size < 1:
            raise UsageError(f"chunk_size must be >= 1, got {chunk_size}")
        self._schema = schema
        self._path = str(path)
        self._chunk_size = chunk_size
        try:
            self._connection = sqlite3.connect(self._path)
        except sqlite3.Error as exc:
            raise ReproError(
                f"cannot open streaming store at {self._path!r}: {exc}"
            ) from exc
        # The store is an analysis scratch space, not a system of
        # record: crash durability buys nothing here, write speed does.
        self._connection.execute("PRAGMA journal_mode = MEMORY")
        self._connection.execute("PRAGMA synchronous = OFF")
        self._arity = {
            symbol.name: symbol.arity for symbol in schema.signature
        }
        for name in sorted(self._arity):
            columns = _columns(self._arity[name])
            value_columns = _value_columns(self._arity[name])
            column_spec = ", ".join(
                f"{c} TEXT NOT NULL" for c in columns + value_columns
            )
            # The primary key spans the *canonical* columns, so sqlite
            # deduplicates by Python value equality (0 == False,
            # 1 == 1.0) exactly as frozenset construction would; the
            # v-columns keep the first-inserted row's faithful values,
            # matching which representative a set insert keeps.
            self._connection.execute(
                f'CREATE TABLE IF NOT EXISTS "{_table(name)}" '
                f"(skey TEXT NOT NULL, {column_spec}, "
                f"PRIMARY KEY ({', '.join(columns)})) WITHOUT ROWID"
            )
        self._connection.commit()

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Close the sqlite connection (idempotent)."""
        self._connection.close()

    def __enter__(self) -> "StreamingInstanceStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    @property
    def schema(self) -> Schema:
        """The fixed schema."""
        return self._schema

    @property
    def path(self) -> str:
        """The sqlite database location backing this store."""
        return self._path

    # -- ingestion -----------------------------------------------------------

    def _require_relation(self, relation: str) -> int:
        arity = self._arity.get(relation)
        if arity is None:
            from repro.exceptions import UnknownRelationError

            raise UnknownRelationError(relation)
        return arity

    def ingest_rows(
        self, relation: str, rows: Iterable[Sequence[Any]]
    ) -> int:
        """Chunked set-semantics insert; returns rows actually added.

        Duplicate rows (within the stream or against prior ingests)
        collapse silently, matching frozenset construction.  Memory use
        is bounded by ``chunk_size``, never by the stream length.
        """
        arity = self._require_relation(relation)
        columns = _columns(arity) + _value_columns(arity)
        statement = (
            f'INSERT OR IGNORE INTO "{_table(relation)}" '
            f"(skey, {', '.join(columns)}) "
            f"VALUES ({', '.join('?' * (2 * arity + 1))})"
        )
        connection = self._connection
        inserted = 0
        batch: List[Tuple[str, ...]] = []

        def flush() -> int:
            cursor = connection.executemany(statement, batch)
            batch.clear()
            return cursor.rowcount

        for row in rows:
            values = tuple(row)
            if len(values) != arity:
                raise UsageError(
                    f"relation {relation!r} has arity {arity}, got a row "
                    f"of width {len(values)}: {values!r}"
                )
            batch.append(
                (fact_sort_key(relation, values),)
                + tuple(canonical_value(value) for value in values)
                + tuple(encode_value(value) for value in values)
            )
            if len(batch) >= self._chunk_size:
                inserted += flush()
        if batch:
            inserted += flush()
        connection.commit()
        return inserted

    def ingest_tbl(
        self,
        relation: str,
        path: Union[str, Path],
        converters: Optional[Sequence[Callable[[str], Any]]] = None,
    ) -> int:
        """Ingest a TPC-H ``.tbl`` file (pipe-delimited, trailing pipe).

        ``converters`` restores column types (default: keep strings).
        """
        arity = self._require_relation(relation)
        if converters is not None and len(converters) != arity:
            raise UsageError(
                f"got {len(converters)} converters for relation "
                f"{relation!r} of arity {arity}"
            )

        def typed_rows() -> Iterator[Tuple[Any, ...]]:
            with open(path, newline="") as handle:
                for line_number, line in enumerate(handle, start=1):
                    line = line.rstrip("\n")
                    if not line:
                        continue
                    cells = line.split("|")
                    if cells and cells[-1] == "":
                        cells = cells[:-1]
                    if len(cells) != arity:
                        raise UsageError(
                            f"{path}:{line_number}: expected {arity} "
                            f"columns for {relation!r}, got {len(cells)}"
                        )
                    if converters is None:
                        yield tuple(cells)
                        continue
                    try:
                        yield tuple(
                            convert(cell)
                            for convert, cell in zip(converters, cells)
                        )
                    except (TypeError, ValueError) as exc:
                        raise UsageError(
                            f"{path}:{line_number}: cannot convert row: "
                            f"{exc}"
                        ) from exc

        return self.ingest_rows(relation, typed_rows())

    def ingest_csv(
        self,
        relation: str,
        path: Union[str, Path],
        converters: Optional[Sequence[Callable[[str], Any]]] = None,
        has_header: bool = True,
        delimiter: str = ",",
    ) -> int:
        """Ingest a CSV export, mirroring
        :func:`repro.engine.csv_loader.load_csv`'s conventions but in
        bounded memory."""
        import csv as csv_module

        arity = self._require_relation(relation)
        if converters is not None and len(converters) != arity:
            raise UsageError(
                f"got {len(converters)} converters for relation "
                f"{relation!r} of arity {arity}"
            )

        def typed_rows() -> Iterator[Tuple[Any, ...]]:
            with open(path, newline="") as handle:
                reader = csv_module.reader(handle, delimiter=delimiter)
                for row_number, cells in enumerate(reader):
                    if has_header and row_number == 0:
                        continue
                    if not cells or all(not c.strip() for c in cells):
                        continue
                    if len(cells) != arity:
                        raise UsageError(
                            f"{path}:{row_number + 1}: expected {arity} "
                            f"columns for {relation!r}, got {len(cells)}"
                        )
                    if converters is None:
                        yield tuple(cells)
                        continue
                    try:
                        yield tuple(
                            convert(cell)
                            for convert, cell in zip(converters, cells)
                        )
                    except (TypeError, ValueError) as exc:
                        raise UsageError(
                            f"{path}:{row_number + 1}: cannot convert "
                            f"row: {exc}"
                        ) from exc

        return self.ingest_rows(relation, typed_rows())

    # -- counting and scanning -----------------------------------------------

    def fact_count(self, relation: Optional[str] = None) -> int:
        """Distinct facts stored, overall or for one relation."""
        if relation is not None:
            self._require_relation(relation)
            names = [relation]
        else:
            names = sorted(self._arity)
        total = 0
        for name in names:
            row = self._connection.execute(
                f'SELECT COUNT(*) FROM "{_table(name)}"'
            ).fetchone()
            total += row[0]
        return total

    def _iter_decoded(
        self, relation: str, chunk_size: Optional[int] = None
    ) -> Iterator[Tuple[Any, ...]]:
        arity = self._arity[relation]
        columns = ", ".join(_value_columns(arity))
        cursor = self._connection.execute(
            f'SELECT {columns} FROM "{_table(relation)}" ORDER BY skey'
        )
        size = chunk_size or self._chunk_size
        while True:
            chunk = cursor.fetchmany(size)
            if not chunk:
                return
            for encoded in chunk:
                yield tuple(decode_value(cell) for cell in encoded)

    def iter_rows(
        self, relation: str, chunk_size: Optional[int] = None
    ) -> Iterator[Tuple[Any, ...]]:
        """Stream one relation's rows in deterministic (``str``) order."""
        self._require_relation(relation)
        return self._iter_decoded(relation, chunk_size)

    def iter_facts(
        self,
        relation: Optional[str] = None,
        chunk_size: Optional[int] = None,
    ) -> Iterator[Fact]:
        """Stream facts in global interning (``str``-sorted) order.

        Per-relation streams are already skey-ordered; the global
        stream is their k-way merge, so the whole-store scan is also
        ``str``-sorted — table name order and sort-key order coincide
        because ``str(fact)`` starts with the relation name.
        """
        if relation is not None:
            self._require_relation(relation)
            names = [relation]
        else:
            names = sorted(self._arity)
        for name in names:
            for values in self._iter_decoded(name, chunk_size):
                yield Fact(name, values)

    # -- SQL-side consistency and conflicts ----------------------------------

    def _fd_sql_parts(self, fd: FD) -> Tuple[str, str]:
        """``(lhs column list, rhs group expression)`` for one FD."""
        lhs = ", ".join(f"c{p}" for p in fd.lhs_sorted)
        rhs = f" || '{_RHS_SEPARATOR}' || ".join(
            f"c{p}" for p in fd.rhs_sorted
        )
        return lhs, rhs

    def _nontrivial_fds(self) -> List[FD]:
        return sorted(
            (fd for fd in self._schema.fds if not fd.is_trivial()), key=str
        )

    def fd_violations(self, fd: FD) -> int:
        """How many lhs groups violate ``fd`` (0 = satisfied)."""
        if fd.is_trivial():
            return 0
        self._require_relation(fd.relation)
        lhs, rhs = self._fd_sql_parts(fd)
        if not lhs:
            # Constant-attribute FD ∅ → B: one global group.
            row = self._connection.execute(
                f'SELECT COUNT(DISTINCT {rhs}) FROM "{_table(fd.relation)}"'
            ).fetchone()
            return 1 if row[0] > 1 else 0
        row = self._connection.execute(
            f"SELECT COUNT(*) FROM ("
            f'SELECT 1 FROM "{_table(fd.relation)}" '
            f"GROUP BY {lhs} HAVING COUNT(DISTINCT {rhs}) > 1)"
        ).fetchone()
        return row[0]

    def is_consistent(self) -> bool:
        """Whether the stored instance satisfies every schema FD —
        answered entirely in SQL, no fact materialization."""
        return all(self.fd_violations(fd) == 0 for fd in self._nontrivial_fds())

    def conflict_summary(self) -> Dict[str, int]:
        """``{str(fd): violating-group count}`` over all schema FDs."""
        return {
            str(fd): self.fd_violations(fd) for fd in self._nontrivial_fds()
        }

    def iter_conflict_facts(self, fd: FD) -> Iterator[Fact]:
        """Stream the facts of every ``fd``-violating group, in
        deterministic (``str``) order."""
        if fd.is_trivial():
            return
        self._require_relation(fd.relation)
        arity = self._arity[fd.relation]
        columns = ", ".join(_value_columns(arity))
        lhs, rhs = self._fd_sql_parts(fd)
        table = _table(fd.relation)
        if not lhs:
            query = (
                f'SELECT {columns} FROM "{table}" '
                f"WHERE (SELECT COUNT(DISTINCT {rhs}) "
                f'FROM "{table}") > 1 ORDER BY skey'
            )
        else:
            query = (
                f'SELECT {columns} FROM "{table}" '
                f"WHERE ({lhs}) IN ("
                f'SELECT {lhs} FROM "{table}" '
                f"GROUP BY {lhs} HAVING COUNT(DISTINCT {rhs}) > 1) "
                f"ORDER BY skey"
            )
        cursor = self._connection.execute(query)
        while True:
            chunk = cursor.fetchmany(self._chunk_size)
            if not chunk:
                return
            for encoded in chunk:
                yield Fact(
                    fd.relation,
                    tuple(decode_value(cell) for cell in encoded),
                )

    def conflict_kernel(self) -> Instance:
        """The sub-instance of facts participating in >= 1 conflict.

        This is the only materialization the scale path performs: its
        size is bounded by the number of conflicting facts (for an
        injected workload, by the injection manifest), never by the
        instance.  Facts outside the kernel conflict with nothing, so
        they belong to every repair and no checker verdict depends on
        them.
        """
        kernel: List[Fact] = []
        seen: set = set()
        for fd in self._nontrivial_fds():
            for fact in self.iter_conflict_facts(fd):
                if fact not in seen:
                    seen.add(fact)
                    kernel.append(fact)
        return Instance(self._schema.signature, kernel)

    def conflict_pairs(self) -> FrozenSet[FrozenSet[Fact]]:
        """Every conflicting fact pair, as unordered pairs.

        Materializes per violating group only; at scale this is the
        manifest cross-check surface, not a hot path.
        """
        pairs: List[FrozenSet[Fact]] = []
        for fd in self._nontrivial_fds():
            groups: Dict[Tuple[Any, ...], List[Fact]] = {}
            for fact in self.iter_conflict_facts(fd):
                groups.setdefault(
                    fact.project(fd.lhs_sorted), []
                ).append(fact)
            for members in groups.values():
                for i, left in enumerate(members):
                    for right in members[i + 1:]:
                        if left.project(fd.rhs_sorted) != right.project(
                            fd.rhs_sorted
                        ):
                            pairs.append(frozenset((left, right)))
        return frozenset(pairs)

    # -- materialization and index construction ------------------------------

    def to_instance(self) -> Instance:
        """Materialize the **whole** store as an in-memory instance.

        For small instances and the equivalence suite only — this is
        exactly the object-per-fact construction the streaming path
        exists to avoid at scale.
        """
        return Instance(self._schema.signature, self.iter_facts())

    def build_interner(
        self,
        kernel_only: bool = True,
        chunk_size: Optional[int] = None,
    ) -> FactInterner:
        """A :class:`FactInterner` fed by chunked store scans.

        With ``kernel_only`` (the default, the scale path) only
        conflict-participating facts are interned; otherwise the whole
        store streams through.  Either way the scan arrives in
        ``str``-sorted order, so the assigned ids are identical to what
        in-memory construction over the same fact set would assign.
        """
        if kernel_only:
            facts = sorted(self.conflict_kernel().facts, key=str)
            return FactInterner._from_sorted(facts)
        return FactInterner._from_sorted(
            self.iter_facts(chunk_size=chunk_size)
        )

    def build_bitset_index(
        self,
        kernel_only: bool = True,
        chunk_size: Optional[int] = None,
    ) -> BitsetConflictIndex:
        """A :class:`BitsetConflictIndex` built without a full instance.

        The per-FD block partitions compile from the interner's id
        order (one pass over the chunk-fed facts); the carried
        ``Instance`` is the kernel (or, for ``kernel_only=False``, the
        fully materialized store, small-instance use only).
        """
        if kernel_only:
            instance = self.conflict_kernel()
            interner = FactInterner._from_sorted(
                sorted(instance.facts, key=str)
            )
        else:
            interner = self.build_interner(
                kernel_only=False, chunk_size=chunk_size
            )
            instance = Instance._from_validated(
                self._schema.signature, frozenset(interner.facts)
            )
        return BitsetConflictIndex(self._schema, instance, interner)

    def __repr__(self) -> str:
        return (
            f"StreamingInstanceStore({self.fact_count()} facts at "
            f"{self._path!r})"
        )
