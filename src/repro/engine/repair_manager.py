"""High-level repair management: the "clean my database" API.

:class:`RepairManager` wraps a sealed prioritizing instance and exposes
the repair-theoretic operations a downstream user actually wants:

* enumerate repairs (all / Pareto-optimal / globally-optimal /
  completion-optimal);
* check a candidate under any semantics;
* produce one preferred repair (``clean``), greedily or exhaustively;
* report whether the preferences pin down a *unique* globally-optimal
  repair — the "unambiguous cleaning" condition the paper's concluding
  remarks single out as important.

Enumeration is exponential in general (there can be exponentially many
repairs); ``clean`` and ``check`` are polynomial whenever the schema is
on the tractable side of the applicable dichotomy.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.checking import (
    CheckResult,
    check_completion_optimal,
    check_globally_optimal,
    check_pareto_optimal,
    greedy_completion_repair,
)
from repro.core.instance import Instance
from repro.core.priority import PrioritizingInstance
from repro.core.repairs import enumerate_repairs
from repro.engine.database import Database

from repro.exceptions import UsageError
__all__ = ["RepairManager"]


class RepairManager:
    """Repair operations over a sealed prioritizing instance.

    Examples
    --------
    >>> from repro.core import Schema
    >>> schema = Schema.single_relation(["1 -> 2"], relation="City", arity=2)
    >>> db = Database(schema)
    >>> good = db.insert("City", ("paris", "france"))
    >>> bad = db.insert("City", ("paris", "texas"))
    >>> db.prefer(good, bad)
    >>> manager = RepairManager.from_database(db)
    >>> cleaned = manager.clean()
    >>> good in cleaned
    True
    """

    def __init__(self, prioritizing: PrioritizingInstance) -> None:
        self._prioritizing = prioritizing

    @classmethod
    def from_database(cls, database: Database, ccp: bool = False) -> "RepairManager":
        """Seal ``database`` and manage its repairs."""
        return cls(database.seal(ccp=ccp))

    @property
    def prioritizing(self) -> PrioritizingInstance:
        """The underlying prioritizing instance."""
        return self._prioritizing

    # -- checking -----------------------------------------------------------------

    def check(self, candidate: Instance, semantics: str = "global") -> CheckResult:
        """Repair-check ``candidate`` under the given semantics.

        ``semantics`` is ``"global"``, ``"pareto"``, or ``"completion"``.
        """
        if semantics == "global":
            return check_globally_optimal(self._prioritizing, candidate)
        if semantics == "pareto":
            return check_pareto_optimal(self._prioritizing, candidate)
        if semantics == "completion":
            return check_completion_optimal(self._prioritizing, candidate)
        raise UsageError(f"unknown semantics {semantics!r}")

    # -- enumeration ---------------------------------------------------------------

    def repairs(self) -> Iterator[Instance]:
        """All (classical subset) repairs.  Exponential in general."""
        return enumerate_repairs(
            self._prioritizing.schema, self._prioritizing.instance
        )

    def optimal_repairs(self, semantics: str = "global") -> Iterator[Instance]:
        """All repairs optimal under the given semantics."""
        for repair in self.repairs():
            if self.check(repair, semantics=semantics).is_optimal:
                yield repair

    def count_optimal_repairs(self, semantics: str = "global") -> int:
        """How many optimal repairs exist under the given semantics.

        When every ``Δ|R`` is equivalent to a single FD and the
        priorities are classical, the count is computed by the
        polynomial per-block argument of
        :mod:`repro.core.counting_optimal` instead of enumerating every
        repair and re-checking each one; otherwise the enumeration
        fallback runs.  Both paths return the same number (asserted by
        the regression tests).
        """
        if self._has_single_fd_fast_count(semantics):
            from repro.core.counting_optimal import (
                count_globally_optimal_repairs,
                count_pareto_optimal_repairs,
            )

            counter = (
                count_globally_optimal_repairs
                if semantics == "global"
                else count_pareto_optimal_repairs
            )
            return counter(self._prioritizing)
        return sum(1 for _ in self.optimal_repairs(semantics=semantics))

    def _has_single_fd_fast_count(self, semantics: str) -> bool:
        """Whether the dedicated polynomial counting path applies."""
        if self._prioritizing.is_ccp or semantics not in ("global", "pareto"):
            return False
        from repro.core.classification import equivalent_single_fd

        schema = self._prioritizing.schema
        return all(
            equivalent_single_fd(schema.fds_for(relation.name)) is not None
            for relation in schema.signature
        )

    def has_unique_optimal_repair(self, semantics: str = "global") -> bool:
        """Whether the priorities define an *unambiguous* cleaning.

        The paper's concluding remarks highlight characterizing
        uniqueness of the globally-optimal repair as an open direction;
        this predicate decides it by (early-exiting) enumeration.
        """
        found = 0
        for _ in self.optimal_repairs(semantics=semantics):
            found += 1
            if found > 1:
                return False
        return found == 1

    # -- cleaning ------------------------------------------------------------------

    def clean(self, seed: int = 0) -> Instance:
        """One preferred repair, produced greedily (polynomial).

        The greedy run yields a completion-optimal repair, and the
        semantics nest — every completion-optimal repair is globally
        optimal (an improvement under ``≻`` is an improvement under any
        completion ``≻' ⊇ ≻``), and every globally-optimal repair is
        Pareto-optimal — so the result is optimal under *all three*
        semantics.  This is the right default "just clean it" strategy:
        existence is guaranteed and the cost is polynomial for every
        schema.
        """
        return greedy_completion_repair(self._prioritizing, _rng(seed))


def _rng(seed: int):
    import random

    return random.Random(seed)
