"""A small in-memory relational database with FD enforcement hooks.

:class:`Database` is the mutable front end of the library: a downstream
user loads possibly-dirty data into named tables, declares priorities
between facts (directly or through rules such as "prefer source X"),
and hands the result to :class:`~repro.engine.repair_manager.RepairManager`
for cleaning.  Internally everything is converted to the immutable core
types, so the algorithmic layer stays purely functional.

Unlike a conventional DBMS, inserting a conflicting fact is *allowed* —
inconsistency is the object of study — but the database tracks conflicts
incrementally so that ``conflicts()`` and ``is_consistent()`` stay cheap.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.conflicts import conflicting_pairs
from repro.core.fact import Fact
from repro.core.instance import Instance
from repro.core.priority import PrioritizingInstance, PriorityRelation
from repro.core.schema import Schema
from repro.exceptions import InvalidPriorityError, UnknownRelationError

__all__ = ["Database"]

#: A priority rule maps a conflicting pair to the preferred fact (or
#: None to abstain).  Rules never see non-conflicting pairs.
PriorityRule = Callable[[Fact, Fact], Optional[Fact]]


class Database:
    """A mutable, possibly-inconsistent database over a fixed schema.

    Examples
    --------
    >>> schema = Schema.single_relation(["1 -> 2"], relation="City", arity=2)
    >>> db = Database(schema)
    >>> good = db.insert("City", ("paris", "france"))
    >>> bad = db.insert("City", ("paris", "texas"))
    >>> db.is_consistent()
    False
    >>> len(db.conflicts())
    1
    """

    def __init__(self, schema: Schema) -> None:
        self._schema = schema
        self._facts: Set[Fact] = set()
        self._priority_edges: Set[Tuple[Fact, Fact]] = set()

    # -- data manipulation ------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The fixed schema."""
        return self._schema

    def insert(self, relation: str, values: Sequence[Any]) -> Fact:
        """Insert a tuple; returns the created :class:`Fact`.

        Duplicate inserts are idempotent (set semantics).
        """
        if relation not in self._schema.signature:
            raise UnknownRelationError(relation)
        fact = Fact(relation, tuple(values))
        # Arity validation happens through Instance construction rules;
        # do it eagerly here for a friendly error.
        expected = self._schema.signature.arity(relation)
        if fact.arity != expected:
            from repro.exceptions import ArityError

            raise ArityError(relation, expected, fact.arity)
        self._facts.add(fact)
        return fact

    def insert_many(
        self, relation: str, rows: Iterable[Sequence[Any]]
    ) -> List[Fact]:
        """Insert several tuples into one relation."""
        return [self.insert(relation, row) for row in rows]

    def delete(self, fact: Fact) -> bool:
        """Remove a fact (and any priorities touching it); False if absent."""
        if fact not in self._facts:
            return False
        self._facts.discard(fact)
        self._priority_edges = {
            (better, worse)
            for better, worse in self._priority_edges
            if better != fact and worse != fact
        }
        return True

    def __len__(self) -> int:
        return len(self._facts)

    def __contains__(self, fact: Fact) -> bool:
        return fact in self._facts

    def facts(self, relation: Optional[str] = None) -> FrozenSet[Fact]:
        """All facts, or those of one relation."""
        if relation is None:
            return frozenset(self._facts)
        if relation not in self._schema.signature:
            raise UnknownRelationError(relation)
        return frozenset(f for f in self._facts if f.relation == relation)

    # -- consistency ---------------------------------------------------------------

    def snapshot(self) -> Instance:
        """The current contents as an immutable :class:`Instance`."""
        return Instance(self._schema.signature, self._facts)

    def is_consistent(self) -> bool:
        """Whether the current contents satisfy every FD."""
        return self._schema.is_consistent(self.snapshot())

    def conflicts(self) -> FrozenSet[FrozenSet[Fact]]:
        """All conflicting fact pairs currently present."""
        return conflicting_pairs(self._schema, self.snapshot())

    # -- priorities ------------------------------------------------------------------

    def prefer(self, better: Fact, worse: Fact) -> None:
        """Declare ``better ≻ worse`` (both facts must be present).

        Acyclicity and the conflicting-facts restriction are validated
        when the database is sealed into a prioritizing instance, so
        bulk loading stays cheap.
        """
        if better not in self._facts or worse not in self._facts:
            raise InvalidPriorityError(
                "both facts must be inserted before declaring a priority"
            )
        self._priority_edges.add((better, worse))

    def apply_priority_rule(self, rule: PriorityRule) -> int:
        """Run ``rule`` over every conflicting pair; returns edges added.

        The rule receives the two facts of each conflicting pair and
        returns the preferred one (or None to leave the pair
        unordered).  This is how "prefer the curated source" or "prefer
        the newer timestamp" policies are expressed.
        """
        added = 0
        for pair in self.conflicts():
            fact_a, fact_b = sorted(pair, key=str)
            winner = rule(fact_a, fact_b)
            if winner is None:
                continue
            if winner not in pair:
                raise InvalidPriorityError(
                    f"priority rule returned {winner}, which is not a "
                    f"member of the conflicting pair"
                )
            loser = fact_b if winner == fact_a else fact_a
            if (winner, loser) not in self._priority_edges:
                self._priority_edges.add((winner, loser))
                added += 1
        return added

    def priority_edges(self) -> FrozenSet[Tuple[Fact, Fact]]:
        """The declared ``(better, worse)`` pairs."""
        return frozenset(self._priority_edges)

    def seal(self, ccp: bool = False) -> PrioritizingInstance:
        """Freeze the database into a validated prioritizing instance.

        Raises if the declared priorities are cyclic, or (without
        ``ccp``) relate non-conflicting facts.
        """
        return PrioritizingInstance(
            self._schema,
            self.snapshot(),
            PriorityRelation(self._priority_edges),
            ccp=ccp,
        )

    def __repr__(self) -> str:
        return (
            f"Database({len(self._facts)} facts, "
            f"{len(self._priority_edges)} priorities, "
            f"{'consistent' if self.is_consistent() else 'inconsistent'})"
        )
