"""The user-facing database engine: mutable tables plus repair management.

:class:`Database` holds possibly-inconsistent data and priority
declarations; :class:`RepairManager` seals it and answers the
repair-theoretic questions (check / enumerate / clean).
:class:`StreamingInstanceStore` is the scale path: sqlite-backed
chunked ingestion and SQL-side conflict analysis for instances too
large to materialize fact-by-fact.
"""

from repro.engine.csv_loader import load_csv, load_tagged_sources
from repro.engine.database import Database
from repro.engine.repair_manager import RepairManager
from repro.engine.rules import (
    attribute_order,
    chain,
    newer_timestamp,
    source_ranking,
)
from repro.engine.streaming import StreamingInstanceStore

__all__ = [
    "Database",
    "RepairManager",
    "StreamingInstanceStore",
    "load_csv",
    "load_tagged_sources",
    "newer_timestamp",
    "source_ranking",
    "attribute_order",
    "chain",
]
