"""CSV ingestion for the database engine.

Real cleaning workloads arrive as CSV exports; this module loads them
into a :class:`~repro.engine.database.Database` with optional typed
columns, and can attach a source tag priority in one step ("everything
from feed A beats conflicting facts from feed B").
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.core.fact import Fact
from repro.engine.database import Database
from repro.exceptions import ReproError

__all__ = ["load_csv", "load_tagged_sources"]

#: A column converter: maps the raw string cell to a constant.
Converter = Callable[[str], Any]


def load_csv(
    database: Database,
    relation: str,
    path: Union[str, Path],
    converters: Optional[Sequence[Optional[Converter]]] = None,
    has_header: bool = True,
    delimiter: str = ",",
) -> List[Fact]:
    """Load a CSV file into one relation of ``database``.

    Parameters
    ----------
    database:
        The target database.
    relation:
        The relation to insert into; the CSV's column count must match
        its arity.
    path:
        The CSV file.
    converters:
        Optional per-column converters (``None`` entries keep the raw
        string), e.g. ``[int, None, float]``.
    has_header:
        Skip the first row when True.
    delimiter:
        The CSV delimiter.

    Returns the inserted facts in file order (duplicates collapse to
    the first occurrence).
    """
    arity = database.schema.signature.arity(relation)
    if converters is not None and len(converters) != arity:
        raise ReproError(
            f"got {len(converters)} converters for relation "
            f"{relation!r} of arity {arity}"
        )
    inserted: List[Fact] = []
    with open(path, newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        for row_number, row in enumerate(reader):
            if has_header and row_number == 0:
                continue
            if not row or all(not cell.strip() for cell in row):
                continue
            if len(row) != arity:
                raise ReproError(
                    f"{path}:{row_number + 1}: expected {arity} columns "
                    f"for relation {relation!r}, got {len(row)}"
                )
            values: List[Any] = []
            for column, cell in enumerate(row):
                converter = (
                    converters[column] if converters is not None else None
                )
                if converter is None:
                    values.append(cell)
                    continue
                try:
                    values.append(converter(cell))
                except (TypeError, ValueError) as exc:
                    raise ReproError(
                        f"{path}:{row_number + 1}: column {column + 1}: "
                        f"cannot convert {cell!r}: {exc}"
                    ) from exc
            inserted.append(database.insert(relation, values))
    return inserted


def load_tagged_sources(
    database: Database,
    relation: str,
    sources: Sequence[Union[str, Path]],
    converters: Optional[Sequence[Optional[Converter]]] = None,
    has_header: bool = True,
    delimiter: str = ",",
) -> Dict[str, List[Fact]]:
    """Load several CSV feeds with earlier feeds outranking later ones.

    ``sources`` is ordered most-trusted first.  After loading, every
    conflicting pair whose facts come from *differently ranked* feeds
    gets a priority edge toward the more trusted fact (ties and facts
    appearing in several feeds take their best rank).

    Returns ``{source_path: facts}``.
    """
    loaded: Dict[str, List[Fact]] = {}
    rank: Dict[Fact, int] = {}
    for position, source in enumerate(sources):
        facts = load_csv(
            database,
            relation,
            source,
            converters=converters,
            has_header=has_header,
            delimiter=delimiter,
        )
        loaded[str(source)] = facts
        for fact in facts:
            rank[fact] = min(rank.get(fact, position), position)

    def prefer_trusted(fact_a: Fact, fact_b: Fact) -> Optional[Fact]:
        rank_a = rank.get(fact_a)
        rank_b = rank.get(fact_b)
        if rank_a is None or rank_b is None or rank_a == rank_b:
            return None
        return fact_a if rank_a < rank_b else fact_b

    database.apply_priority_rule(prefer_trusted)
    return loaded
