"""A library of reusable priority rules for the database engine.

:meth:`Database.apply_priority_rule` accepts any callable mapping a
conflicting fact pair to the preferred fact (or None).  These factories
build the policies that recur in practice — the same policies the
paper's introduction motivates preferred repairs with:

* :func:`newer_timestamp` — prefer the fact with the larger value in a
  designated timestamp attribute;
* :func:`source_ranking` — prefer facts from better-ranked sources
  (per a fact→source tagging function);
* :func:`attribute_order` — prefer by a domain-specific ordering of an
  attribute's values (e.g. status severity);
* :func:`chain` — combine rules, first decisive rule wins.

All factories return plain callables, so they compose with hand-written
rules freely.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Sequence

from repro.core.fact import Fact

__all__ = ["newer_timestamp", "source_ranking", "attribute_order", "chain"]

PriorityRule = Callable[[Fact, Fact], Optional[Fact]]


def newer_timestamp(position: int) -> PriorityRule:
    """Prefer the fact with the larger timestamp at ``position``.

    Facts whose timestamps are equal (or not mutually comparable) stay
    unordered.

    Examples
    --------
    >>> rule = newer_timestamp(3)
    >>> newer = Fact("R", ("k", "v2", 7))
    >>> older = Fact("R", ("k", "v1", 3))
    >>> rule(newer, older) == newer
    True
    """

    def rule(fact_a: Fact, fact_b: Fact) -> Optional[Fact]:
        try:
            time_a, time_b = fact_a[position], fact_b[position]
            if time_a > time_b:
                return fact_a
            if time_b > time_a:
                return fact_b
        except TypeError:
            return None
        return None

    return rule


def source_ranking(
    source_of: Callable[[Fact], Any],
    ranking: Sequence[Any],
) -> PriorityRule:
    """Prefer facts from better-ranked sources.

    ``source_of`` tags each fact with a source; ``ranking`` lists
    sources most-trusted first.  Unknown sources and same-source pairs
    stay unordered.
    """
    rank: Dict[Any, int] = {
        source: position for position, source in enumerate(ranking)
    }

    def rule(fact_a: Fact, fact_b: Fact) -> Optional[Fact]:
        rank_a = rank.get(source_of(fact_a))
        rank_b = rank.get(source_of(fact_b))
        if rank_a is None or rank_b is None or rank_a == rank_b:
            return None
        return fact_a if rank_a < rank_b else fact_b

    return rule


def attribute_order(
    position: int, preference: Sequence[Any]
) -> PriorityRule:
    """Prefer by a value ordering of attribute ``position``.

    ``preference`` lists values most-preferred first; values not listed
    lose to every listed one and tie among themselves.
    """
    rank: Dict[Any, int] = {
        value: index for index, value in enumerate(preference)
    }
    unseen = len(preference)

    def rule(fact_a: Fact, fact_b: Fact) -> Optional[Fact]:
        rank_a = rank.get(fact_a[position], unseen)
        rank_b = rank.get(fact_b[position], unseen)
        if rank_a == rank_b:
            return None
        return fact_a if rank_a < rank_b else fact_b

    return rule


def chain(*rules: PriorityRule) -> PriorityRule:
    """Combine rules: the first rule with an opinion decides.

    Examples
    --------
    >>> by_time = newer_timestamp(2)
    >>> by_value = attribute_order(1, ["gold", "silver"])
    >>> combined = chain(by_time, by_value)
    >>> a = Fact("R", ("silver", 5))
    >>> b = Fact("R", ("gold", 5))
    >>> combined(a, b) == b  # timestamps tie, value order decides
    True
    """

    def rule(fact_a: Fact, fact_b: Fact) -> Optional[Fact]:
        for component in rules:
            winner = component(fact_a, fact_b)
            if winner is not None:
                return winner
        return None

    return rule
