"""The Section 5.2 case branching for arbitrary hard schemas.

The hardness side of Theorem 3.1 is proved by reduction: every
single-relation schema ``S`` violating the tractability condition admits
a consistency-preserving fact transport from one of the six concrete
hard schemas ``S1 … S6``.  *Which* source schema applies is decided by a
case analysis over two distinguished attribute sets:

* ``A`` — a *minimal determiner* of ``Δ`` that is not a key (exists
  whenever ``Δ`` is not equivalent to any set of key constraints);
* ``B`` — a *non-redundant determiner* different from ``A``, minimal
  with respect to containment among those (exists whenever ``Δ`` is not
  equivalent to a single FD).

With ``A⁺ = closure(A)``, ``Â = A⁺ \\ A``, ``B⁺ = closure(B)`` and
``B̂ = B⁺ \\ B``, the paper's cases are:

======  ==========================================================  ======
Case    condition                                                   source
======  ==========================================================  ======
1       ``Δ`` equivalent to ≥ 3 (incomparable) keys                 ``S1``
2       ``A⁺ = B⁺``                                                 ``S2``
3       ``B⁺ ⊄ A⁺``, ``A ∩ B̂ ≠ ∅``, ``Â ∩ B ≠ ∅``                  ``S3``
4       ``B⁺ ⊄ A⁺``, ``A ∩ B̂ ≠ ∅``, ``Â ∩ B = ∅``                  ``S4``
5       ``B⁺ ⊄ A⁺``, ``A ∩ B̂ = ∅``, ``B̂ ⊆ Â``                      ``S5``
6       ``B⁺ ⊄ A⁺``, ``A ∩ B̂ = ∅``, ``B̂ ⊄ Â``                      ``S6``
7       ``A⁺ ⊄ B⁺`` (the residual; symmetric to ``B⁺ ⊄ A⁺``)        —
======  ==========================================================  ======

The published text spells out the transport ``Π`` only for Case 1
(implemented in :mod:`repro.hardness.pi_case1`); for Cases 2–7 it refers
to the full version.  This module therefore implements the complete
*routing* — given any hard schema, which case applies and which concrete
schema anchors its hardness — which experiments E5/E11 combine with
empirical brute-force blowup measurements to exhibit the hardness side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.classification import classify_relation
from repro.core.fd import AttributeSet
from repro.core.fdset import FDSet
from repro.core.schema import Schema
from repro.exceptions import ReproError
from repro.hardness.pi_case1 import minimal_incomparable_keys
from repro.hardness.schemas import HARD_SCHEMAS

__all__ = ["HardnessCase", "analyse_hard_relation"]


@dataclass(frozen=True)
class HardnessCase:
    """The outcome of the Section 5.2 case analysis for one relation.

    Attributes
    ----------
    case:
        The paper's case number, 1–7.
    source_index:
        Which of the six concrete schemas anchors the reduction
        (``1``–``6``); Case 7 reduces symmetrically, so its source is
        the one its mirrored ``B⁺ ⊄ A⁺`` sub-case would use.
    determiner_a, determiner_b:
        The distinguished sets ``A`` and ``B`` (None for Case 1, which
        needs no determiners).
    """

    case: int
    source_index: int
    determiner_a: Optional[AttributeSet] = None
    determiner_b: Optional[AttributeSet] = None

    @property
    def source_schema(self) -> Schema:
        """The concrete hard schema the reduction starts from."""
        return HARD_SCHEMAS[self.source_index]


def _pick_minimal_determiner_not_key(fdset: FDSet) -> AttributeSet:
    for determiner in sorted(fdset.minimal_determiners(), key=sorted):
        if not fdset.is_key(determiner):
            return determiner
    raise ReproError(
        "no non-key minimal determiner found; the schema is equivalent "
        "to a set of keys and belongs to Case 1"
    )


def _pick_minimal_other_non_redundant(
    fdset: FDSet, avoid: AttributeSet
) -> AttributeSet:
    candidates = [
        determiner
        for determiner in fdset.non_redundant_determiners()
        if determiner != avoid
    ]
    if not candidates:
        raise ReproError(
            "no second non-redundant determiner found; the schema is "
            "equivalent to a single FD and is tractable"
        )
    minimal = [
        determiner
        for determiner in candidates
        if not any(other < determiner for other in candidates)
    ]
    return sorted(minimal, key=sorted)[0]


def analyse_hard_relation(fdset: FDSet) -> HardnessCase:
    """Run the Section 5.2 case analysis on a hard ``Δ|R``.

    Raises :class:`ReproError` when ``Δ|R`` is actually tractable
    (equivalent to a single FD or to at most two keys).

    Examples
    --------
    >>> from repro.hardness.schemas import S4
    >>> analyse_hard_relation(S4.fds_for("R4")).case
    4
    """
    if classify_relation(fdset).is_tractable:
        raise ReproError(
            f"Δ|{fdset.relation} satisfies the Theorem 3.1 condition; "
            f"there is no hardness case to analyse"
        )
    keys = minimal_incomparable_keys(fdset)
    if keys is not None:
        # Equivalent to a set of keys; tractability was ruled out above,
        # so there are at least three.
        return HardnessCase(case=1, source_index=1)

    determiner_a = _pick_minimal_determiner_not_key(fdset)
    determiner_b = _pick_minimal_other_non_redundant(fdset, determiner_a)
    a_plus = fdset.closure(determiner_a)
    b_plus = fdset.closure(determiner_b)
    a_hat = a_plus - determiner_a
    b_hat = b_plus - determiner_b

    if a_plus == b_plus:
        case, source = 2, 2
    elif not b_plus <= a_plus:
        if determiner_a & b_hat:
            if a_hat & determiner_b:
                case, source = 3, 3
            else:
                case, source = 4, 4
        elif b_hat <= a_hat:
            case, source = 5, 5
        else:
            case, source = 6, 6
    else:
        # B⁺ ⊊ A⁺, hence A⁺ ⊄ B⁺: the symmetric Case 7.  Its reduction
        # mirrors the B⁺ ⊄ A⁺ analysis with the roles of A and B
        # swapped, so route through the mirrored sub-case.
        mirrored = analyse_hard_relation_with(
            fdset, determiner_b, determiner_a
        )
        case, source = 7, mirrored.source_index
        return HardnessCase(
            case=case,
            source_index=source,
            determiner_a=determiner_a,
            determiner_b=determiner_b,
        )
    return HardnessCase(
        case=case,
        source_index=source,
        determiner_a=determiner_a,
        determiner_b=determiner_b,
    )


def analyse_hard_relation_with(
    fdset: FDSet, determiner_a: AttributeSet, determiner_b: AttributeSet
) -> HardnessCase:
    """The case split of Section 5.2 for explicitly chosen ``A`` and ``B``.

    Exposed for the mirrored Case 7 computation and for tests that pin
    the determiners.
    """
    a_plus = fdset.closure(determiner_a)
    b_plus = fdset.closure(determiner_b)
    a_hat = a_plus - determiner_a
    b_hat = b_plus - determiner_b
    if a_plus == b_plus:
        return HardnessCase(2, 2, determiner_a, determiner_b)
    if not b_plus <= a_plus:
        if determiner_a & b_hat:
            if a_hat & determiner_b:
                return HardnessCase(3, 3, determiner_a, determiner_b)
            return HardnessCase(4, 4, determiner_a, determiner_b)
        if b_hat <= a_hat:
            return HardnessCase(5, 5, determiner_a, determiner_b)
        return HardnessCase(6, 6, determiner_a, determiner_b)
    return HardnessCase(7, 2, determiner_a, determiner_b)
