"""The Lemma 5.2 gadget: Hamiltonian Cycle ⇒ repair checking over ``S1``.

Given an undirected graph ``G = (V, E)`` with ``V = {v_0, …, v_{n-1}}``,
the reduction builds a prioritizing instance ``(I, ≻)`` over the schema
``S1 = ({R1}, {{1,2}→3, {1,3}→2, {2,3}→1})`` and a repair ``J`` such that

    ``J`` has a global improvement  ⟺  ``G`` has a Hamiltonian cycle,

i.e. ``J`` is a globally-optimal repair iff ``G`` is *not* Hamiltonian —
which is what makes globally-optimal repair checking coNP-hard for
``S1``.  Figure 5 of the paper illustrates the construction for the
two-node graph with a single edge; experiment E5 regenerates that figure
and validates the equivalence on exhaustive and random graphs against
the Held–Karp solver.

Construction (verbatim from the proof, all index arithmetic mod ``n``):

facts of ``I`` for every index ``i`` and vertex ``v_j``
    ``R1(i, p_j^i, v_j)``, ``R1(i-1, q_j^i, r_j^i)``, ``R1(i, v_j, r_j^i)``,
    ``R1(i, q_j^i, r_j^i)``, ``R1(i, v_j, v_j)``;
facts of ``I`` for every index ``i`` and edge ``{v_j, v_k}``
    ``R1(i, p_j^i, r_k^{i+1})``;
priorities
    ``R1(i, p_j^i, r_k^{i+1}) ≻ R1(i, p_j^i, v_j)``,
    ``R1(i, q_j^i, r_j^i) ≻ R1(i-1, q_j^i, r_j^i)``,
    ``R1(i, v_j, v_j) ≻ R1(i, v_j, r_j^i)``;
the repair ``J``
    ``R1(i, p_j^i, v_j)``, ``R1(i-1, q_j^i, r_j^i)``, ``R1(i, v_j, r_j^i)``
    for every ``i`` and ``v_j``.

Fresh constants ``p_j^i``, ``q_j^i``, ``r_j^i`` are realized as tagged
strings; vertex constants as ``"v<j>"``; position-1 indices as plain
integers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.fact import Fact
from repro.core.instance import Instance
from repro.core.priority import PrioritizingInstance, PriorityRelation
from repro.core.schema import Schema
from repro.exceptions import UsageError
from repro.hardness.hamiltonian import UndirectedGraph
from repro.hardness.schemas import S1

__all__ = ["HamiltonianGadget", "build_hamiltonian_gadget"]

_RELATION = "R1"


def _p(i: int, j: int) -> str:
    return f"p{j}^{i}"


def _q(i: int, j: int) -> str:
    return f"q{j}^{i}"


def _r(i: int, j: int) -> str:
    return f"r{j}^{i}"


def _v(j: int) -> str:
    return f"v{j}"


@dataclass(frozen=True)
class HamiltonianGadget:
    """The reduction output: ``(I, ≻)`` over ``S1`` plus the repair ``J``.

    Attributes
    ----------
    graph:
        The source graph.
    prioritizing:
        The prioritizing instance ``(I, ≻)``.
    repair:
        The candidate repair ``J`` whose global optimality encodes
        (non-)Hamiltonicity.
    """

    graph: UndirectedGraph
    prioritizing: PrioritizingInstance
    repair: Instance

    @property
    def schema(self) -> Schema:
        """The fixed hard schema ``S1``."""
        return self.prioritizing.schema

    def improvement_from_cycle(self, cycle: List[int]) -> Instance:
        """The global improvement ``J'`` encoding a Hamiltonian cycle.

        Follows the "if" direction of the Lemma 5.2 proof: with
        ``j = π(i)`` and ``k = π(i+1)``, replace

        * ``R1(i, p_j^i, v_j)``    with ``R1(i, p_j^i, r_k^{i+1})``,
        * ``R1(i-1, q_j^i, r_j^i)`` with ``R1(i, q_j^i, r_j^i)``,
        * ``R1(i, v_j, r_j^i)``     with ``R1(i, v_j, v_j)``.
        """
        n = self.graph.node_count
        if sorted(cycle) != list(range(n)):
            raise UsageError(f"{cycle!r} is not a permutation of 0..{n - 1}")
        removed: List[Fact] = []
        added: List[Fact] = []
        for i in range(n):
            j = cycle[i]
            k = cycle[(i + 1) % n]
            removed.append(Fact(_RELATION, (i, _p(i, j), _v(j))))
            added.append(Fact(_RELATION, (i, _p(i, j), _r((i + 1) % n, k))))
            removed.append(
                Fact(_RELATION, ((i - 1) % n, _q(i, j), _r(i, j)))
            )
            added.append(Fact(_RELATION, (i, _q(i, j), _r(i, j))))
            removed.append(Fact(_RELATION, (i, _v(j), _r(i, j))))
            added.append(Fact(_RELATION, (i, _v(j), _v(j))))
        return self.repair.replace_facts(removed, added)

    def cycle_from_improvement(self, improvement: Instance) -> List[int]:
        """Extract the Hamiltonian cycle from a global improvement.

        Follows the "only if" direction: a global improvement contains a
        unique fact ``R1(i, v_j, v_j)`` for every index ``i``, and the
        map ``π(i) = j`` is a Hamiltonian cycle.
        """
        n = self.graph.node_count
        chosen: List[Optional[int]] = [None] * n
        for fact in improvement:
            first, second, third = fact.values
            if isinstance(first, int) and second == third:
                j = int(str(second)[1:])
                if chosen[first] is not None:
                    raise UsageError(
                        f"two diagonal facts at index {first}; not a "
                        f"well-formed improvement"
                    )
                chosen[first] = j
        if any(j is None for j in chosen):
            raise UsageError("improvement has no diagonal fact at some index")
        return [int(j) for j in chosen]  # type: ignore[arg-type]


def build_hamiltonian_gadget(graph: UndirectedGraph) -> HamiltonianGadget:
    """Run the Lemma 5.2 reduction on ``graph``.

    The output sizes are polynomial: ``|I| = n·(5n + 2|E|)`` facts (each
    undirected edge contributes the two ordered versions), ``3n²``
    priority edges plus ``2n·|E|`` more on the ``p``-facts, and
    ``|J| = 3n²``.

    Examples
    --------
    >>> gadget = build_hamiltonian_gadget(UndirectedGraph.cycle(3))
    >>> gadget.schema.is_consistent(gadget.repair)
    True
    """
    n = graph.node_count
    if n < 2:
        raise UsageError(
            "the Lemma 5.2 gadget needs at least two vertices (with n = 1 "
            "the paper's q-facts for index i and i-1 coincide)"
        )
    facts: List[Fact] = []
    priority_edges: List[Tuple[Fact, Fact]] = []
    repair_facts: List[Fact] = []
    for i in range(n):
        for j in range(n):
            p_fact = Fact(_RELATION, (i, _p(i, j), _v(j)))
            q_old = Fact(_RELATION, ((i - 1) % n, _q(i, j), _r(i, j)))
            q_new = Fact(_RELATION, (i, _q(i, j), _r(i, j)))
            vr_fact = Fact(_RELATION, (i, _v(j), _r(i, j)))
            vv_fact = Fact(_RELATION, (i, _v(j), _v(j)))
            facts.extend([p_fact, q_old, q_new, vr_fact, vv_fact])
            repair_facts.extend([p_fact, q_old, vr_fact])
            priority_edges.append((q_new, q_old))
            priority_edges.append((vv_fact, vr_fact))
    for i in range(n):
        for u, w in graph.edge_list():
            for j, k in ((u, w), (w, u)):
                edge_fact = Fact(
                    _RELATION, (i, _p(i, j), _r((i + 1) % n, k))
                )
                facts.append(edge_fact)
                priority_edges.append(
                    (edge_fact, Fact(_RELATION, (i, _p(i, j), _v(j))))
                )
    instance = Instance(S1.signature, facts)
    prioritizing = PrioritizingInstance(
        S1, instance, PriorityRelation(priority_edges), ccp=False
    )
    repair = instance.subinstance(repair_facts)
    return HamiltonianGadget(
        graph=graph, prioritizing=prioritizing, repair=repair
    )
