"""Hardness machinery for the coNP-complete side of the dichotomies.

Contents
--------
``schemas``
    The six hard schemas ``S1 … S6`` of Example 3.4 and the four
    ccp-hard schemas ``Sa … Sd`` of Section 7.3.
``hamiltonian``
    Undirected graphs and an exact Held–Karp Hamiltonian-cycle solver
    (the source problem of Lemma 5.2).
``hc_reduction``
    The Lemma 5.2 gadget: graphs → repair-checking inputs over ``S1``.
``pi_case1``
    The fact transport ``Π`` carrying hardness from ``S1`` to any schema
    equivalent to three or more keys (Lemmas 5.3–5.5).
``case_analysis``
    The Section 5.2 case branching routing arbitrary hard schemas to
    their concrete source schema.
"""

from repro.hardness.case_analysis import HardnessCase, analyse_hard_relation
from repro.hardness.hamiltonian import (
    UndirectedGraph,
    find_hamiltonian_cycle,
    has_hamiltonian_cycle,
)
from repro.hardness.hc_reduction import (
    HamiltonianGadget,
    build_hamiltonian_gadget,
)
from repro.hardness.pi_case1 import (
    PiCase1,
    designated_keys,
    minimal_incomparable_keys,
    transport_input,
)
from repro.hardness.schemas import (
    CCP_HARD_SCHEMAS,
    HARD_SCHEMAS,
    S1,
    S2,
    S3,
    S4,
    S5,
    S6,
    SA,
    SB,
    SC,
    SD,
)

__all__ = [
    "HardnessCase",
    "analyse_hard_relation",
    "UndirectedGraph",
    "find_hamiltonian_cycle",
    "has_hamiltonian_cycle",
    "HamiltonianGadget",
    "build_hamiltonian_gadget",
    "PiCase1",
    "designated_keys",
    "minimal_incomparable_keys",
    "transport_input",
    "S1",
    "S2",
    "S3",
    "S4",
    "S5",
    "S6",
    "SA",
    "SB",
    "SC",
    "SD",
    "HARD_SCHEMAS",
    "CCP_HARD_SCHEMAS",
]
