"""The concrete coNP-hard schemas of the paper.

Example 3.4 lists six single-relation schemas ``S1 … S6`` (each over a
ternary relation symbol) that anchor the hardness side of Theorem 3.1:
every schema violating the tractability condition reduces from one of
them (Section 5.2's case analysis).  Section 7.3 lists four further
schemas ``Sa … Sd`` anchoring the hardness side of the ccp dichotomy
(Theorem 7.1).

This module materializes all ten as :class:`~repro.core.schema.Schema`
objects, using the paper's own relation names.
"""

from __future__ import annotations

from typing import Dict

from repro.core.schema import Schema

__all__ = [
    "S1",
    "S2",
    "S3",
    "S4",
    "S5",
    "S6",
    "HARD_SCHEMAS",
    "SA",
    "SB",
    "SC",
    "SD",
    "CCP_HARD_SCHEMAS",
]


def _ternary(name: str, fd_texts) -> Schema:
    return Schema.single_relation(fd_texts, relation=name, arity=3)


#: ``Δ1 = {{1,2} → 3, {1,3} → 2, {2,3} → 1}`` — three minimal keys.
S1: Schema = _ternary("R1", ["{1,2} -> 3", "{1,3} -> 2", "{2,3} -> 1"])

#: ``Δ2 = {1 → 2, 2 → 1}`` — two non-key FDs on a ternary relation.
S2: Schema = _ternary("R2", ["1 -> 2", "2 -> 1"])

#: ``Δ3 = {{1,2} → 3, 3 → 2}``.
S3: Schema = _ternary("R3", ["{1,2} -> 3", "3 -> 2"])

#: ``Δ4 = {1 → 2, 2 → 3}`` — a chain of FDs.
S4: Schema = _ternary("R4", ["1 -> 2", "2 -> 3"])

#: ``Δ5 = {1 → 3, 2 → 3}`` — two determiners of the same attribute.
S5: Schema = _ternary("R5", ["1 -> 3", "2 -> 3"])

#: ``Δ6 = {∅ → 1, 2 → 3}`` — a constant attribute plus an FD.
S6: Schema = _ternary("R6", ["{} -> 1", "2 -> 3"])

#: The six hard schemas of Example 3.4, keyed by their paper index.
HARD_SCHEMAS: Dict[int, Schema] = {
    1: S1,
    2: S2,
    3: S3,
    4: S4,
    5: S5,
    6: S6,
}

#: ``Sa``: binary ``R`` and ``S`` with ``R: 1 → 2`` and ``S: ∅ → 1`` —
#: a key relation mixed with a constant-attribute relation (Section 7.3).
SA: Schema = Schema.parse({"R": 2, "S": 2}, ["R: 1 -> 2", "S: {} -> 1"])

#: ``Sb``: a single ternary relation with ``{1 → 2}`` (a non-key FD).
SB: Schema = Schema.single_relation(["1 -> 2"], relation="R", arity=3)

#: ``Sc``: a single ternary relation with ``{1 → 2, ∅ → 3}``.
SC: Schema = Schema.single_relation(
    ["1 -> 2", "{} -> 3"], relation="R", arity=3
)

#: ``Sd``: a single binary relation with ``{1 → 2, 2 → 1}``.
SD: Schema = Schema.single_relation(
    ["1 -> 2", "2 -> 1"], relation="R", arity=2
)

#: The four ccp-hard schemas of Section 7.3, keyed by their paper letter.
CCP_HARD_SCHEMAS: Dict[str, Schema] = {
    "a": SA,
    "b": SB,
    "c": SC,
    "d": SD,
}
