"""The fact transport ``Π`` for Case 1 (schemas equivalent to ≥ 3 keys).

Section 5.1's general reduction pattern maps a repair-checking input over
a concrete hard schema to one over an arbitrary hard schema ``S`` via a
per-fact function ``Π`` with two key properties (Lemmas 5.3 and 5.4):

1. ``Π`` is injective on facts;
2. ``Π`` preserves consistency and inconsistency of fact *pairs* —
   ``{f, g}`` satisfies ``Δ1`` iff ``{Π(f), Π(g)}`` satisfies ``Δ``.

With both, transporting ``(I, ≻, J)`` fact-by-fact preserves the
globally-optimal yes/no answer, so coNP-hardness travels from ``S1`` to
``S``.

This module implements Case 1: ``Δ`` is equivalent to key constraints
``A_1 → ⟦R⟧, …, A_k → ⟦R⟧`` with ``k ≥ 3`` and pairwise-incomparable
left-hand sides.  Following the paper, three of the keys are designated
``A_{1,2}``, ``A_{2,3}``, ``A_{1,3}``, and the image of a fact
``R1(c_1, c_2, c_3)`` assigns to attribute ``i`` of ``R`` a value
determined by which designated keys contain ``i``:

=========================================  =====================
membership of ``i``                        value ``d_i``
=========================================  =====================
exactly ``A_{a,b}``                        the pair ``⟨c_a, c_b⟩``
exactly ``A_{a,b}`` and ``A_{b,c}``        the shared ``c_b``
all three                                  a fixed constant ``⊥``
none of the three                          the triple ``⟨c_1, c_2, c_3⟩``
=========================================  =====================

.. note::
   The conference version's display of this equation is ambiguous about
   the last two rows (the copy this reproduction works from garbles
   their alignment).  The assignment above is the unique reading that
   makes *both* proof steps of Lemma 5.4 go through: the "if" direction
   needs every attribute of ``A_{a,b}`` to avoid mentioning ``c_c``
   (hence ⊥ on the triple intersection), and the "only if" direction
   needs any key whose attributes mention at most one coordinate to be
   contained in some ``A_{a,b} ∩ A_{b,c}`` (hence the full triple on
   attributes outside all designated keys, which additional keys
   ``A_4, …, A_k`` may reach).  Both properties are verified empirically
   by experiment E6 and by the property-based tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.fact import Fact
from repro.core.fd import FD, AttributeSet
from repro.core.fdset import FDSet
from repro.core.instance import Instance
from repro.core.priority import PrioritizingInstance, PriorityRelation
from repro.core.schema import Schema
from repro.exceptions import ReproError

__all__ = [
    "PiCase1",
    "designated_keys",
    "minimal_incomparable_keys",
    "transport_input",
]

#: The fixed constant placed on attributes inside all three designated keys.
_BOTTOM = "⊥"


def minimal_incomparable_keys(fdset: FDSet) -> Optional[List[AttributeSet]]:
    """The minimal keys of ``Δ|R`` if ``Δ|R`` is equivalent to them.

    Returns the (pairwise-incomparable) minimal keys when ``Δ|R`` is
    equivalent to a set of key constraints, or None when it is not —
    i.e., this decides membership in the paper's "all keys" regime
    covering Case 1 (when there are ≥ 3) and the tractable one/two-key
    schemas.
    """
    keys = sorted(fdset.minimal_keys(), key=sorted)
    candidate = FDSet(
        fdset.relation,
        fdset.arity,
        [FD(fdset.relation, key, fdset.all_attributes()) for key in keys],
    )
    if candidate.implies_all(fdset):
        return [frozenset(key) for key in keys]
    return None


def designated_keys(
    fdset: FDSet,
) -> Tuple[AttributeSet, AttributeSet, AttributeSet]:
    """Pick the designated keys ``A_{1,2}, A_{2,3}, A_{1,3}`` for Case 1.

    Requires ``Δ|R`` to be equivalent to ``k ≥ 3`` pairwise-incomparable
    keys; returns the three lexicographically-first minimal keys.
    """
    keys = minimal_incomparable_keys(fdset)
    if keys is None or len(keys) < 3:
        raise ReproError(
            "Case 1 requires a schema equivalent to three or more "
            "pairwise-incomparable key constraints"
        )
    return keys[0], keys[1], keys[2]


@dataclass(frozen=True)
class PiCase1:
    """The fact transport ``Π`` from ``S1`` to a ≥3-keys schema.

    Parameters
    ----------
    target:
        A single-relation schema whose FDs are equivalent to three or
        more pairwise-incomparable keys.

    Examples
    --------
    >>> schema = Schema.single_relation(
    ...     ["{1,2} -> {3,4}", "{1,3} -> {2,4}", "{2,3} -> {1,4}"], arity=4
    ... )
    >>> pi = PiCase1(schema)
    >>> fact = Fact("R1", ("x", "y", "z"))
    >>> pi.apply(fact).relation == pi.relation_name
    True
    """

    target: Schema

    def __post_init__(self) -> None:
        names = sorted(self.target.relation_names())
        if len(names) != 1:
            raise ReproError("Case 1 transport expects a one-relation schema")
        fdset = self.target.fds_for(names[0])
        a12, a23, a13 = designated_keys(fdset)
        object.__setattr__(self, "_relation", names[0])
        object.__setattr__(self, "_arity", fdset.arity)
        object.__setattr__(self, "_a12", a12)
        object.__setattr__(self, "_a23", a23)
        object.__setattr__(self, "_a13", a13)

    @property
    def relation_name(self) -> str:
        """The target relation symbol's name."""
        return self._relation  # type: ignore[attr-defined]

    @property
    def designated(self) -> Tuple[AttributeSet, AttributeSet, AttributeSet]:
        """The designated keys ``(A_{1,2}, A_{2,3}, A_{1,3})``."""
        return (
            self._a12,  # type: ignore[attr-defined]
            self._a23,  # type: ignore[attr-defined]
            self._a13,  # type: ignore[attr-defined]
        )

    def _attribute_value(self, position: int, values: Tuple) -> object:
        c1, c2, c3 = values
        a12, a23, a13 = self.designated
        in12, in23, in13 = (
            position in a12,
            position in a23,
            position in a13,
        )
        membership = (in12, in23, in13)
        if membership == (True, True, True):
            return _BOTTOM
        if membership == (True, False, False):
            return (c1, c2)
        if membership == (False, True, False):
            return (c2, c3)
        if membership == (False, False, True):
            return (c1, c3)
        if membership == (True, True, False):
            return c2  # shared coordinate of A_{1,2} and A_{2,3}
        if membership == (False, True, True):
            return c3  # shared coordinate of A_{2,3} and A_{1,3}
        if membership == (True, False, True):
            return c1  # shared coordinate of A_{1,2} and A_{1,3}
        return (c1, c2, c3)  # outside all designated keys

    def apply(self, fact: Fact) -> Fact:
        """The image ``Π(f)`` of an ``S1``-fact."""
        if fact.arity != 3:
            raise ReproError(f"Π expects ternary S1 facts, got {fact}")
        values = tuple(
            self._attribute_value(position, fact.values)
            for position in range(1, self._arity + 1)  # type: ignore[attr-defined]
        )
        return Fact(self.relation_name, values)

    def apply_instance(self, instance: Instance) -> Instance:
        """The image ``Π(K)`` of a set of ``S1``-facts."""
        return Instance(
            self.target.signature, (self.apply(fact) for fact in instance)
        )

    def invert(self, image: Fact) -> Fact:
        """The unique ``S1``-fact mapping to ``image`` (Lemma 5.3).

        Reconstructs ``(c_1, c_2, c_3)`` from the schema-determined
        recovery positions; raises if ``image`` is not in Π's range.
        """
        a12, a23, a13 = self.designated
        c1 = self._recover(image, a12 - a23, a13, pair_slot=0)
        c2 = self._recover(image, a12 - a13, a23, pair_slot=1)
        c3 = self._recover(image, a23 - a12, a13, pair_slot=1)
        candidate = Fact("R1", (c1, c2, c3))
        if self.apply(candidate) != image:
            raise ReproError(f"{image} is not in the range of Π")
        return candidate

    def _recover(
        self,
        image: Fact,
        difference: AttributeSet,
        other: AttributeSet,
        pair_slot: int,
    ) -> object:
        position = min(difference)  # non-empty by pairwise incomparability
        value = image[position]
        if position in other:
            return value  # single-coordinate attribute
        return value[pair_slot]  # type: ignore[index]


def transport_input(
    pi: PiCase1,
    prioritizing: PrioritizingInstance,
    candidate: Instance,
) -> Tuple[PrioritizingInstance, Instance]:
    """Transport an ``S1`` repair-checking input to the target schema.

    Applies ``Π`` to the instance, the priority edges, and the candidate
    repair, per Section 5.1.  The result has the same globally-optimal
    answer as the source (verified empirically by experiment E6).
    """
    image_instance = pi.apply_instance(prioritizing.instance)
    image_priority = PriorityRelation(
        (pi.apply(better), pi.apply(worse))
        for better, worse in prioritizing.priority.edges
    )
    image_prioritizing = PrioritizingInstance(
        pi.target, image_instance, image_priority, ccp=prioritizing.is_ccp
    )
    return image_prioritizing, pi.apply_instance(candidate)
