"""Undirected graphs and an exact Hamiltonian-cycle solver.

The coNP-hardness proof of Lemma 5.2 reduces from the undirected
Hamiltonian Cycle problem.  To *execute* that reduction (and verify its
correctness empirically), we need the source problem itself: this module
provides a minimal immutable undirected-graph type and a Held–Karp
bitmask dynamic program deciding — and producing — Hamiltonian cycles.

The paper's definition (proof of Lemma 5.2) asks for a permutation ``π``
of the vertices with an edge between ``v_π(i)`` and ``v_π(i+1)`` for all
``i`` (indices mod ``n``).  Degenerate consequences we preserve exactly:

* ``n = 1``: a Hamiltonian cycle requires a self-loop, which simple
  graphs lack, so the answer is "no";
* ``n = 2``: the single edge is used in both directions, so two nodes
  joined by an edge *do* form a Hamiltonian cycle (this matches the
  paper's two-node worked example in Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.exceptions import ReproError

__all__ = ["UndirectedGraph", "has_hamiltonian_cycle", "find_hamiltonian_cycle"]


@dataclass(frozen=True)
class UndirectedGraph:
    """An immutable simple undirected graph over ``n`` vertices ``0..n-1``.

    Parameters
    ----------
    node_count:
        The number of vertices.
    edges:
        Unordered vertex pairs; self-loops are rejected.

    Examples
    --------
    >>> g = UndirectedGraph(3, [(0, 1), (1, 2), (0, 2)])
    >>> g.has_edge(2, 0)
    True
    >>> g.degree(1)
    2
    """

    node_count: int
    edges: FrozenSet[FrozenSet[int]]

    def __init__(
        self, node_count: int, edges: Iterable[Tuple[int, int]] = ()
    ) -> None:
        if node_count < 1:
            raise ReproError("a graph needs at least one vertex")
        normalized = set()
        for u, v in edges:
            if u == v:
                raise ReproError(f"self-loop at vertex {u} is not allowed")
            if not (0 <= u < node_count and 0 <= v < node_count):
                raise ReproError(
                    f"edge ({u}, {v}) out of range 0..{node_count - 1}"
                )
            normalized.add(frozenset({u, v}))
        object.__setattr__(self, "node_count", node_count)
        object.__setattr__(self, "edges", frozenset(normalized))

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge."""
        return frozenset({u, v}) in self.edges

    def neighbours(self, u: int) -> FrozenSet[int]:
        """The vertices adjacent to ``u``."""
        return frozenset(
            next(iter(edge - {u})) for edge in self.edges if u in edge
        )

    def degree(self, u: int) -> int:
        """The number of edges incident to ``u``."""
        return sum(1 for edge in self.edges if u in edge)

    def edge_list(self) -> List[Tuple[int, int]]:
        """The edges as sorted ``(min, max)`` pairs."""
        return sorted((min(edge), max(edge)) for edge in self.edges)

    @classmethod
    def cycle(cls, node_count: int) -> "UndirectedGraph":
        """The cycle graph ``C_n`` (Hamiltonian by construction)."""
        return cls(
            node_count,
            [(i, (i + 1) % node_count) for i in range(node_count)]
            if node_count > 2
            else ([(0, 1)] if node_count == 2 else []),
        )

    @classmethod
    def complete(cls, node_count: int) -> "UndirectedGraph":
        """The complete graph ``K_n``."""
        return cls(
            node_count,
            [
                (u, v)
                for u in range(node_count)
                for v in range(u + 1, node_count)
            ],
        )

    @classmethod
    def path(cls, node_count: int) -> "UndirectedGraph":
        """The path graph ``P_n`` (never Hamiltonian for ``n ≥ 2``...
        except ``n = 2`` where the paper's definition closes the single
        edge into a cycle)."""
        return cls(node_count, [(i, i + 1) for i in range(node_count - 1)])


def find_hamiltonian_cycle(graph: UndirectedGraph) -> Optional[List[int]]:
    """A Hamiltonian cycle as a vertex permutation, or None.

    Held–Karp bitmask dynamic programming over subsets containing vertex
    0: ``O(2^n · n²)`` time, exact.  Practical up to ``n ≈ 18``, which is
    far beyond what the gadget experiments need.

    Examples
    --------
    >>> find_hamiltonian_cycle(UndirectedGraph.cycle(4)) is not None
    True
    >>> find_hamiltonian_cycle(UndirectedGraph.path(4)) is None
    True
    """
    n = graph.node_count
    if n == 1:
        return None  # would need a self-loop
    if n == 2:
        return [0, 1] if graph.has_edge(0, 1) else None
    adjacency = [
        [graph.has_edge(u, v) for v in range(n)] for u in range(n)
    ]
    full = (1 << n) - 1
    # reachable[mask][v]: predecessor of v on some path visiting exactly
    # `mask`, starting at 0 (or -2 at the trivial start, -1 = unreachable).
    predecessor: Dict[Tuple[int, int], int] = {(1, 0): -2}
    frontier: List[Tuple[int, int]] = [(1, 0)]
    while frontier:
        next_frontier: List[Tuple[int, int]] = []
        for mask, last in frontier:
            for nxt in range(1, n):
                if mask & (1 << nxt):
                    continue
                if not adjacency[last][nxt]:
                    continue
                key = (mask | (1 << nxt), nxt)
                if key in predecessor:
                    continue
                predecessor[key] = last
                next_frontier.append(key)
        frontier = next_frontier
    for last in range(1, n):
        if (full, last) in predecessor and adjacency[last][0]:
            cycle: List[int] = []
            mask, node = full, last
            while node != -2:
                cycle.append(node)
                previous = predecessor[(mask, node)]
                mask &= ~(1 << node)
                node = previous
            cycle.reverse()
            return cycle
    return None


def has_hamiltonian_cycle(graph: UndirectedGraph) -> bool:
    """Whether ``graph`` has a Hamiltonian cycle (per the paper's
    definition — see the module docstring for the degenerate cases)."""
    return find_hamiltonian_cycle(graph) is not None
