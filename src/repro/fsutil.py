"""Filesystem primitives shared by every layer.

This module sits at the very bottom of the architecture DAG (alongside
:mod:`repro.exceptions`): it may import nothing from the rest of the
package, and anything — runtime layers and dev tooling alike — may
import it.  That is exactly why :func:`atomic_write_text` lives here
rather than in :mod:`repro.io`: the lint baseline writer
(:mod:`repro.devtools.lint.baseline`) needs crash-atomic writes too,
and ``devtools`` must not drag the serialization layer (and through it
the whole core data model) into a dev-time tool.  The RL100 layering
rule enforces this shape; see ``ARCHITECTURE`` at the repository root.
"""

from __future__ import annotations

import contextlib
import os
import tempfile
from pathlib import Path
from typing import Union

__all__ = ["atomic_write_text"]


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Write ``text`` to ``path`` crash-atomically.

    The text lands in a temporary file in the *same directory* (so the
    final rename never crosses a filesystem), is flushed and fsync-ed,
    and then ``os.replace``-s the destination.  Readers therefore see
    either the complete old contents or the complete new contents —
    never a torn file — no matter where a crash lands.
    """
    target = Path(path)
    handle = tempfile.NamedTemporaryFile(
        mode="w",
        encoding="utf-8",
        dir=target.parent or Path("."),
        prefix=f".{target.name}.",
        suffix=".tmp",
        delete=False,
    )
    try:
        with handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(handle.name, target)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(handle.name)
        raise
