"""Developer tooling for the :mod:`repro` repository.

Nothing in this package is part of the library's runtime API; it ships
with the source tree so CI and contributors run the exact same checks.
Currently it holds :mod:`repro.devtools.lint`, the project-invariant
AST linter behind ``repro lint`` / ``make lint``.
"""
