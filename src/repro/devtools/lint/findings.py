"""The finding data model shared by the engine, rules, and CLI.

A :class:`Finding` is one rule violation at one source location.  The
``snippet`` field (the stripped source line) is part of the identity
used by the baseline file, so findings survive unrelated line-number
churn: moving a violation ten lines down does not un-baseline it, while
editing the violating line does.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

__all__ = ["Finding", "finding_sort_key"]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes
    ----------
    code:
        The rule identifier (``"RL001"`` ... ``"RL006"``, or ``"RL000"``
        for files the engine could not parse).
    message:
        A one-line human-readable description of the violation.
    path:
        The file's path relative to the lint root, in POSIX form.
    line / column:
        1-based line and 0-based column of the flagged node.
    snippet:
        The stripped source text of the flagged line (baseline identity).
    witness:
        For program-scope findings (RL1xx): the call-path witness from
        entry point to sink, each element rendered as ``qualname
        (path:line)``.  Empty for per-file findings.  Deliberately NOT
        part of :meth:`baseline_key`: a refactor that reroutes the call
        chain without touching the sink must neither resurrect a
        baselined finding nor silently re-baseline a new one.
    """

    code: str
    message: str
    path: str
    line: int
    column: int
    snippet: str
    witness: Tuple[str, ...] = field(default=())

    def baseline_key(self) -> str:
        """The content-addressed identity used by the baseline file."""
        digest = hashlib.sha256(self.snippet.encode("utf-8")).hexdigest()
        return f"{self.code}:{self.path}:{digest[:16]}"

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready rendering (``repro lint --format json``)."""
        document = {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "snippet": self.snippet,
        }
        if self.witness:
            document["witness"] = list(self.witness)
        return document

    def render(self) -> str:
        """The one-line text rendering (``path:line:col: CODE message``)."""
        return (
            f"{self.path}:{self.line}:{self.column + 1}: "
            f"{self.code} {self.message}"
        )

    def render_lines(self) -> Tuple[str, ...]:
        """The text rendering including the call-path witness, if any."""
        lines = [self.render()]
        if self.witness:
            lines.append("    call path:")
            lines.extend(f"      {element}" for element in self.witness)
        return tuple(lines)


def finding_sort_key(finding: Finding) -> Tuple[str, int, int, str]:
    """The deterministic report order: path, line, column, code."""
    return (finding.path, finding.line, finding.column, finding.code)
