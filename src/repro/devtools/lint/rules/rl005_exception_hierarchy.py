"""RL005 — raise through the :mod:`repro.exceptions` hierarchy.

The library promises that every failure it originates is catchable as
:class:`repro.exceptions.ReproError` — the batch service's worker loop
leans on it to classify outcomes (``TransientWorkerError`` retries,
other ``ReproError``s are permanent job errors), and API consumers are
documented to need exactly one ``except`` clause.  A bare builtin
``ValueError`` raised deep inside a checker escapes that contract.

The rule flags ``raise`` statements whose exception is a builtin from
the disallowed list.  Bad-argument and missing-name sites should use
:class:`~repro.exceptions.UsageError` and
:class:`~repro.exceptions.MissingEntryError`, which double-derive from
``ValueError``/``KeyError`` so callers using the builtin idioms keep
working.  ``NotImplementedError`` (abstract hooks) and
``AssertionError`` (internal invariants) stay allowed, as do bare
re-raises and raising a caught exception object.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.asthelpers import call_name, terminal_name
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import Rule, register

__all__ = ["ExceptionHierarchyRule"]

_DISALLOWED = frozenset(
    {
        "Exception",
        "BaseException",
        "ValueError",
        "TypeError",
        "KeyError",
        "IndexError",
        "LookupError",
        "ArithmeticError",
        "ZeroDivisionError",
        "AttributeError",
        "RuntimeError",
        "OSError",
        "IOError",
        "StopIteration",
        "NameError",
    }
)

_REPLACEMENTS = {
    "ValueError": "UsageError",
    "TypeError": "UsageError",
    "KeyError": "MissingEntryError",
    "IndexError": "AttributePositionError",
    "LookupError": "MissingEntryError",
}


@register
class ExceptionHierarchyRule(Rule):
    code = "RL005"
    name = "exception-hierarchy"
    summary = (
        "raised exceptions must derive from repro.exceptions.ReproError "
        "(NotImplementedError/AssertionError excepted)"
    )
    rationale = (
        "The service retry/verdict classifier and the documented "
        "'except ReproError' contract require every library-originated "
        "failure to live in one hierarchy."
    )
    scopes = ("src/repro/",)

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name = (
                call_name(exc) if isinstance(exc, ast.Call)
                else terminal_name(exc)
            )
            if name in _DISALLOWED:
                hint = _REPLACEMENTS.get(name)
                advice = (
                    f"; raise repro.exceptions.{hint} (a {name} subclass)"
                    if hint
                    else "; raise a repro.exceptions subclass"
                )
                yield self.finding(
                    ctx,
                    node,
                    f"raises builtin {name} outside the ReproError "
                    f"hierarchy{advice}",
                )
