"""RL004 — no mutable default argument values.

A mutable default (``def f(xs=[])``) is evaluated once at definition
time and shared across calls — state leaks between invocations, which
in this codebase means leaks between *jobs* of a service batch and
between *candidates* of a checking sweep.  Both the repair checkers
and the batch service are advertised as deterministic functions of
their inputs (same batch, same verdicts — DESIGN.md §7); call-coupled
hidden state is precisely what would falsify that promise, so the rule
bans it everywhere under ``src/``.

Immutable defaults (``()``, ``frozenset()``, constants) are fine, as is
the ``None``-then-allocate idiom.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.devtools.lint.asthelpers import call_name
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import Rule, register

__all__ = ["MutableDefaultsRule"]

_MUTABLE_CALLS = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "defaultdict",
        "OrderedDict",
        "Counter",
        "deque",
    }
)


def _mutability(default: ast.AST) -> Optional[str]:
    """A description of why ``default`` is mutable, or None."""
    if isinstance(default, (ast.List, ast.ListComp)):
        return "a list"
    if isinstance(default, (ast.Dict, ast.DictComp)):
        return "a dict"
    if isinstance(default, (ast.Set, ast.SetComp)):
        return "a set"
    if isinstance(default, ast.Call):
        name = call_name(default)
        if name in _MUTABLE_CALLS:
            return f"a {name}()"
    return None


@register
class MutableDefaultsRule(Rule):
    code = "RL004"
    name = "mutable-defaults"
    summary = "no mutable default argument values anywhere in src/"
    rationale = (
        "Checkers and service jobs must be pure functions of their "
        "inputs (same batch, same verdicts); defaults shared across "
        "calls smuggle state between jobs."
    )
    scopes = ("src/",)

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            args = node.args
            defaults = list(args.defaults) + [
                d for d in args.kw_defaults if d is not None
            ]
            label = getattr(node, "name", "<lambda>")
            for default in defaults:
                reason = _mutability(default)
                if reason is not None:
                    yield self.finding(
                        ctx,
                        default,
                        f"{label}() takes {reason} as a default argument "
                        f"value; use None and allocate per call",
                    )
