"""RL101 — no blocking call on a path from an event-loop coroutine.

``repro serve`` multiplexes every connection, every control operation,
and every admission decision onto one asyncio event loop; the worker
pool exists precisely so jobs never run there.  One ``time.sleep``, one
``fsync``, one ``subprocess`` call, one future ``.result()`` on the
loop and *every* connected client stalls — the silent latency collapse
the ROADMAP's sharded-fleet plan cannot tolerate, and a failure class
the paper's complexity analysis (which counts operations, not where
they run) abstracts away entirely.

The rule walks the call graph from every coroutine defined in the
``server`` layer and reports each reachable blocking call with the
full call-path witness.  The thread-pool boundary needs no annotation:
``loop.run_in_executor(pool, fn)`` / ``asyncio.to_thread(fn)`` pass
``fn`` as a *value*, so the call graph has no edge through them — the
analysis stops exactly where the event loop hands off.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.devtools.lint.findings import Finding
from repro.devtools.lint.program.modules import module_layer
from repro.devtools.lint.program.propagate import find_effect_paths
from repro.devtools.lint.registry import ProgramRule, register

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.devtools.lint.program.analyzer import ProgramAnalysis

__all__ = ["AsyncSafetyRule"]

#: The layer whose coroutines run on the serving event loop.
EVENT_LOOP_LAYER = "server"


@register
class AsyncSafetyRule(ProgramRule):
    code = "RL101"
    name = "async-safety"
    summary = (
        "no call path from a server coroutine may reach a blocking "
        "call without crossing the thread-pool boundary"
    )
    rationale = (
        "The daemon's p99 latency rests on a never-blocked event loop; "
        "admission control and graceful drain both assume control ops "
        "stay responsive while every worker thread is busy."
    )

    def check_program(self, analysis: "ProgramAnalysis") -> Iterator[Finding]:
        entries = sorted(
            qualname
            for qualname, info in analysis.functions.items()
            if info.is_coroutine
            and module_layer(info.module) == EVENT_LOOP_LAYER
        )
        paths = find_effect_paths(
            entries, analysis.calls, lambda fn: analysis.blocking.get(fn, [])
        )
        for path in paths:
            module = analysis.module_of(path.sink)
            if module is None:
                continue
            snippet = ""
            if 1 <= path.line <= len(module.lines):
                snippet = module.lines[path.line - 1].strip()
            call = path.desc
            pretty = f"`{call[1:]}()` method call" if call.startswith(".") \
                else f"`{call}`"
            yield Finding(
                code=self.code,
                message=(
                    f"blocking call {pretty} is reachable from event-loop "
                    f"coroutine `{path.entry}`; move it behind the worker "
                    "pool (run_in_executor / asyncio.to_thread)"
                ),
                path=module.rel_path,
                line=path.line,
                column=0,
                snippet=snippet,
                witness=analysis.witness_for_hops(
                    path.hops, f"blocking: {call}", path.sink, path.line
                ),
            )
