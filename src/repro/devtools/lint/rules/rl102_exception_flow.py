"""RL102 — only ``ReproError`` may escape a public entry point.

PR 3's sweep unified the exception hierarchy file by file (RL005 bans
*raising* bare builtins), but per-file rules cannot see whether an
exception raised three calls deep actually *escapes* the public
surface: the CLI's exit-code contract, ``RepairService.run_*``'s
status-result contract, and the daemon's error-response contract all
promise that every failure surfaces as a ``ReproError`` subclass (or a
structured error), never a raw ``KeyError`` from a malformed document.

This rule computes, for every function, the set of exception classes
that can escape it — its own locally-uncaught raises plus whatever
escapes its callees minus what each call site's ``try`` handlers catch
(bare ``raise`` re-raises propagate the handler's caught types) — as a
fixpoint over the call graph, then reports any non-``ReproError``
class escaping a public entry point with the frame-by-frame witness
from entry to ``raise``.

Entry points, matched structurally so fixtures and the real tree are
treated identically: CLI subcommands (``main`` / ``_cmd_*`` in the
``cli`` layer), ``run_*`` methods of ``*Service`` classes, daemon op
handlers (``_handle_*`` / ``_run_*`` / ``_control`` methods of
``*Server`` classes), and public ``check_*`` / ``find_*`` / ``count_*``
/ ``classify_*`` dispatchers in the engine layers.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Iterator, List

from repro.devtools.lint.findings import Finding
from repro.devtools.lint.program.effects import ancestors_of
from repro.devtools.lint.program.modules import module_layer
from repro.devtools.lint.program.propagate import (
    escape_path,
    escaped_exceptions,
)
from repro.devtools.lint.registry import ProgramRule, register

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.devtools.lint.program.analyzer import ProgramAnalysis

__all__ = ["ExceptionFlowRule"]

_CLI_ENTRY = re.compile(r"^(main|_cmd_\w+)$")
_SERVER_ENTRY = re.compile(r"^(_handle_\w+|_run_\w+|_control)$")
_DISPATCH_ENTRY = re.compile(r"^(check|find|count|classify)_\w+$")
_DISPATCH_LAYERS = frozenset({"core", "compute", "cqa"})

#: Exception names allowed to escape besides ReproError descendants:
#: control-flow exceptions and the abstract-method contract.
_ALLOWED_BARE = frozenset(
    {
        "ReproError",
        "NotImplementedError",
        "KeyboardInterrupt",
        "SystemExit",
        "GeneratorExit",
        "StopIteration",
        "StopAsyncIteration",
        "CancelledError",
    }
)


def _is_entry_point(info, layer: str) -> bool:
    if layer == "cli" and info.cls is None and _CLI_ENTRY.match(info.name):
        return True
    if info.cls is not None:
        if info.cls.endswith("Service") and info.name.startswith("run_"):
            return True
        if info.cls.endswith("Server") and _SERVER_ENTRY.match(info.name):
            return True
    if (
        info.cls is None
        and layer in _DISPATCH_LAYERS
        and _DISPATCH_ENTRY.match(info.name)
    ):
        return True
    return False


@register
class ExceptionFlowRule(ProgramRule):
    code = "RL102"
    name = "exception-flow"
    summary = (
        "every exception escaping a public entry point must be a "
        "ReproError subclass (tracked transitively, re-raises included)"
    )
    rationale = (
        "The CLI exit-code, service status-result, and daemon "
        "error-response contracts all depend on failures surfacing as "
        "ReproError; a raw builtin escaping three calls deep turns a "
        "clean 'error' verdict into a stack trace (or a dead worker)."
    )

    def check_program(self, analysis: "ProgramAnalysis") -> Iterator[Finding]:
        entries = sorted(
            qualname
            for qualname, info in analysis.functions.items()
            if _is_entry_point(info, module_layer(info.module))
        )
        if not entries:
            return
        escaped = escaped_exceptions(
            sorted(analysis.functions),
            analysis.calls,
            analysis.direct_raises,
            analysis.classes_by_qualname,
        )
        findings: List[Finding] = []
        reported = set()
        for entry in entries:
            for exc in sorted(escaped.get(entry, ())):
                bare = exc.rsplit(".", 1)[-1]
                if bare in _ALLOWED_BARE:
                    continue
                lineage = ancestors_of(exc, analysis.classes_by_qualname)
                if "ReproError" in {
                    name.rsplit(".", 1)[-1] for name in lineage
                }:
                    continue
                path = escape_path(entry, exc, escaped)
                if path is None:
                    continue
                key = (path.sink, path.line, bare)
                if key in reported:
                    continue
                reported.add(key)
                module = analysis.module_of(path.sink)
                if module is None:
                    continue
                snippet = ""
                if 1 <= path.line <= len(module.lines):
                    snippet = module.lines[path.line - 1].strip()
                # EscapePath hops carry (fn, line-of-its-outgoing-call);
                # the witness renderer wants (fn, line-of-the-incoming
                # call in the previous frame) ending at the sink.
                if path.hops:
                    hops = [(path.hops[0][0], 0)]
                    for index in range(1, len(path.hops)):
                        hops.append(
                            (path.hops[index][0], path.hops[index - 1][1])
                        )
                    hops.append((path.sink, path.hops[-1][1]))
                    hops = tuple(hops)
                else:
                    hops = ((entry, 0),)
                findings.append(
                    Finding(
                        code=self.code,
                        message=(
                            f"`{bare}` can escape public entry point "
                            f"`{entry}`; raise a ReproError subclass or "
                            "catch it at the boundary"
                        ),
                        path=module.rel_path,
                        line=path.line,
                        column=0,
                        snippet=snippet,
                        witness=analysis.witness_for_hops(
                            hops,
                            f"raise {bare}",
                            path.sink,
                            path.line,
                        ),
                    )
                )
        yield from findings
