"""RL103 — determinism flow: no hash-order or entropy on fingerprint paths.

The service cache keys on canonical fingerprints, the journal replays
by content checksum, and the NDJSON protocol promises byte-stable
responses: the whole amortization story of PRs 1–5 assumes two
structurally equal problems serialize identically in every process.
RL003 checks that property *syntactically inside* rendering functions;
this rule generalizes it to flows — a fingerprint entry point calling,
three frames down, a helper that iterates a ``set()`` unsorted or
consults ``id()`` poisons the cache just as surely, and no per-file
view can see it.

Entry points are the deterministic-output surfaces, matched by name so
fixtures and the real tree agree: ``fingerprint*`` / ``*canonical*`` /
``serialize*`` / ``to_json*`` / ``encode_response`` functions, and any
method of a ``*Journal*`` class.  Sinks are the per-function
nondeterminism effects of the analysis: ``id()``, module-level
``random.*`` (seeded ``random.Random(seed)`` instances are exempt),
``uuid.uuid4``, ``os.urandom``, and ordered traversal of provably
unordered expressions with no order-restoring consumer.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Iterator

from repro.devtools.lint.findings import Finding
from repro.devtools.lint.program.propagate import find_effect_paths
from repro.devtools.lint.registry import ProgramRule, register

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.devtools.lint.program.analyzer import ProgramAnalysis

__all__ = ["DeterminismFlowRule"]

_ENTRY_NAME = re.compile(
    r"^fingerprint|canonical|^serialize|^to_json|^encode_response$"
)
_ENTRY_CLASS = re.compile(r"Journal")


@register
class DeterminismFlowRule(ProgramRule):
    code = "RL103"
    name = "determinism-flow"
    summary = (
        "no call path from fingerprint/journal/NDJSON serialization "
        "may reach an unsorted-iteration or entropy source"
    )
    rationale = (
        "Canonical fingerprints are the cache identity and the "
        "journal's replay key; an iteration-order-dependent value "
        "reaching one makes equal problems miss the cache — or "
        "*collide across processes only sometimes*, serving a verdict "
        "computed for a different question."
    )

    def check_program(self, analysis: "ProgramAnalysis") -> Iterator[Finding]:
        entries = sorted(
            qualname
            for qualname, info in analysis.functions.items()
            if _ENTRY_NAME.search(info.name)
            or (info.cls is not None and _ENTRY_CLASS.search(info.cls))
        )
        paths = find_effect_paths(
            entries, analysis.calls, lambda fn: analysis.nondet.get(fn, [])
        )
        for path in paths:
            module = analysis.module_of(path.sink)
            if module is None:
                continue
            snippet = ""
            if 1 <= path.line <= len(module.lines):
                snippet = module.lines[path.line - 1].strip()
            yield Finding(
                code=self.code,
                message=(
                    f"nondeterminism ({path.desc}) on a path from "
                    f"deterministic-output entry `{path.entry}`; sort "
                    "the iteration or drop the entropy source"
                ),
                path=module.rel_path,
                line=path.line,
                column=0,
                snippet=snippet,
                witness=analysis.witness_for_hops(
                    path.hops, path.desc, path.sink, path.line
                ),
            )
