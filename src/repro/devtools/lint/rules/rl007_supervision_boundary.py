"""RL007 — no bare ``except Exception`` in the service layer.

The batch service's contract ("``run_batch`` never raises; every job
gets a result") is implemented by exactly two *documented supervision
boundaries* — the retry loop's catch-all and the pool-collection
catch-all in :mod:`repro.service.service` — which convert arbitrary
worker failures into ``status="error"`` results.  Every *other*
``except Exception:`` (or bare ``except:``, or ``except
BaseException:``) in ``src/repro/service/`` is a bug factory: it can
swallow a real defect (a typo'd attribute, a broken invariant) and
disguise it as an infrastructure error, which then feeds the circuit
breaker and poisons the error accounting the resilience layer depends
on.  Handlers must name the exceptions they expect
(:class:`~repro.exceptions.TransientWorkerError`, ``OSError``, pool
exceptions, ...).

The sanctioned supervision boundaries carry an inline
``# repro-lint: ignore[RL007]`` with a comment naming them; adding a
new catch-all requires the same explicit acknowledgement in review.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import Rule, register

__all__ = ["SupervisionBoundaryRule"]

#: Exception names whose blanket capture the rule rejects.
_BLANKET_NAMES = frozenset({"Exception", "BaseException"})


def _blanket_name(node: ast.expr) -> bool:
    """Whether ``node`` names Exception/BaseException (bare or dotted)."""
    if isinstance(node, ast.Name):
        return node.id in _BLANKET_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _BLANKET_NAMES
    return False


@register
class SupervisionBoundaryRule(Rule):
    code = "RL007"
    name = "supervision-boundary"
    summary = (
        "service code must not blanket-catch Exception outside the "
        "documented supervision boundaries"
    )
    rationale = (
        "run_batch's never-raises contract is implemented by two "
        "audited catch-alls; any other blanket handler can disguise a "
        "real defect as an infrastructure error and mis-train the "
        "circuit breaker."
    )
    scopes = ("src/repro/service/",)

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx,
                    node,
                    "bare except: in service code; name the expected "
                    "exceptions (supervision boundaries suppress inline)",
                )
            elif _blanket_name(node.type):
                yield self.finding(
                    ctx,
                    node,
                    "blanket except Exception in service code; name the "
                    "expected exceptions (supervision boundaries "
                    "suppress inline)",
                )
            elif isinstance(node.type, ast.Tuple) and any(
                _blanket_name(element) for element in node.type.elts
            ):
                yield self.finding(
                    ctx,
                    node,
                    "exception tuple includes Exception/BaseException; "
                    "name the expected exceptions",
                )
