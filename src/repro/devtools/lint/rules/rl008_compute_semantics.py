"""RL008 — compute entry points validate ``semantics`` before work.

The compute layer (``repro.compute``) is the construction counterpart
of the checking dispatchers: ``compute_optimal_repair`` and
``count_repairs_entailing`` branch on a ``semantics`` string, and the
service layer caches their payloads under keys that include that
string.  An entry point that falls through an unrecognized semantics to
a default branch would silently construct the *wrong kind* of repair
(or count the wrong repair set) and the cache would replay the wrong
payload forever — the compute analogue of the cache-poisoning failure
RL002 guards against on the checking side.

The rule checks every public module-level function in
``src/repro/compute/`` that takes a ``semantics`` parameter and
requires its body to validate before use, by any of the accepted
means:

* calling the module's ``_require_semantics`` validator,
* raising ``UsageError`` itself (a hand-rolled vocabulary check), or
* delegating to another compute entry point (``compute_*``,
  ``count_*``, or ``find_*`` — which then validates).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.asthelpers import call_name, terminal_name
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import Rule, register

__all__ = ["ComputeSemanticsRule"]

_VALIDATOR_CALLS = frozenset({"_require_semantics"})

_DELEGATE_PREFIXES = ("compute_", "count_", "find_")


def _validates(func: ast.FunctionDef) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name is None:
                continue
            if name in _VALIDATOR_CALLS:
                return True
            if name.startswith(_DELEGATE_PREFIXES):
                return True
        elif isinstance(node, ast.Raise) and node.exc is not None:
            exc = node.exc
            raised = (
                call_name(exc) if isinstance(exc, ast.Call)
                else terminal_name(exc)
            )
            if raised == "UsageError":
                return True
    return False


@register
class ComputeSemanticsRule(Rule):
    code = "RL008"
    name = "compute-semantics-validation"
    summary = (
        "public compute entry points must validate their semantics "
        "argument (_require_semantics or UsageError) before use"
    )
    rationale = (
        "Compute payloads are cached under keys that include the "
        "semantics string; an entry point that defaults instead of "
        "rejecting an unknown semantics caches the wrong repair or "
        "count and replays it forever."
    )
    scopes = ("src/repro/compute/",)

    def check(self, ctx) -> Iterator[Finding]:
        for node in ctx.tree.body:
            if not isinstance(node, ast.FunctionDef):
                continue
            if node.name.startswith("_"):
                continue
            args = node.args
            names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
            if "semantics" not in names:
                continue
            if not _validates(node):
                yield self.finding(
                    ctx,
                    node,
                    f"compute entry point {node.name}() uses its "
                    f"semantics argument without validation (call "
                    f"_require_semantics or raise UsageError)",
                )
