"""RL009 — checkers use the carried conflict index, not raw adjacency.

The columnar backend work (DESIGN.md §13) made conflict adjacency a
*carried* artifact: a :class:`~repro.core.priority.PrioritizingInstance`
caches both the object :class:`~repro.core.conflicts.ConflictIndex` and
the :class:`~repro.core.bitset_index.BitsetCore`, so every checker that
receives one already has per-fact adjacency in O(1).  A checker that
nevertheless rebuilds adjacency from scratch — constructing a fresh
index, calling a one-shot ``repro.core.conflicts`` convenience wrapper,
or hand-rolling per-fact ``frozenset`` neighbour sets out of raw
``fd.is_conflict`` pair tests — silently restores the quadratic scans
the fast paths removed, and (worse) bypasses the backend selector, so
the ``object``/``bitset`` equivalence contract no longer covers the
adjacency it computes.

The rule checks every function in ``src/repro/core/checking/`` that
receives an index carrier (a parameter named ``prioritizing``,
``index``, ``conflict_index``, or ``core``) and flags, inside its body:

* ``ConflictIndex(...)`` / ``BitsetConflictIndex(...)`` construction
  (the carrier already holds one),
* calls to the one-shot module helpers ``facts_conflicting_with``,
  ``conflict_graph``, ``conflicting_pairs``, ``naive_conflicting_pairs``
  (each builds and throws away a full index), and
* direct ``is_conflict(...)`` pair tests (hand-rolled adjacency).

Deliberate per-call rebuilds — the ``*_fresh`` ablation baselines and
the Figure-faithful ``*_literal`` checkers, whose whole point is to
cost what the pre-fast-path code cost — carry inline
``# repro-lint: ignore[RL009]`` justifications.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.devtools.lint.asthelpers import call_name
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import Rule, register

__all__ = ["IndexBackedAdjacencyRule"]

#: Parameter names that carry a cached conflict index into a function.
_CARRIERS = frozenset({"prioritizing", "index", "conflict_index", "core"})

#: Index constructors: rebuilding one discards the carried cache.
_INDEX_CONSTRUCTORS = frozenset({"ConflictIndex", "BitsetConflictIndex"})

#: One-shot repro.core.conflicts wrappers that build a throwaway index.
_ONE_SHOT_HELPERS = frozenset(
    {
        "facts_conflicting_with",
        "conflict_graph",
        "conflicting_pairs",
        "naive_conflicting_pairs",
    }
)

#: The raw pairwise FD primitive; loops over it are hand-rolled adjacency.
_PAIRWISE = frozenset({"is_conflict"})


def _parameter_names(func: ast.AST) -> Set[str]:
    args = func.args
    return {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}


@register
class IndexBackedAdjacencyRule(Rule):
    code = "RL009"
    name = "index-backed-adjacency"
    summary = (
        "checkers holding a conflict-index carrier must not rebuild "
        "raw per-fact adjacency (fresh index, one-shot helper, or "
        "is_conflict pair loop)"
    )
    rationale = (
        "PrioritizingInstance caches both conflict-index backends; a "
        "checker that reconstructs adjacency restores the quadratic "
        "scans the columnar backend removed and computes adjacency the "
        "object/bitset equivalence tests never see."
    )
    scopes = ("src/repro/core/checking/",)

    def check(self, ctx) -> Iterator[Finding]:
        flagged: Set[int] = set()
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if _CARRIERS.isdisjoint(_parameter_names(func)):
                continue
            for node in ast.walk(func):
                if not isinstance(node, ast.Call) or id(node) in flagged:
                    continue
                name = call_name(node)
                if name in _INDEX_CONSTRUCTORS:
                    message = (
                        f"fresh {name}(...) inside a checker that already "
                        f"carries a conflict index; use the cached "
                        f"prioritizing.conflict_index / .bitset_core"
                    )
                elif name in _ONE_SHOT_HELPERS:
                    message = (
                        f"one-shot {name}(...) builds a throwaway index; "
                        f"query the carried ConflictIndex/BitsetCore "
                        f"instead"
                    )
                elif name in _PAIRWISE:
                    message = (
                        "raw is_conflict(...) pair test hand-rolls "
                        "adjacency; use the carried index's conflicts_of/"
                        "conflicts_of_in"
                    )
                else:
                    continue
                flagged.add(id(node))
                yield self.finding(ctx, node, message)
