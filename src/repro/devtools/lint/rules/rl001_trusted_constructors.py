"""RL001 — trusted constructors only on the checking hot path.

PR 2's fast paths rest on a contract the type system cannot see: code
under ``src/repro/core/checking/`` derives thousands of instances and
priority restrictions per check, and every one of them is built from
facts/edges that are *already validated*.  The trusted constructors
(``Instance._from_validated``, ``PriorityRelation._from_acyclic``,
``PrioritizingInstance._from_validated``) skip the O(n) re-validation
scans; calling the public validating constructors there silently
reintroduces the quadratic blow-up the fast paths removed — and, worse,
hides *where* validation is assumed versus established.

The rule flags any direct ``Instance(...)``, ``PriorityRelation(...)``,
or ``PrioritizingInstance(...)`` call inside the checking package.  The
rare legitimate uses — e.g. relying on the validating constructor's
cycle detection to *filter* candidate orientations — carry an inline
``# repro-lint: ignore[RL001]`` with a comment justifying them.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.asthelpers import call_name
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import Rule, register

__all__ = ["TrustedConstructorsRule"]

_VALIDATING = frozenset(
    {"Instance", "PriorityRelation", "PrioritizingInstance"}
)

_TRUSTED = {
    "Instance": "Instance._from_validated",
    "PriorityRelation": "PriorityRelation._from_acyclic",
    "PrioritizingInstance": "PrioritizingInstance._from_validated",
}


@register
class TrustedConstructorsRule(Rule):
    code = "RL001"
    name = "trusted-constructors"
    summary = (
        "checking/ must build core objects via the trusted "
        "_from_validated/_from_acyclic constructors"
    )
    rationale = (
        "The PR 2 fast paths (DESIGN.md §8) make re-validation on derived "
        "instances pure overhead; a validating constructor on the hot "
        "path silently restores the O(|I|) scans per derived candidate."
    )
    scopes = ("src/repro/core/checking/",)

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name in _VALIDATING:
                yield self.finding(
                    ctx,
                    node,
                    f"fresh {name}(...) on the checking hot path; use "
                    f"{_TRUSTED[name]} (or justify with an inline ignore)",
                )
