"""RL006 — monotonic clocks only in core/service timing logic.

Deadlines and latency measurements in the improvement search
(``node_budget``/``deadline`` plumbing) and the batch service (job
timeouts, retry backoff accounting, metrics histograms) must use
:func:`time.monotonic` (or ``perf_counter``): ``time.time()`` is
wall-clock and jumps under NTP slew, DST, or manual adjustment.  A
backwards jump mid-search would un-expire a deadline on a coNP-hard
schema — the budgeted degradation of DESIGN.md §7 would then block
instead of returning ``timeout`` — and a forwards jump spuriously
degrades answerable jobs.  Verdicts must not depend on the wall clock.

The rule flags ``time.time()`` calls, ``from time import time``, and
``datetime.now()`` / ``datetime.utcnow()`` calls (also wall-clock, with
the extra trap that naive datetimes silently mix timezones) under
``src/repro/core/`` and ``src/repro/service/``.  Code that genuinely
needs a wall-clock *timestamp* (for display only, never arithmetic) can
suppress inline with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import Rule, register

__all__ = ["MonotonicTimeRule"]


@register
class MonotonicTimeRule(Rule):
    code = "RL006"
    name = "monotonic-time"
    summary = (
        "core/service timing must use time.monotonic(), never "
        "wall-clock time.time()"
    )
    rationale = (
        "Deadline plumbing decides degraded/timeout statuses on "
        "coNP-hard schemas; wall-clock jumps would make those verdicts "
        "clock-dependent."
    )
    scopes = ("src/repro/core/", "src/repro/service/")

    @staticmethod
    def _is_datetime_receiver(value: ast.expr) -> bool:
        """Whether ``value`` spells the ``datetime`` class or module
        (``datetime`` or ``datetime.datetime``)."""
        if isinstance(value, ast.Name):
            return value.id == "datetime"
        return (
            isinstance(value, ast.Attribute)
            and value.attr == "datetime"
            and isinstance(value.value, ast.Name)
            and value.value.id == "datetime"
        )

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "time"
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "time"
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "wall-clock time.time() in core/service timing; "
                        "use time.monotonic()",
                    )
                elif (
                    isinstance(func, ast.Attribute)
                    and func.attr in ("now", "utcnow")
                    and self._is_datetime_receiver(func.value)
                ):
                    yield self.finding(
                        ctx,
                        node,
                        f"wall-clock datetime.{func.attr}() in "
                        "core/service timing; use time.monotonic()",
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "time" and any(
                    alias.name == "time" for alias in node.names
                ):
                    yield self.finding(
                        ctx,
                        node,
                        "importing wall-clock time() from time; use "
                        "time.monotonic()",
                    )
