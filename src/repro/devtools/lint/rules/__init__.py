"""The project-invariant rule set.

Importing this package registers every rule; the engine triggers the
import via :func:`repro.devtools.lint.registry.all_rules`.  Each rule
module documents the invariant it machine-checks and the paper/engine
construct the invariant protects (see also ``docs/lint_rules.md`` and
DESIGN.md §9).
"""

from repro.devtools.lint.rules import (  # noqa: F401
    rl001_trusted_constructors,
    rl002_dispatch_validation,
    rl003_deterministic_output,
    rl004_mutable_defaults,
    rl005_exception_hierarchy,
    rl006_monotonic_time,
    rl007_supervision_boundary,
    rl008_compute_semantics,
    rl009_index_backed_adjacency,
    rl100_layering,
    rl101_async_safety,
    rl102_exception_flow,
    rl103_determinism_flow,
)

__all__ = [
    "rl001_trusted_constructors",
    "rl002_dispatch_validation",
    "rl003_deterministic_output",
    "rl004_mutable_defaults",
    "rl005_exception_hierarchy",
    "rl006_monotonic_time",
    "rl007_supervision_boundary",
    "rl008_compute_semantics",
    "rl009_index_backed_adjacency",
    "rl100_layering",
    "rl101_async_safety",
    "rl102_exception_flow",
    "rl103_determinism_flow",
]
