"""RL002 — every public checker entry point validates its candidate.

PR 1 made ``NotASubinstanceError`` the uniform malformed-input signal
across all dispatcher methods: a candidate with facts outside ``I`` is
an *error*, never a "not optimal" verdict.  The batch service and the
CQA layer rely on that contract to distinguish bad requests from
negative answers — a checker that skips the validation would misreport
garbage candidates as verdicts and poison the result cache (the cache
key includes the candidate, so a wrong verdict is replayed forever).

The rule checks every public module-level ``check_*`` function in
``src/repro/core/checking/`` that takes a ``candidate`` parameter and
requires its body to validate before use, by any of the accepted means:

* calling :func:`repro.core.checking.validation.precheck` (or the
  retained ``precheck_fresh`` baseline),
* raising ``NotASubinstanceError`` itself,
* calling ``.subinstance(...)`` (which validates membership), or
* delegating to another ``check_*`` entry point (which then validates).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.lint.asthelpers import call_name, terminal_name
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import Rule, register

__all__ = ["DispatchValidationRule"]

_VALIDATOR_CALLS = frozenset({"precheck", "precheck_fresh", "subinstance"})


def _validates(func: ast.FunctionDef) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name is None:
                continue
            if name in _VALIDATOR_CALLS:
                return True
            if name.startswith("check_"):
                return True
        elif isinstance(node, ast.Raise) and node.exc is not None:
            exc = node.exc
            raised = (
                call_name(exc) if isinstance(exc, ast.Call)
                else terminal_name(exc)
            )
            if raised == "NotASubinstanceError":
                return True
    return False


@register
class DispatchValidationRule(Rule):
    code = "RL002"
    name = "dispatch-validation"
    summary = (
        "public check_* entry points must validate candidate ⊆ I "
        "(precheck or NotASubinstanceError) before use"
    )
    rationale = (
        "The service layer's cache keys include the candidate; an entry "
        "point that answers instead of raising on a non-subinstance "
        "poisons cached verdicts for the coNP-hard schemas of Thm 3.1."
    )
    scopes = ("src/repro/core/checking/",)

    def check(self, ctx) -> Iterator[Finding]:
        for node in ctx.tree.body:
            if not isinstance(node, ast.FunctionDef):
                continue
            if node.name.startswith("_") or not node.name.startswith("check"):
                continue
            args = node.args
            names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
            if "candidate" not in names:
                continue
            if not _validates(node):
                yield self.finding(
                    ctx,
                    node,
                    f"public checker {node.name}() uses its candidate "
                    f"without subinstance validation (call precheck or "
                    f"raise NotASubinstanceError)",
                )
