"""RL003 — no unsorted set/dict iteration feeding rendered output.

The service cache (PR 1) keys results on canonical fingerprints, the
IO layer promises byte-stable serializations, and ``__repr__`` output
lands in logs, doctests, and experiment reports.  All three break
silently when a set or dict is iterated in arbitrary order on the way
to text: two structurally equal objects render differently, cache keys
stop deduplicating (or worse, *collide across processes only
sometimes*), and the coNP-hard-schema verdict cache of Theorem 3.1 can
serve a result computed for a different question.  Livshits–Kimelfeld–
Roy and Kimelfeld–Livshits–Peterfreund both hinge on canonical,
order-independent representations of repairs; this rule machine-checks
the code-level shadow of that property.

The rule inspects *rendering functions* — ``__repr__`` and anything
whose name marks it as serialization/fingerprinting (``fingerprint*``,
``*canonical*``, ``serialize*``, ``to_dict``/``to_json``/``to_csv``/
``to_dot``, ``render*``, ``describe*``, ``snapshot*``) — and flags
iteration over *order-unstable expressions* unless the iteration is
wrapped in an order-restoring or order-insensitive consumer
(``sorted``, ``heapq.nsmallest``/``nlargest``, ``min``/``max``/``sum``/
``len``/``any``/``all``, or conversion back into ``set``/``frozenset``).

Order-unstable expressions are detected structurally: set literals and
comprehensions, ``set(...)``/``frozenset(...)`` calls, dict-view calls
(``.keys()``/``.values()``/``.items()``) on a plain name or attribute,
set-typed *attribute* names from the core data model (``facts``,
``edges``, ``fds``, ``conflicts`` and their private variants — bare
locals with those names are routinely already-sorted lists and are not
matched), and bare ``self`` iteration inside ``__repr__`` (a container
wrapper's own iteration order is part of what must be pinned down).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Tuple

from repro.devtools.lint.asthelpers import (
    build_parent_map,
    call_name,
    terminal_name,
)
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import Rule, register

__all__ = ["DeterministicOutputRule"]

_SENSITIVE = re.compile(
    r"^__repr__$|fingerprint|canonical|serialize|^to_dict$|^to_json|"
    r"^to_csv|_to_dot$|^to_dot$|^render|^describe|^snapshot"
)

#: Attribute/name identifiers that denote set-typed core containers.
_SET_NAMES = frozenset({"facts", "edges", "fds", "conflicts"})

#: Calls that restore or erase ordering around an iteration.
_ORDER_SAFE_CALLS = frozenset(
    {
        "sorted",
        "nsmallest",
        "nlargest",
        "min",
        "max",
        "sum",
        "len",
        "any",
        "all",
        "set",
        "frozenset",
    }
)

_DICT_VIEWS = frozenset({"keys", "values", "items"})


def _is_unstable(expr: ast.AST, in_repr: bool) -> Optional[str]:
    """Why ``expr`` iterates in no stable order, or None if it is fine."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return "a set literal/comprehension"
    if isinstance(expr, ast.Call):
        name = call_name(expr)
        if name in ("set", "frozenset"):
            return f"a {name}(...) call"
        if (
            name in _DICT_VIEWS
            and isinstance(expr.func, ast.Attribute)
            and isinstance(expr.func.value, (ast.Name, ast.Attribute))
        ):
            return f"a dict .{name}() view"
        return None
    if in_repr and isinstance(expr, ast.Name) and expr.id == "self":
        return "the container's own (unpinned) iteration order"
    # Only attribute access is matched against the set-typed names of
    # the core data model (instance.facts, priority.edges, ...); a bare
    # local with such a name is routinely an already-sorted list.
    if isinstance(expr, ast.Attribute):
        name = terminal_name(expr)
        if name is None:
            return None
        if name.lstrip("_") in _SET_NAMES or name.endswith(("_set", "_sets")):
            return f"the set-typed {name!r}"
    return None


def _consumer_call(
    node: ast.AST, parents: "dict[ast.AST, ast.AST]"
) -> Optional[str]:
    """The name of the call directly consuming ``node``, if any."""
    parent = parents.get(node)
    if isinstance(parent, ast.Call) and node in parent.args:
        return call_name(parent)
    return None


def _iteration_sites(
    func: ast.AST, parents: "dict[ast.AST, ast.AST]"
) -> Iterator[Tuple[ast.AST, ast.AST, Optional[str]]]:
    """(anchor, iterable, consumer) triples for every iteration in ``func``.

    ``consumer`` is the name of the call the iteration's result flows
    straight into (``sorted``, ``.join``, ...), when detectable.
    """
    for node in ast.walk(func):
        if isinstance(node, ast.For):
            yield node, node.iter, None
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
            consumer = _consumer_call(node, parents)
            for comp in node.generators:
                yield node, comp.iter, consumer
        elif isinstance(node, ast.DictComp):
            consumer = _consumer_call(node, parents)
            for comp in node.generators:
                yield node, comp.iter, consumer
        elif isinstance(node, ast.Starred):
            yield node, node.value, _consumer_call(node, parents)
        elif isinstance(node, ast.Call):
            name = call_name(node)
            if name == "join" and len(node.args) == 1:
                arg = node.args[0]
                if not isinstance(
                    arg, (ast.ListComp, ast.GeneratorExp, ast.SetComp)
                ):
                    yield node, arg, None
            elif name in ("list", "tuple") and len(node.args) == 1:
                yield node, node.args[0], _consumer_call(node, parents)


@register
class DeterministicOutputRule(Rule):
    code = "RL003"
    name = "deterministic-output"
    summary = (
        "repr/serialization/fingerprint functions must not iterate "
        "sets or dict views in arbitrary order"
    )
    rationale = (
        "Cache fingerprints (PR 1) and serialized artifacts must be "
        "canonical: iteration-order leaks split or corrupt cache "
        "entries for structurally equal inputs."
    )
    scopes = ("src/",)

    def check(self, ctx) -> Iterator[Finding]:
        parents = build_parent_map(ctx.tree)
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _SENSITIVE.search(func.name):
                continue
            in_repr = func.name == "__repr__"
            seen: List[Tuple[int, int]] = []
            for anchor, iterable, consumer in _iteration_sites(func, parents):
                if consumer in _ORDER_SAFE_CALLS:
                    continue
                reason = _is_unstable(iterable, in_repr)
                if reason is None:
                    continue
                spot = (
                    getattr(anchor, "lineno", 0),
                    getattr(anchor, "col_offset", 0),
                )
                if spot in seen:
                    continue
                seen.append(spot)
                yield self.finding(
                    ctx,
                    anchor,
                    f"{func.name}() iterates {reason} without sorted(); "
                    f"output order is not canonical",
                )
