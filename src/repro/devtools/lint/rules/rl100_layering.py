"""RL100 — the architecture DAG: layering and import cycles.

The repository's layers (top-level modules/packages under the project
package: ``core``, ``io``, ``service``, ``server``, ``cli``,
``devtools``, ...) form a DAG that the ROADMAP's scale-out plans lean
on: the core checkers must stay embeddable without dragging in the
serving stack, and the dev tooling must never import runtime layers
(a linter that imports the daemon can deadlock the very CI job that
guards the daemon).  Per-file rules cannot see an import *graph*; this
rule checks every resolved project import — module-level and lazy
function-local alike — against the checked-in ``ARCHITECTURE`` file at
the lint root (falling back to the built-in copy of the same DAG), and
reports module-level import cycles (strongly connected components of
the eager import graph).  Lazy imports are exempt from the cycle check
only: they are the sanctioned way to break a bootstrap cycle, but they
still must respect the DAG.

Deliberate module-to-module escape hatches are recorded in
``ARCHITECTURE`` as ``allow a.b -> c.d`` lines, so every exemption is
reviewable in one place.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterator, Set, Tuple

from repro.devtools.lint.findings import Finding
from repro.devtools.lint.program.modules import module_layer
from repro.devtools.lint.registry import ProgramRule, register
from repro.exceptions import UsageError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.devtools.lint.program.analyzer import ProgramAnalysis

__all__ = ["LayeringRule"]

#: Layers every layer may import implicitly.
BASE_LAYERS = frozenset({"exceptions", "fsutil"})

#: The built-in architecture DAG, mirroring the repository's
#: ``ARCHITECTURE`` file (which, when present at the lint root, is the
#: authority).  Maps layer -> layers it may import from.
DEFAULT_ARCHITECTURE: Dict[str, FrozenSet[str]] = {
    layer: frozenset(allowed)
    for layer, allowed in {
        "<root>": ("core", "explain"),
        "analysis": ("core",),
        "catalog": ("core", "hardness", "workloads"),
        "cli": (
            "analysis",
            "compute",
            "core",
            "devtools",
            "engine",
            "explain",
            "hardness",
            "io",
            "server",
            "service",
            "workloads",
        ),
        "compute": ("core", "cqa"),
        "core": (),
        "cqa": ("core",),
        "devtools": (),
        "engine": ("core",),
        "explain": ("core", "hardness"),
        "hardness": ("core",),
        "io": ("core",),
        "server": ("core", "cqa", "io", "service"),
        "service": ("compute", "core", "cqa", "engine", "io"),
        "testing": ("core", "cqa"),
        "viz": ("core",),
        "workloads": ("core", "hardness"),
    }.items()
}

ARCHITECTURE_FILE = "ARCHITECTURE"


def load_architecture(
    root: Path,
) -> Tuple[Dict[str, FrozenSet[str]], Set[Tuple[str, str]]]:
    """The (layer DAG, allowed module edges) for the tree at ``root``.

    Parses ``<root>/ARCHITECTURE`` when present (see that file for the
    grammar); otherwise returns the built-in DAG with no module-level
    exemptions.
    """
    path = root / ARCHITECTURE_FILE
    if not path.is_file():
        return dict(DEFAULT_ARCHITECTURE), set()
    allowed: Dict[str, FrozenSet[str]] = {}
    edges: Set[Tuple[str, str]] = set()
    for raw in path.read_text(encoding="utf-8").splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("allow "):
            spec = line[len("allow "):]
            src, sep, dst = (part.strip() for part in spec.partition("->"))
            if not sep or not src or not dst:
                raise UsageError(
                    f"malformed ARCHITECTURE allow line: {raw!r}"
                )
            edges.add((src, dst))
            continue
        src, sep, rest = (part.strip() for part in line.partition("->"))
        if not sep or not src:
            raise UsageError(f"malformed ARCHITECTURE line: {raw!r}")
        targets = frozenset(
            part.strip() for part in rest.split(",") if part.strip()
        )
        if src in allowed:
            raise UsageError(f"duplicate ARCHITECTURE layer: {src!r}")
        allowed[src] = targets
    return allowed, edges


@register
class LayeringRule(ProgramRule):
    code = "RL100"
    name = "layering"
    summary = (
        "project imports must follow the ARCHITECTURE DAG; "
        "module-level import cycles are errors"
    )
    rationale = (
        "The serving fleet scales by embedding the core checkers in "
        "many contexts (daemon workers, batch pools, oracles); a core "
        "that imports the service stack, or dev tooling that imports "
        "runtime layers, collapses those layers into one deployable "
        "and makes the dichotomy engine unshippable on its own."
    )

    def check_program(self, analysis: "ProgramAnalysis") -> Iterator[Finding]:
        allowed, allow_edges = load_architecture(analysis.root)
        for edge in analysis.import_edges:
            if edge.type_only:
                continue
            src_layer = module_layer(edge.src)
            dst_layer = module_layer(edge.dst)
            if src_layer == dst_layer or dst_layer in BASE_LAYERS:
                continue
            if (edge.src, edge.dst) in allow_edges:
                continue
            module = analysis.modules.modules[edge.src]
            dst_module = analysis.modules.modules[edge.dst]
            snippet = ""
            if 1 <= edge.line <= len(module.lines):
                snippet = module.lines[edge.line - 1].strip()
            witness = (
                f"{edge.src} ({module.rel_path}:{edge.line})",
                f"{edge.dst} ({dst_module.rel_path}:1)",
            )
            if src_layer not in allowed:
                message = (
                    f"layer '{src_layer}' is not declared in "
                    f"{ARCHITECTURE_FILE}; declare its dependencies "
                    f"before importing '{edge.dst}'"
                )
            elif dst_layer not in allowed[src_layer]:
                message = (
                    f"layer '{src_layer}' may not import layer "
                    f"'{dst_layer}' ({edge.src} -> {edge.dst}); allow it "
                    f"in {ARCHITECTURE_FILE} or break the dependency"
                )
            else:
                continue
            yield Finding(
                code=self.code,
                message=message,
                path=module.rel_path,
                line=edge.line,
                column=0,
                snippet=snippet,
                witness=witness,
            )
        for cycle in analysis.import_cycles:
            head = cycle[0]
            module = analysis.modules.modules[head]
            chain = " -> ".join(cycle + (cycle[0],))
            witness = tuple(
                f"{name} ({analysis.modules.modules[name].rel_path}:1)"
                for name in cycle
            )
            yield Finding(
                code=self.code,
                message=(
                    f"module-level import cycle: {chain}; break it with "
                    "a lazy (function-local) import or a refactor"
                ),
                path=module.rel_path,
                line=1,
                column=0,
                snippet=module.lines[0].strip() if module.lines else "",
                witness=witness,
            )
