"""The ``repro lint`` command-line front end.

Usage (also reachable as ``python -m repro.devtools.lint``)::

    repro lint [paths...] [--format text|json] [--select RL001,...]
               [--ignore RL003,...] [--root DIR] [--program]
               [--baseline FILE] [--no-baseline] [--write-baseline]
               [--list-rules]

Exit codes: 0 — clean; 1 — findings reported; 2 — usage error.
Default paths: ``src`` under the root.  The report order is
deterministic (path, line, column, code) and the JSON format is stable
for tooling.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Tuple

from repro.devtools.lint.baseline import (
    DEFAULT_BASELINE_NAME,
    write_baseline,
)
from repro.devtools.lint.engine import LintConfig, LintReport, lint_paths
from repro.devtools.lint.registry import all_rules
from repro.exceptions import ReproError

__all__ = ["build_parser", "main", "run"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def _parse_codes(text: Optional[str]) -> Optional[Tuple[str, ...]]:
    if text is None:
        return None
    codes = tuple(
        part.strip().upper() for part in text.split(",") if part.strip()
    )
    return codes


def build_parser() -> argparse.ArgumentParser:
    """The ``repro lint`` argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "AST lint for the repro engine's correctness and determinism "
            "invariants (per-file rules RL001-RL009; whole-program rules "
            "RL100-RL103 with --program; see docs/lint_rules.md)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src under --root)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="CODES",
        help="comma-separated rule codes to run exclusively",
    )
    parser.add_argument(
        "--ignore",
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="project root paths are reported relative to (default: cwd)",
    )
    parser.add_argument(
        "--program",
        action="store_true",
        help=(
            "also run the whole-program pass (RL100-RL103: layering, "
            "async-safety, exception-flow, determinism-flow) over the "
            "import and call graphs of <root>/src"
        ),
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE_NAME})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report baselined findings too",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept all current findings into the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules and exit",
    )
    return parser


def _render_text(report: LintReport, stream) -> None:
    for finding in report.findings:
        for line in finding.render_lines():
            print(line, file=stream)
    summary = (
        f"{len(report.findings)} finding(s) in "
        f"{report.files_checked} file(s)"
    )
    extras = []
    if report.suppressed_inline:
        extras.append(f"{report.suppressed_inline} inline-suppressed")
    if report.suppressed_baseline:
        extras.append(f"{report.suppressed_baseline} baselined")
    if extras:
        summary += " (" + ", ".join(extras) + ")"
    print(summary, file=stream)


def _render_json(report: LintReport, stream) -> None:
    document = {
        "version": 1,
        "findings": [finding.to_dict() for finding in report.findings],
        "files_checked": report.files_checked,
        "suppressed_inline": report.suppressed_inline,
        "suppressed_baseline": report.suppressed_baseline,
        "ok": report.ok,
    }
    print(json.dumps(document, indent=2, sort_keys=True), file=stream)


def _list_rules(stream) -> None:
    for rule in all_rules():
        scopes = ", ".join(rule.scopes)
        print(f"{rule.code}  {rule.name}  [{scopes}]", file=stream)
        print(f"       {rule.summary}", file=stream)


def run(argv: Optional[List[str]] = None, stream=None) -> int:
    """Parse ``argv``, run the lint, render the report; returns exit code."""
    stream = stream if stream is not None else sys.stdout
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return EXIT_USAGE if exc.code not in (0, None) else EXIT_CLEAN

    if args.list_rules:
        _list_rules(stream)
        return EXIT_CLEAN

    root = (args.root or Path.cwd()).resolve()
    paths = [Path(p) for p in args.paths] or [root / "src"]
    baseline_path = args.baseline or (root / DEFAULT_BASELINE_NAME)

    try:
        config = LintConfig(
            root=root,
            select=_parse_codes(args.select),
            ignore=_parse_codes(args.ignore) or (),
            baseline_path=baseline_path,
            use_baseline=not (args.no_baseline or args.write_baseline),
            program=args.program,
        )
        report = lint_paths(paths, config)
    except (ReproError, OSError) as exc:
        print(f"repro lint: error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    if args.write_baseline:
        count = write_baseline(baseline_path, report.findings)
        print(
            f"wrote {count} finding(s) to {baseline_path}",
            file=stream,
        )
        return EXIT_CLEAN

    if args.format == "json":
        _render_json(report, stream)
    else:
        _render_text(report, stream)
    return EXIT_CLEAN if report.ok else EXIT_FINDINGS


def main(argv: Optional[List[str]] = None) -> int:
    """Console entry point."""
    return run(argv)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
