"""The project import graph.

Every ``import``/``from ... import`` statement in every project module
becomes an :class:`ImportEdge` between project modules, annotated with
how it executes:

``deferred``
    The import sits inside a function body, so it runs lazily at call
    time.  Deferred edges still count for layering (RL100's DAG is
    about *what may depend on what*, not about import timing) but are
    exempt from the cycle check — a lazy import is the sanctioned way
    to break a bootstrap cycle.

``type_only``
    The import sits under ``if TYPE_CHECKING:`` and is erased at
    runtime; it is excluded from both checks.

Symbol resolution is longest-prefix against the discovered module
table: ``from repro.core import fact`` yields an edge to
``repro.core.fact`` (a module), while ``from repro.core.fact import
Fact`` also resolves to ``repro.core.fact`` (the module defining the
symbol).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Set, Tuple

from repro.devtools.lint.program.modules import ModuleInfo, ModuleSet

__all__ = ["ImportEdge", "collect_import_edges", "eager_import_cycles"]


@dataclass(frozen=True)
class ImportEdge:
    """One resolved project-internal import."""

    src: str        #: importing module (dotted name)
    dst: str        #: imported project module (dotted name)
    line: int
    deferred: bool
    type_only: bool


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _absolute_base(module: ModuleInfo, level: int) -> str:
    """The absolute package a relative import of ``level`` starts from."""
    parts = module.name.split(".")
    if module.path.name == "__init__.py":
        # Package __init__: level 1 is the package itself.
        keep = len(parts) - (level - 1)
    else:
        keep = len(parts) - level
    return ".".join(parts[:max(keep, 0)])


def _iter_imports(
    tree: ast.Module,
) -> Iterator[Tuple[ast.stmt, bool, bool]]:
    """Every import statement with (deferred, type_only) flags."""

    def walk(node: ast.AST, deferred: bool, type_only: bool) -> Iterator:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.Import, ast.ImportFrom)):
                yield child, deferred, type_only
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from walk(child, True, type_only)
            elif isinstance(child, ast.If) and _is_type_checking_test(
                child.test
            ):
                for stmt in child.body:
                    yield from walk_stmt(stmt, deferred, True)
                for stmt in child.orelse:
                    yield from walk_stmt(stmt, deferred, type_only)
            else:
                yield from walk(child, deferred, type_only)

    def walk_stmt(stmt: ast.stmt, deferred: bool, type_only: bool):
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            yield stmt, deferred, type_only
        else:
            yield from walk(stmt, deferred, type_only)

    yield from walk(tree, False, False)


def collect_import_edges(modules: ModuleSet) -> List[ImportEdge]:
    """Every project-internal import edge, in deterministic order."""
    edges: List[ImportEdge] = []
    for name in sorted(modules.modules):
        module = modules.modules[name]
        for stmt, deferred, type_only in _iter_imports(module.tree):
            if isinstance(stmt, ast.Import):
                targets = [alias.name for alias in stmt.names]
            else:
                assert isinstance(stmt, ast.ImportFrom)
                if stmt.level:
                    base = _absolute_base(module, stmt.level)
                    prefix = (
                        f"{base}.{stmt.module}" if stmt.module else base
                    )
                else:
                    prefix = stmt.module or ""
                targets = [
                    f"{prefix}.{alias.name}" if prefix else alias.name
                    for alias in stmt.names
                ]
            for target in targets:
                dst = modules.resolve(target)
                if not dst or dst == module.name:
                    continue
                edges.append(
                    ImportEdge(
                        src=module.name,
                        dst=dst,
                        line=stmt.lineno,
                        deferred=deferred,
                        type_only=type_only,
                    )
                )
    return edges


def eager_import_cycles(
    modules: ModuleSet, edges: List[ImportEdge]
) -> List[Tuple[str, ...]]:
    """Module cycles among eager (non-deferred, runtime) imports.

    Returns each strongly connected component of size > 1 as a tuple of
    module names forming a concrete cycle, deterministically ordered.
    """
    graph: Dict[str, Set[str]] = {name: set() for name in modules.modules}
    for edge in edges:
        if edge.deferred or edge.type_only:
            continue
        graph[edge.src].add(edge.dst)

    # Iterative Tarjan SCC (the graph is small but recursion limits are
    # not ours to burn).
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    components: List[Tuple[str, ...]] = []

    for start in sorted(graph):
        if start in index:
            continue
        work: List[Tuple[str, Iterator[str]]] = [
            (start, iter(sorted(graph[start])))
        ]
        index[start] = lowlink[start] = counter[0]
        counter[0] += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, children = work[-1]
            advanced = False
            for child in children:
                if child not in index:
                    index[child] = lowlink[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, iter(sorted(graph[child]))))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    components.append(tuple(sorted(component)))
    return sorted(components)
