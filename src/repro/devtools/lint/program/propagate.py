"""Transitive effect propagation over the call graph.

Two propagation shapes cover the RL1xx rules:

* :func:`find_effect_paths` — plain reachability with breadth-first
  witnesses: starting from each entry point, walk resolved call edges
  until a function with a *direct* effect (blocking call, entropy
  source) is reached, and reconstruct the shortest entry-to-sink call
  chain.  Each sink site is reported once, with the first (entries are
  visited in sorted order) shortest witness — the baseline and
  suppression layers key on the sink, so which of several equivalent
  witnesses is printed does not affect identity.

* :func:`escaped_exceptions` — a monotone fixpoint for RL102: the
  exceptions escaping a function are its own uncaught raises plus
  whatever escapes its callees, minus what each call site's enclosing
  handlers catch.  Origin pointers recorded during the fixpoint let a
  finding print the exact frame-by-frame path from entry point to the
  offending ``raise``.

Both walks traverse only *resolved* project call edges.  A callable
passed as a value (``loop.run_in_executor(pool, fn)``,
``asyncio.to_thread(fn)``) produces no edge, so the executor boundary
cuts every path exactly where the runtime does.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.devtools.lint.program.callgraph import CallSite, ClassInfo
from repro.devtools.lint.program.effects import EffectSite, covered_by

__all__ = [
    "EffectPath",
    "EscapePath",
    "escape_path",
    "escaped_exceptions",
    "find_effect_paths",
]


@dataclass(frozen=True)
class EffectPath:
    """One entry-to-sink witness for a reachability effect."""

    entry: str                       #: entry-point function qualname
    #: call chain as (function qualname, call-site line in the caller);
    #: the first element's line is the entry's def line (filled by the
    #: caller of find_effect_paths via function info).
    hops: Tuple[Tuple[str, int], ...]
    sink: str                        #: function containing the effect
    desc: str                        #: effect description
    line: int                        #: effect line inside ``sink``


@dataclass(frozen=True)
class EscapePath:
    """One entry-to-raise witness for an escaping exception."""

    entry: str
    exc: str                         #: resolved exception class name
    hops: Tuple[Tuple[str, int], ...]
    sink: str                        #: function containing the raise
    line: int                        #: the raise line


def find_effect_paths(
    entries: Sequence[str],
    calls: Dict[str, Tuple[CallSite, ...]],
    direct_effects: Callable[[str], List[EffectSite]],
) -> List[EffectPath]:
    """Shortest entry-to-effect witnesses, one per distinct sink site."""
    paths: List[EffectPath] = []
    reported: Set[Tuple[str, str, int]] = set()
    for entry in sorted(entries):
        parents: Dict[str, Tuple[Optional[str], int]] = {entry: (None, 0)}
        queue = deque([entry])
        order: List[str] = []
        while queue:
            fn = queue.popleft()
            order.append(fn)
            for site in calls.get(fn, ()):
                if site.callee is None or site.callee in parents:
                    continue
                parents[site.callee] = (fn, site.line)
                queue.append(site.callee)
        for fn in order:
            for desc, line in direct_effects(fn):
                key = (fn, desc, line)
                if key in reported:
                    continue
                reported.add(key)
                hops: List[Tuple[str, int]] = []
                cursor: Optional[str] = fn
                while cursor is not None:
                    parent, call_line = parents[cursor]
                    hops.append((cursor, call_line))
                    cursor = parent
                hops.reverse()
                paths.append(
                    EffectPath(
                        entry=entry,
                        hops=tuple(hops),
                        sink=fn,
                        desc=desc,
                        line=line,
                    )
                )
    paths.sort(key=lambda p: (p.sink, p.line, p.desc, p.entry))
    return paths


def escaped_exceptions(
    functions: Sequence[str],
    calls: Dict[str, Tuple[CallSite, ...]],
    direct_raises: Dict[str, Dict[str, int]],
    classes_by_qualname: Dict[str, ClassInfo],
) -> Dict[str, Dict[str, Tuple[str, int, Optional[str]]]]:
    """Fixpoint of escaping exceptions per function.

    Returns ``fn -> exc -> origin`` where origin is ``("raise", line,
    None)`` for a direct raise or ``("call", line, callee)`` when the
    exception bubbles out of ``callee`` called at ``line``.
    """
    escaped: Dict[str, Dict[str, Tuple[str, int, Optional[str]]]] = {}
    for fn in functions:
        escaped[fn] = {
            exc: ("raise", line, None)
            for exc, line in direct_raises.get(fn, {}).items()
        }
    changed = True
    while changed:
        changed = False
        for fn in sorted(functions):
            table = escaped[fn]
            for site in sorted(
                calls.get(fn, ()), key=lambda s: (s.line, s.callee or "")
            ):
                if site.callee is None:
                    continue
                for exc in sorted(escaped.get(site.callee, ())):
                    if exc in table:
                        continue
                    if covered_by(exc, site.caught, classes_by_qualname):
                        continue
                    table[exc] = ("call", site.line, site.callee)
                    changed = True
    return escaped


def escape_path(
    entry: str,
    exc: str,
    escaped: Dict[str, Dict[str, Tuple[str, int, Optional[str]]]],
) -> Optional[EscapePath]:
    """Reconstruct the frame-by-frame path for ``exc`` escaping ``entry``."""
    hops: List[Tuple[str, int]] = []
    cursor = entry
    visited: Set[str] = set()
    while True:
        if cursor in visited:
            return None  # cycle in the origin chain; no printable path
        visited.add(cursor)
        origin = escaped.get(cursor, {}).get(exc)
        if origin is None:
            return None
        kind, line, callee = origin
        if kind == "raise":
            return EscapePath(
                entry=entry,
                exc=exc,
                hops=tuple(hops),
                sink=cursor,
                line=line,
            )
        hops.append((cursor, line))
        assert callee is not None
        cursor = callee
