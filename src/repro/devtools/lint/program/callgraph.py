"""Symbol tables and the intraprocedural-summary call graph.

One pass over each module collects the *symbol table*: top-level
functions, classes with their methods and (resolved) bases, and the
import alias map (local name -> absolute dotted target).  A second
pass walks every function body and resolves each ``ast.Call`` to:

* a project function (``callee`` set to its qualname) — by local name,
  imported symbol, ``module.func`` attribute access, ``self.method``
  within a class, ``ClassName.method``, or a constructor call (which
  edges to ``__init__`` and ``__post_init__`` when the class defines
  them, since dataclass validation lives there);
* otherwise an *external* dotted name (``"time.sleep"``,
  ``"subprocess.run"``, a builtin like ``"open"``), or — when the
  receiver cannot be resolved — a method marker ``".result"`` matched
  by name against the effect catalogs.

Calls the analysis cannot see (callables passed as values, e.g.
``loop.run_in_executor(pool, fn)``) produce **no edge**: that
under-approximation is exactly the thread-pool boundary RL101 needs,
because handing a blocking callable to an executor is the sanctioned
way off the event loop.

Every call site also records which exception names the lexically
enclosing ``try`` blocks catch, so RL102's propagation can stop an
exception at the frame that handles it.  Bodies of nested functions
and lambdas are attributed to the enclosing def — a deliberate
over-approximation (defining a blocking closure counts as blocking).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.devtools.lint.program.modules import ModuleInfo, ModuleSet

__all__ = [
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "RaiseSite",
    "SymbolTables",
    "build_symbols",
    "collect_function_bodies",
]


@dataclass(frozen=True)
class FunctionInfo:
    """One project function or method."""

    qualname: str              #: ``module.func`` or ``module.Class.method``
    module: str
    name: str                  #: bare name
    cls: Optional[str]         #: bare class name for methods
    line: int
    is_coroutine: bool


@dataclass(frozen=True)
class ClassInfo:
    """One top-level project class."""

    qualname: str
    name: str
    module: str
    line: int
    bases: Tuple[str, ...]     #: resolved base names (project dotted or bare)
    methods: Tuple[str, ...]   #: bare method names


@dataclass(frozen=True)
class CallSite:
    """One resolved call inside a function body."""

    caller: str
    callee: Optional[str]      #: project function qualname, if resolved
    external: Optional[str]    #: dotted external name or ``".method"`` marker
    line: int
    caught: FrozenSet[str]     #: exception names enclosing ``try``s catch


@dataclass(frozen=True)
class RaiseSite:
    """One ``raise`` of a resolvable exception class."""

    exc: str                   #: resolved name (project dotted or bare)
    line: int
    caught: FrozenSet[str]


@dataclass
class SymbolTables:
    """Per-module name resolution state."""

    #: module -> local name -> absolute dotted import target
    aliases: Dict[str, Dict[str, str]]
    #: module -> bare function name -> qualname
    defs: Dict[str, Dict[str, str]]
    #: module -> bare class name -> ClassInfo
    classes: Dict[str, Dict[str, ClassInfo]]
    #: class qualname -> ClassInfo (global)
    classes_by_qualname: Dict[str, ClassInfo]


def _absolute_base(module: ModuleInfo, level: int) -> str:
    parts = module.name.split(".")
    if module.path.name == "__init__.py":
        keep = len(parts) - (level - 1)
    else:
        keep = len(parts) - level
    return ".".join(parts[:max(keep, 0)])


def _dotted_parts(expr: ast.expr) -> Optional[List[str]]:
    """Flatten a ``Name``/``Attribute`` chain; None if anything else."""
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return parts
    return None


def _alias_entries(
    module: ModuleInfo, stmt: ast.stmt
) -> List[Tuple[str, str]]:
    """(local name, absolute dotted target) pairs for one import stmt."""
    entries: List[Tuple[str, str]] = []
    if isinstance(stmt, ast.Import):
        for alias in stmt.names:
            if alias.asname:
                entries.append((alias.asname, alias.name))
            else:
                # ``import a.b`` binds ``a`` to the package ``a``.
                head = alias.name.split(".")[0]
                entries.append((head, head))
    elif isinstance(stmt, ast.ImportFrom):
        if stmt.level:
            base = _absolute_base(module, stmt.level)
            prefix = f"{base}.{stmt.module}" if stmt.module else base
        else:
            prefix = stmt.module or ""
        for alias in stmt.names:
            target = f"{prefix}.{alias.name}" if prefix else alias.name
            entries.append((alias.asname or alias.name, target))
    return entries


def build_symbols(modules: ModuleSet) -> SymbolTables:
    """Collect module-level symbol tables for every project module."""
    tables = SymbolTables(aliases={}, defs={}, classes={}, classes_by_qualname={})
    # First pass: names, so base-class resolution in the second pass can
    # see classes of any module.
    for name in sorted(modules.modules):
        module = modules.modules[name]
        aliases: Dict[str, str] = {}
        defs: Dict[str, str] = {}
        for stmt in module.tree.body:
            for local, target in _alias_entries(module, stmt):
                aliases[local] = target
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defs[stmt.name] = f"{name}.{stmt.name}"
        tables.aliases[name] = aliases
        tables.defs[name] = defs
        tables.classes[name] = {}
    for name in sorted(modules.modules):
        module = modules.modules[name]
        for stmt in module.tree.body:
            if not isinstance(stmt, ast.ClassDef):
                continue
            bases = []
            for base in stmt.bases:
                resolved = _resolve_class_name(base, name, tables, modules)
                if resolved:
                    bases.append(resolved)
            methods = tuple(
                item.name
                for item in stmt.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            )
            info = ClassInfo(
                qualname=f"{name}.{stmt.name}",
                name=stmt.name,
                module=name,
                line=stmt.lineno,
                bases=tuple(bases),
                methods=methods,
            )
            tables.classes[name][stmt.name] = info
            tables.classes_by_qualname[info.qualname] = info
    return tables


def _resolve_class_name(
    expr: ast.expr,
    module: str,
    tables: SymbolTables,
    modules: ModuleSet,
) -> str:
    """Resolve a class reference to a project qualname or bare name."""
    parts = _dotted_parts(expr)
    if not parts:
        return ""
    return _resolve_symbol(parts, module, tables.aliases[module], tables, modules)


def _resolve_symbol(
    parts: List[str],
    module: str,
    aliases: Dict[str, str],
    tables: SymbolTables,
    modules: ModuleSet,
) -> str:
    """Resolve a dotted reference to a project qualname or external name.

    Project classes/functions come back as ``module.Symbol``; external
    references as their absolute dotted form when the head is an
    imported alias, else as the bare final segment.
    """
    head = parts[0]
    if head in aliases:
        target = ".".join([aliases[head]] + parts[1:])
    elif head in tables.defs.get(module, ()) or head in tables.classes.get(
        module, ()
    ):
        target = ".".join([f"{module}.{head}"] + parts[1:])
    elif len(parts) == 1:
        return head
    else:
        return ""
    return _canonicalize(target, tables, modules)


def _canonicalize(
    target: str, tables: SymbolTables, modules: ModuleSet, depth: int = 0
) -> str:
    """Chase re-exports: ``repro.service.RepairService`` (imported into
    the package ``__init__``) canonicalizes to the defining module's
    ``repro.service.service.RepairService``."""
    owner = modules.resolve(target)
    if not owner:
        return target
    suffix = target[len(owner):].lstrip(".")
    if not suffix:
        return owner
    head, _, rest = suffix.partition(".")
    if head in tables.defs.get(owner, ()) or head in tables.classes.get(
        owner, ()
    ):
        return f"{owner}.{suffix}"
    redirect = tables.aliases.get(owner, {}).get(head)
    if redirect and depth < 8:
        return _canonicalize(
            f"{redirect}.{rest}" if rest else redirect,
            tables,
            modules,
            depth + 1,
        )
    return f"{owner}.{suffix}"


def _is_false(expr: ast.expr) -> bool:
    """Whether ``expr`` is the literal ``False``."""
    return isinstance(expr, ast.Constant) and expr.value is False


class _BodyWalker(ast.NodeVisitor):
    """Collect call and raise sites for one function body."""

    def __init__(
        self,
        caller: str,
        module: ModuleInfo,
        cls: Optional[ClassInfo],
        tables: SymbolTables,
        modules: ModuleSet,
    ) -> None:
        self.caller = caller
        self.module = module
        self.cls = cls
        self.tables = tables
        self.modules = modules
        self.aliases = dict(tables.aliases[module.name])
        self.caught_stack: List[FrozenSet[str]] = [frozenset()]
        self.calls: List[CallSite] = []
        self.raises: List[RaiseSite] = []

    # -- helpers ---------------------------------------------------------------

    @property
    def caught(self) -> FrozenSet[str]:
        return self.caught_stack[-1]

    def _handler_names(self, handler: ast.ExceptHandler) -> List[str]:
        if handler.type is None:
            return ["BaseException"]
        exprs = (
            list(handler.type.elts)
            if isinstance(handler.type, ast.Tuple)
            else [handler.type]
        )
        names = []
        for expr in exprs:
            resolved = self._resolve(expr)
            if resolved:
                names.append(resolved)
        return names

    def _resolve(self, expr: ast.expr) -> str:
        parts = _dotted_parts(expr)
        if not parts:
            return ""
        return _resolve_symbol(
            parts, self.module.name, self.aliases, self.tables, self.modules
        )

    def _method_in_class(self, cls: ClassInfo, method: str) -> Optional[str]:
        """Resolve ``method`` on ``cls`` or a project ancestor class."""
        seen = set()
        queue = [cls.qualname]
        while queue:
            qualname = queue.pop(0)
            if qualname in seen:
                continue
            seen.add(qualname)
            info = self.tables.classes_by_qualname.get(qualname)
            if info is None:
                continue
            if method in info.methods:
                return f"{info.qualname}.{method}"
            queue.extend(info.bases)
        return None

    def _constructor_targets(self, cls_qualname: str) -> List[str]:
        info = self.tables.classes_by_qualname.get(cls_qualname)
        if info is None:
            return []
        targets = []
        for hook in ("__init__", "__post_init__"):
            resolved = self._method_in_class(info, hook)
            if resolved:
                targets.append(resolved)
        return targets

    def _record(self, node: ast.Call) -> None:
        func = node.func
        callees: List[str] = []
        external: Optional[str] = None
        parts = _dotted_parts(func)
        if parts is None:
            if isinstance(func, ast.Attribute):
                external = self._method_marker(func.attr, node)
            # Calls on computed callables (lambda results, subscripts)
            # stay invisible; see the module docstring.
        elif parts[0] == "self" and self.cls is not None and len(parts) == 2:
            resolved = self._method_in_class(self.cls, parts[1])
            if resolved:
                callees.append(resolved)
            else:
                external = self._method_marker(parts[1], node)
        else:
            resolved = _resolve_symbol(
                parts, self.module.name, self.aliases, self.tables, self.modules
            )
            if resolved in self.modules.modules:
                resolved = ""  # a bare module is not callable
            if resolved:
                owner = self.modules.resolve(resolved)
                if owner:
                    symbol = resolved[len(owner):].lstrip(".")
                    head, _, rest = symbol.partition(".")
                    if not rest and head in self.tables.defs.get(owner, ()):
                        callees.append(resolved)
                    elif head in self.tables.classes.get(owner, ()):
                        if rest and "." not in rest:
                            method = self._resolve_on_class(
                                f"{owner}.{head}", rest
                            )
                            if method:
                                callees.append(method)
                        elif not rest:
                            callees.extend(
                                self._constructor_targets(f"{owner}.{head}")
                            )
                elif "." in resolved:
                    external = resolved
                else:
                    external = resolved  # builtin or unresolved bare name
        if not callees and not external and isinstance(func, ast.Attribute):
            # Unresolvable receiver (``self._pool.shutdown(...)``, a
            # local variable's method): fall back to the name marker.
            external = self._method_marker(func.attr, node)
        if callees:
            for callee in callees:
                self.calls.append(
                    CallSite(self.caller, callee, None, node.lineno, self.caught)
                )
        elif external:
            self.calls.append(
                CallSite(self.caller, None, external, node.lineno, self.caught)
            )

    def _resolve_on_class(self, cls_qualname: str, method: str) -> Optional[str]:
        info = self.tables.classes_by_qualname.get(cls_qualname)
        if info is None:
            return None
        return self._method_in_class(info, method)

    def _method_marker(self, method: str, node: ast.Call) -> Optional[str]:
        """The ``".method"`` marker for an unresolved receiver.

        ``shutdown(wait=False)`` is the explicitly non-blocking form and
        produces no marker; any other ``shutdown(...)`` keeps the
        blocking default.
        """
        if method == "shutdown":
            for kw in node.keywords:
                if kw.arg == "wait" and _is_false(kw.value):
                    return None
            if node.args and _is_false(node.args[0]):
                return None
        return f".{method}"

    # -- visitors --------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        self._record(node)
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        for local, target in _alias_entries(self.module, node):
            self.aliases[local] = target

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for local, target in _alias_entries(self.module, node):
            self.aliases[local] = target

    def _reraises_binding(self, handler: ast.ExceptHandler) -> bool:
        """Whether the handler re-raises the exception it caught.

        ``except BaseException: cleanup(); raise`` (and ``raise e`` of
        the handler's binding) is the cleanup idiom: the handler is
        *transparent* — whatever the guarded body raises passes through
        unchanged.  Treating it as a catch would launder every body
        escape into the handler's (usually much wider) caught type.
        """
        todo = list(handler.body)
        while todo:
            stmt = todo.pop()
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(stmt, ast.Raise):
                if stmt.exc is None:
                    return True
                if (
                    isinstance(stmt.exc, ast.Name)
                    and handler.name is not None
                    and stmt.exc.id == handler.name
                ):
                    return True
            if isinstance(stmt, ast.Try):
                # A bare raise inside a *nested* handler re-raises that
                # handler's exception, not this one's.
                todo.extend(stmt.body + stmt.orelse + stmt.finalbody)
                continue
            todo.extend(
                child
                for child in ast.iter_child_nodes(stmt)
                if isinstance(child, ast.stmt)
            )
        return False

    def visit_Try(self, node: ast.Try) -> None:
        names = frozenset(
            name
            for handler in node.handlers
            if not self._reraises_binding(handler)
            for name in self._handler_names(handler)
        )
        self.caught_stack.append(self.caught | names)
        for stmt in node.body:
            self.visit(stmt)
        self.caught_stack.pop()
        # Handlers, else, and finally are not guarded by this try.
        for handler in node.handlers:
            self._visit_handler(handler)
        for stmt in node.orelse:
            self.visit(stmt)
        for stmt in node.finalbody:
            self.visit(stmt)

    def _visit_handler(self, handler: ast.ExceptHandler) -> None:
        # Transparent handlers (cleanup-and-reraise) contribute nothing
        # of their own: the guarded body's sites stay unfiltered, so the
        # re-raise is already accounted for at its true origin.
        names = (
            ()
            if self._reraises_binding(handler)
            else tuple(self._handler_names(handler))
        )
        previous = self._handler_types
        self._handler_types = names
        for stmt in handler.body:
            self.visit(stmt)
        self._handler_types = previous

    _handler_types: Tuple[str, ...] = ()

    def visit_Raise(self, node: ast.Raise) -> None:
        if node.exc is None:
            # Bare re-raise: raises whatever the enclosing handler caught.
            for name in self._handler_types:
                self.raises.append(RaiseSite(name, node.lineno, self.caught))
        else:
            target = node.exc
            if isinstance(target, ast.Call):
                target = target.func
            resolved = self._resolve(target)
            if resolved and (
                resolved in self.tables.classes_by_qualname
                or resolved in self._handler_types
                or (resolved[:1].isupper() and "." not in resolved)
            ):
                self.raises.append(
                    RaiseSite(resolved, node.lineno, self.caught)
                )
            elif not resolved and isinstance(node.exc, ast.Name):
                # ``raise exc`` where ``exc`` is the handler's binding.
                for name in self._handler_types:
                    self.raises.append(
                        RaiseSite(name, node.lineno, self.caught)
                    )
        self.generic_visit(node)


def collect_function_bodies(
    modules: ModuleSet, tables: SymbolTables
) -> Tuple[
    Dict[str, FunctionInfo],
    Dict[str, Tuple[CallSite, ...]],
    Dict[str, Tuple[RaiseSite, ...]],
    Dict[str, ast.AST],
]:
    """Walk every function body; return (functions, calls, raises, nodes)."""
    functions: Dict[str, FunctionInfo] = {}
    calls: Dict[str, Tuple[CallSite, ...]] = {}
    raises: Dict[str, Tuple[RaiseSite, ...]] = {}
    nodes: Dict[str, ast.AST] = {}

    def handle(
        node: ast.AST, module: ModuleInfo, cls: Optional[ClassInfo]
    ) -> None:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        cls_part = f"{cls.name}." if cls else ""
        qualname = f"{module.name}.{cls_part}{node.name}"
        functions[qualname] = FunctionInfo(
            qualname=qualname,
            module=module.name,
            name=node.name,
            cls=cls.name if cls else None,
            line=node.lineno,
            is_coroutine=isinstance(node, ast.AsyncFunctionDef),
        )
        walker = _BodyWalker(qualname, module, cls, tables, modules)
        for stmt in node.body:
            walker.visit(stmt)
        calls[qualname] = tuple(walker.calls)
        raises[qualname] = tuple(walker.raises)
        nodes[qualname] = node

    for name in sorted(modules.modules):
        module = modules.modules[name]
        for stmt in module.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                handle(stmt, module, None)
            elif isinstance(stmt, ast.ClassDef):
                cls = tables.classes[name].get(stmt.name)
                for item in stmt.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        handle(item, module, cls)
    return functions, calls, raises, nodes
