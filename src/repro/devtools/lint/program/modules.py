"""Project module discovery for the whole-program analysis.

The per-file engine (:mod:`repro.devtools.lint.engine`) lints whatever
paths it is handed; the program analysis instead needs the *closed
world* of one Python package so imports and calls resolve to project
modules.  Discovery walks ``<root>/src/<package>/`` (every package
directory directly under ``src``), parses each module once, and maps
file paths to dotted module names; everything downstream — the import
graph, the call graph, the effect summaries — is keyed by those names.

Files that do not parse are skipped here (and recorded): the per-file
engine already turns them into ``RL000`` findings, and a half-parsed
module would only poison the graphs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Tuple

__all__ = ["ModuleInfo", "ModuleSet", "discover_modules", "module_layer"]

#: Directory names never descended into (mirrors the per-file engine).
_SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".pytest_cache", "build", "dist", ".venv"}
)

#: Layer name used for a package's root ``__init__`` module.
ROOT_LAYER = "<root>"


@dataclass(frozen=True)
class ModuleInfo:
    """One parsed project module."""

    name: str          #: dotted module name, e.g. ``"repro.core.fact"``
    rel_path: str      #: root-relative POSIX path, e.g. ``"src/repro/core/fact.py"``
    path: Path         #: absolute path
    source: str
    lines: Tuple[str, ...]
    tree: ast.Module

    @property
    def layer(self) -> str:
        """The architecture layer: the second dotted segment."""
        return module_layer(self.name)


def module_layer(name: str) -> str:
    """The architecture layer of dotted module ``name``.

    ``repro.core.fact`` -> ``core``; ``repro.io`` -> ``io``; the package
    root ``repro`` -> ``<root>``.
    """
    parts = name.split(".")
    return parts[1] if len(parts) > 1 else ROOT_LAYER


@dataclass
class ModuleSet:
    """The discovered closed world of project modules."""

    root: Path
    modules: Dict[str, ModuleInfo] = field(default_factory=dict)
    unparsed: List[str] = field(default_factory=list)

    def resolve(self, dotted: str) -> str:
        """The longest project-module prefix of ``dotted`` (or ``""``).

        ``from repro.core.fact import Fact`` names the symbol
        ``repro.core.fact.Fact``; resolving it back to the module that
        defines it is a longest-prefix match against the module table.
        """
        parts = dotted.split(".")
        for end in range(len(parts), 0, -1):
            candidate = ".".join(parts[:end])
            if candidate in self.modules:
                return candidate
        return ""

    def by_rel_path(self) -> Dict[str, ModuleInfo]:
        return {info.rel_path: info for info in self.modules.values()}


def _module_name(py_file: Path, src_dir: Path) -> str:
    rel = py_file.relative_to(src_dir).with_suffix("")
    parts = list(rel.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def discover_modules(root: Path) -> ModuleSet:
    """Discover and parse every package module under ``root/src``.

    ``root`` is the lint root (the directory ``ARCHITECTURE`` and the
    baseline live in); each directory under ``root/src`` containing an
    ``__init__.py`` is treated as one project package.
    """
    result = ModuleSet(root=root.resolve())
    src_dir = result.root / "src"
    if not src_dir.is_dir():
        return result
    packages = sorted(
        entry
        for entry in src_dir.iterdir()
        if entry.is_dir() and (entry / "__init__.py").is_file()
    )
    for package in packages:
        for py_file in sorted(package.rglob("*.py")):
            if _SKIP_DIRS.intersection(py_file.parts):
                continue
            name = _module_name(py_file, src_dir)
            rel_path = py_file.relative_to(result.root).as_posix()
            source = py_file.read_text(encoding="utf-8")
            try:
                tree = ast.parse(source, filename=rel_path)
            except SyntaxError:
                result.unparsed.append(rel_path)
                continue
            result.modules[name] = ModuleInfo(
                name=name,
                rel_path=rel_path,
                path=py_file,
                source=source,
                lines=tuple(source.splitlines()),
                tree=tree,
            )
    return result
