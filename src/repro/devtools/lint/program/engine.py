"""Running program-scope rules and filtering their findings.

The per-file engine applies inline suppressions while it holds each
file open; program findings need their own pass because one finding
spans *several* files (the entry point, every hop, the sink).  Two
anchor points honour a suppression comment:

**the sink** — the line the finding points at (``finding.path`` /
``finding.line``), like any per-file finding; and

**the path head** — the entry-point function's ``def`` line, read from
the first witness element.  Suppressing at the head says "every path
out of this entry point is vetted" (e.g. a CLI command that legitimately
re-raises), without having to chase each sink.

Baseline identity stays sink-only (see
:meth:`~repro.devtools.lint.findings.Finding.baseline_key`): a witness
re-route neither resurrects nor forgives accepted debt.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.devtools.lint.findings import Finding, finding_sort_key
from repro.devtools.lint.program.analyzer import (
    ProgramAnalysis,
    build_program,
)
from repro.devtools.lint.suppress import SuppressionTable, parse_suppressions

__all__ = ["run_program_rules", "witness_anchor"]

#: Witness elements end in ``(path:line)``; the head anchor parses the
#: first one back out.
_ANCHOR = re.compile(r"\((?P<path>[^()\s]+):(?P<line>\d+)\)$")


def witness_anchor(element: str) -> Optional[Tuple[str, int]]:
    """The ``(rel_path, line)`` anchor of one witness element, if any."""
    match = _ANCHOR.search(element)
    if match is None:
        return None
    return match.group("path"), int(match.group("line"))


class _Tables:
    """Lazily parsed per-file suppression tables for the whole program."""

    def __init__(self, analysis: ProgramAnalysis) -> None:
        self._by_rel_path = {
            info.rel_path: info for info in analysis.modules.modules.values()
        }
        self._tables: Dict[str, SuppressionTable] = {}

    def for_path(self, rel_path: str) -> Optional[SuppressionTable]:
        if rel_path not in self._tables:
            info = self._by_rel_path.get(rel_path)
            if info is None:
                return None
            self._tables[rel_path] = parse_suppressions(info.lines)
        return self._tables[rel_path]


def _is_suppressed(
    finding: Finding, tables: _Tables
) -> bool:
    sink_table = tables.for_path(finding.path)
    if sink_table is not None and sink_table.is_suppressed(
        finding.code, finding.line
    ):
        return True
    if finding.witness:
        anchor = witness_anchor(finding.witness[0])
        if anchor is not None:
            head_table = tables.for_path(anchor[0])
            if head_table is not None and head_table.is_suppressed(
                finding.code, anchor[1]
            ):
                return True
    return False


def run_program_rules(
    rules: Sequence[object],
    root,
    analysis: Optional[ProgramAnalysis] = None,
) -> Tuple[List[Finding], int]:
    """Run ``rules`` over the program under ``root``.

    Returns (findings, inline_suppressed_count); findings come back
    sorted and suppression-filtered, ready for the baseline pass the
    caller applies together with per-file findings.
    """
    if analysis is None:
        analysis = build_program(root)
    tables = _Tables(analysis)
    kept: List[Finding] = []
    suppressed = 0
    for rule in rules:
        for finding in rule.check_program(analysis):  # type: ignore[attr-defined]
            if _is_suppressed(finding, tables):
                suppressed += 1
            else:
                kept.append(finding)
    kept.sort(key=finding_sort_key)
    return kept, suppressed
