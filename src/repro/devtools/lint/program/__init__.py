"""Whole-program static analysis under ``repro lint --program``.

The per-file rules (RL001–RL009) check invariants visible inside one
AST.  This package builds the cross-module picture those rules cannot
see — a project import graph with symbol resolution
(:mod:`~repro.devtools.lint.program.imports`), an
intraprocedural-summary call graph
(:mod:`~repro.devtools.lint.program.callgraph`), and per-function
effect summaries propagated transitively
(:mod:`~repro.devtools.lint.program.effects` /
:mod:`~repro.devtools.lint.program.propagate`) — and feeds it to the
RL1xx rule family: RL100 layering, RL101 async-safety, RL102
exception-flow, RL103 determinism-flow.  See ``DESIGN.md`` §14 and
``docs/lint_rules.md``.
"""

from repro.devtools.lint.program.analyzer import ProgramAnalysis, build_program
from repro.devtools.lint.program.engine import run_program_rules

__all__ = ["ProgramAnalysis", "build_program", "run_program_rules"]
