"""Per-function effect summaries.

Three effect families feed the RL1xx rules, all computed *directly*
per function and then propagated transitively over the call graph by
:mod:`repro.devtools.lint.program.propagate`:

**Blocking** (RL101) — calls that park the calling thread: sleeps,
``fsync``-class file durability, file metadata ops, ``open``/path
reads and writes, ``subprocess``, future ``.result()``, and executor
``shutdown()`` with the blocking default.  Matching is by absolute
dotted name when the receiver resolves (``"time.sleep"``) and by
method-name marker when it does not (``".result"``).

**Raises** (RL102) — exception classes a function can raise directly
and not catch itself; collected by the call-graph walker, filtered
here against the lexically enclosing handlers using the project class
hierarchy (``raise UsageError`` inside ``except ReproError:``'s try
body does not escape).

**Nondeterminism** (RL103) — hash-order and entropy sources: ``id()``,
``uuid.uuid4``, ``os.urandom``, module-level ``random.*`` (a seeded
``random.Random(seed)`` instance resolves to a method marker and is
deliberately *not* matched), and — the flow-aware generalization of
RL003 — ordered traversal of *provably unordered* expressions: set
literals/comprehensions, ``set()``/``frozenset()`` calls, and dict
views, unless an order-restoring or order-insensitive consumer
(``sorted``, ``sum``, ``min``/``max``, ``any``/``all``, ``len``,
membership, ``set``/``frozenset``/set-comprehension) absorbs the
iteration.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.devtools.lint.program.callgraph import (
    CallSite,
    ClassInfo,
    RaiseSite,
)

__all__ = [
    "BLOCKING_CALLS",
    "BLOCKING_METHODS",
    "NONDET_CALLS",
    "EffectSite",
    "blocking_sites",
    "nondet_call_sites",
    "unstable_iteration_sites",
    "direct_escaping_raises",
    "ancestors_of",
    "covered_by",
]

#: One concrete effect occurrence: (description, line).
EffectSite = Tuple[str, int]

#: Absolute dotted names of blocking calls.
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "os.fsync",
        "os.fdatasync",
        "os.sync",
        "os.unlink",
        "os.remove",
        "os.replace",
        "os.rename",
        "open",
        "io.open",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "socket.create_connection",
        "shutil.copy",
        "shutil.copyfile",
        "shutil.rmtree",
    }
)

#: Method markers (unresolvable receiver) treated as blocking.  The
#: ``.shutdown`` marker is only emitted for the blocking form (the
#: call-graph walker drops ``shutdown(wait=False)``).
BLOCKING_METHODS = frozenset(
    {
        ".result",
        ".shutdown",
        ".read_text",
        ".write_text",
        ".read_bytes",
        ".write_bytes",
    }
)

#: Absolute dotted names of entropy / hash-order sources.
NONDET_CALLS = frozenset(
    {
        "id",
        "uuid.uuid4",
        "uuid.uuid1",
        "os.urandom",
        "random.random",
        "random.randint",
        "random.randrange",
        "random.choice",
        "random.choices",
        "random.shuffle",
        "random.sample",
        "random.uniform",
        "random.getrandbits",
    }
)

#: Builtin exception hierarchy fragments used by handler coverage.
_BUILTIN_PARENTS = {
    "ValueError": "Exception",
    "TypeError": "Exception",
    "KeyError": "LookupError",
    "IndexError": "LookupError",
    "LookupError": "Exception",
    "AttributeError": "Exception",
    "RuntimeError": "Exception",
    "NotImplementedError": "RuntimeError",
    "RecursionError": "RuntimeError",
    "OSError": "Exception",
    "IOError": "OSError",
    "FileNotFoundError": "OSError",
    "FileExistsError": "OSError",
    "PermissionError": "OSError",
    "ConnectionError": "OSError",
    "BrokenPipeError": "ConnectionError",
    "ConnectionResetError": "ConnectionError",
    "TimeoutError": "OSError",
    "InterruptedError": "OSError",
    "ArithmeticError": "Exception",
    "ZeroDivisionError": "ArithmeticError",
    "OverflowError": "ArithmeticError",
    "StopIteration": "Exception",
    "StopAsyncIteration": "Exception",
    "AssertionError": "Exception",
    "ImportError": "Exception",
    "ModuleNotFoundError": "ImportError",
    "UnicodeDecodeError": "ValueError",
    "UnicodeEncodeError": "ValueError",
    "Exception": "BaseException",
    "KeyboardInterrupt": "BaseException",
    "SystemExit": "BaseException",
    "GeneratorExit": "BaseException",
}


def blocking_sites(calls: Iterable[CallSite]) -> List[EffectSite]:
    """Direct blocking-call sites among ``calls``."""
    sites = []
    for call in calls:
        name = call.external
        if name is None:
            continue
        if name in BLOCKING_CALLS or name in BLOCKING_METHODS:
            sites.append((name, call.line))
    return sites


def nondet_call_sites(calls: Iterable[CallSite]) -> List[EffectSite]:
    """Direct entropy/hash-order call sites among ``calls``."""
    return [
        (call.external, call.line)
        for call in calls
        if call.external is not None and call.external in NONDET_CALLS
    ]


# -- exception hierarchy -------------------------------------------------------


def ancestors_of(
    name: str, classes_by_qualname: Dict[str, ClassInfo]
) -> FrozenSet[str]:
    """Every (transitive) base-class name of exception class ``name``.

    Walks the project class table for project-defined classes and the
    builtin fragment table for standard exceptions; names are returned
    in both forms seen elsewhere (project dotted qualnames, bare
    builtin names).
    """
    seen: set = set()
    queue = [name]
    while queue:
        current = queue.pop()
        if current in seen:
            continue
        seen.add(current)
        info = classes_by_qualname.get(current)
        if info is not None:
            queue.extend(info.bases)
        bare = current.rsplit(".", 1)[-1]
        if bare != current:
            seen.add(bare)
        parent = _BUILTIN_PARENTS.get(bare)
        if parent is not None:
            queue.append(parent)
    seen.discard(name)
    return frozenset(seen)


def covered_by(
    exc: str,
    caught: FrozenSet[str],
    classes_by_qualname: Dict[str, ClassInfo],
) -> bool:
    """Whether a handler set catching ``caught`` stops ``exc``."""
    if not caught:
        return False
    if "BaseException" in caught or "Exception" in caught:
        # ``except Exception`` misses only BaseException-only descendants,
        # none of which the analysis tracks as escapes worth reporting.
        return True
    if exc in caught or exc.rsplit(".", 1)[-1] in {
        name.rsplit(".", 1)[-1] for name in caught
    }:
        return True
    ancestors = ancestors_of(exc, classes_by_qualname)
    return bool(ancestors & caught) or bool(
        {a.rsplit(".", 1)[-1] for a in ancestors}
        & {c.rsplit(".", 1)[-1] for c in caught}
    )


def direct_escaping_raises(
    raises: Iterable[RaiseSite],
    classes_by_qualname: Dict[str, ClassInfo],
) -> Dict[str, int]:
    """Exception name -> first raise line, for raises no local handler stops."""
    escaped: Dict[str, int] = {}
    for site in raises:
        if covered_by(site.exc, site.caught, classes_by_qualname):
            continue
        if site.exc not in escaped or site.line < escaped[site.exc]:
            escaped[site.exc] = site.line
    return escaped


# -- unstable iteration (RL103's flow-aware sink) ------------------------------

#: Calls that absorb or restore iteration order.
_ORDER_SAFE_CALLS = frozenset(
    {
        "sorted",
        "sum",
        "min",
        "max",
        "len",
        "any",
        "all",
        "set",
        "frozenset",
    }
)


def _is_unordered_expr(node: ast.AST) -> Optional[str]:
    """A description when ``node`` is provably unordered, else None."""
    if isinstance(node, ast.Set):
        return "set literal"
    if isinstance(node, ast.SetComp):
        return "set comprehension"
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in (
            "set",
            "frozenset",
        ):
            return f"{node.func.id}(...)"
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "keys",
            "values",
            "items",
        ):
            return f".{node.func.attr}() view"
    return None


def _build_parents(root: ast.AST) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(root):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return parents


def _consumer_is_order_safe(
    node: ast.AST, parents: Dict[ast.AST, ast.AST]
) -> bool:
    """Whether the iteration consuming ``node`` is order-insensitive."""
    parent = parents.get(node)
    if parent is None:
        return True  # dangling expression; nothing consumes the order
    if isinstance(parent, ast.Call):
        if node in parent.args:
            if (
                isinstance(parent.func, ast.Name)
                and parent.func.id in _ORDER_SAFE_CALLS
            ):
                return True
            return False
        return True  # e.g. the func position; not an iteration
    if isinstance(parent, ast.comprehension):
        # The unordered expr drives a comprehension; safety depends on
        # what the comprehension builds and who consumes *that*.
        comp = parents.get(parent)
        if isinstance(comp, (ast.SetComp, ast.DictComp)):
            return True  # rebuilt as an unordered container
        if comp is not None:
            return _consumer_is_order_safe(comp, parents)
        return True
    if isinstance(parent, (ast.For, ast.AsyncFor)) and parent.iter is node:
        return False
    if isinstance(parent, ast.Compare):
        ops = parent.ops
        if any(isinstance(op, (ast.In, ast.NotIn)) for op in ops):
            return True  # membership test
        return True  # ==/<= etc. on sets are order-insensitive
    if isinstance(parent, (ast.Starred, ast.Tuple, ast.List)):
        return False  # splatted into an ordered container
    if isinstance(parent, ast.BinOp):
        return True  # set algebra (|, &, -) keeps it a set
    if isinstance(parent, (ast.Assign, ast.AnnAssign, ast.Return)):
        return True  # passing the container along unordered is fine
    return True


def unstable_iteration_sites(node: ast.AST) -> List[EffectSite]:
    """Ordered traversals of provably unordered expressions in a body."""
    parents = _build_parents(node)
    sites: List[EffectSite] = []
    for candidate in ast.walk(node):
        desc = _is_unordered_expr(candidate)
        if desc is None:
            continue
        if _consumer_is_order_safe(candidate, parents):
            continue
        sites.append(
            (f"unsorted iteration over {desc}", candidate.lineno)
        )
    sites.sort(key=lambda site: site[1])
    return sites
