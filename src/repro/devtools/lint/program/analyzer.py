"""The whole-program analysis facade.

:func:`build_program` runs the full pipeline once per lint invocation —
discovery, import-graph construction, symbol tables, call-graph walk,
effect summaries — and hands the resulting :class:`ProgramAnalysis` to
every program-scope rule.  Rules therefore share one set of graphs; an
analysis over the whole of ``src/repro`` takes well under a second, and
the CI budget test keeps it that way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.devtools.lint.program.callgraph import (
    CallSite,
    ClassInfo,
    FunctionInfo,
    RaiseSite,
    build_symbols,
    collect_function_bodies,
)
from repro.devtools.lint.program.effects import (
    blocking_sites,
    direct_escaping_raises,
    nondet_call_sites,
    unstable_iteration_sites,
)
from repro.devtools.lint.program.imports import (
    ImportEdge,
    collect_import_edges,
    eager_import_cycles,
)
from repro.devtools.lint.program.modules import (
    ModuleInfo,
    ModuleSet,
    discover_modules,
)

__all__ = ["ProgramAnalysis", "build_program"]


@dataclass
class ProgramAnalysis:
    """Everything the RL1xx rules consume, built once per run."""

    root: Path
    modules: ModuleSet
    import_edges: List[ImportEdge]
    import_cycles: List[Tuple[str, ...]]
    functions: Dict[str, FunctionInfo]
    calls: Dict[str, Tuple[CallSite, ...]]
    raises: Dict[str, Tuple[RaiseSite, ...]]
    classes_by_qualname: Dict[str, ClassInfo]
    #: function qualname -> direct blocking-call sites
    blocking: Dict[str, List[Tuple[str, int]]] = field(default_factory=dict)
    #: function qualname -> direct nondeterminism sites
    nondet: Dict[str, List[Tuple[str, int]]] = field(default_factory=dict)
    #: function qualname -> exception name -> raise line (locally uncaught)
    direct_raises: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def module_of(self, qualname: str) -> Optional[ModuleInfo]:
        """The module defining function/class ``qualname``."""
        name = self.modules.resolve(qualname)
        return self.modules.modules.get(name) if name else None

    def location(self, qualname: str) -> Tuple[str, int]:
        """(rel_path, def line) for a function qualname (best effort)."""
        info = self.functions.get(qualname)
        module = self.module_of(qualname)
        rel_path = module.rel_path if module else qualname
        return rel_path, info.line if info else 1

    def describe(self, qualname: str, line: Optional[int] = None) -> str:
        """The witness-element rendering ``qualname (path:line)``."""
        rel_path, def_line = self.location(qualname)
        return f"{qualname} ({rel_path}:{line if line else def_line})"

    def witness_for_hops(
        self, hops: Tuple[Tuple[str, int], ...], sink_desc: str,
        sink: str, sink_line: int,
    ) -> Tuple[str, ...]:
        """Render a call chain as witness elements.

        ``hops`` comes from the propagation layer: the first element is
        the entry (rendered at its ``def`` line, so a path-head
        suppression can anchor there); each later element is a callee
        rendered at the call site *in its caller's file*; the final
        element is the sink effect itself.
        """
        elements = []
        for index, (fn, call_line) in enumerate(hops):
            if index == 0:
                elements.append(self.describe(fn))
            else:
                caller_rel, _ = self.location(hops[index - 1][0])
                elements.append(f"{fn} ({caller_rel}:{call_line})")
        sink_rel, _ = self.location(sink)
        elements.append(f"{sink_desc} ({sink_rel}:{sink_line})")
        return tuple(elements)


def build_program(root: Path) -> ProgramAnalysis:
    """Run the full analysis pipeline for the package(s) under ``root``."""
    modules = discover_modules(root)
    edges = collect_import_edges(modules)
    cycles = eager_import_cycles(modules, edges)
    tables = build_symbols(modules)
    functions, calls, raises, nodes = collect_function_bodies(modules, tables)
    analysis = ProgramAnalysis(
        root=modules.root,
        modules=modules,
        import_edges=edges,
        import_cycles=cycles,
        functions=functions,
        calls=calls,
        raises=raises,
        classes_by_qualname=tables.classes_by_qualname,
    )
    for qualname in functions:
        analysis.blocking[qualname] = blocking_sites(calls[qualname])
        analysis.nondet[qualname] = nondet_call_sites(
            calls[qualname]
        ) + unstable_iteration_sites(nodes[qualname])
        analysis.nondet[qualname].sort(key=lambda site: site[1])
        analysis.direct_raises[qualname] = direct_escaping_raises(
            raises[qualname], tables.classes_by_qualname
        )
    return analysis
