"""``repro lint`` — AST enforcement of the engine's own invariants.

The checking fast paths (PR 2) and the batch service's result cache
(PR 1) rest on properties the type system cannot express: trusted
construction on hot paths, uniform candidate validation, canonical
(iteration-order-free) renderings, stateless defaults, one exception
hierarchy, and monotonic-only timing.  This package machine-checks
them: a pluggable rule registry (RL001-RL006), inline suppressions
(``# repro-lint: ignore[RLxxx]``), a committed content-addressed
baseline, and a CLI (``repro lint`` / ``python -m repro.devtools.lint``)
wired into ``make lint`` and CI.

Public surface
--------------
:func:`lint_paths` runs the engine programmatically; :class:`LintConfig`
and :class:`LintReport` carry its input/output; :class:`Finding` is one
violation; :func:`all_rules` lists the registry; :func:`main` is the
CLI.  Per-rule documentation lives in ``docs/lint_rules.md`` and in the
rule modules' docstrings.
"""

from repro.devtools.lint.cli import main
from repro.devtools.lint.engine import (
    FileContext,
    LintConfig,
    LintReport,
    lint_paths,
)
from repro.devtools.lint.findings import Finding
from repro.devtools.lint.registry import Rule, all_rules, register

__all__ = [
    "FileContext",
    "Finding",
    "LintConfig",
    "LintReport",
    "Rule",
    "all_rules",
    "lint_paths",
    "main",
    "register",
]
