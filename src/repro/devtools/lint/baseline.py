"""The committed finding baseline.

New rules can land with outstanding findings without blocking CI: the
baseline file records the accepted debt as a multiset of content-based
finding keys (rule code + path + hash of the violating line).  The
engine subtracts baselined findings from its report; anything *new*
still fails the build, and fixing a baselined violation never breaks
anything (leftover entries are simply unused — ``--write-baseline``
refreshes the file).

Keys hash the violating line's text rather than its number, so
unrelated edits that shift lines do not resurrect baselined findings,
while any edit to the violating line itself does (the debt must be
re-acknowledged or fixed).
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable, List, Tuple

from repro.devtools.lint.findings import Finding
from repro.exceptions import UsageError
from repro.fsutil import atomic_write_text

__all__ = [
    "DEFAULT_BASELINE_NAME",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
]

DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"

_VERSION = 1


def load_baseline(path: Path) -> "Counter[str]":
    """The baseline multiset at ``path`` (raises on malformed files)."""
    try:
        document = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise UsageError(f"malformed baseline file {path}: {exc}") from exc
    if (
        not isinstance(document, dict)
        or document.get("version") != _VERSION
        or not isinstance(document.get("entries"), dict)
    ):
        raise UsageError(
            f"malformed baseline file {path}: expected "
            f'{{"version": {_VERSION}, "entries": {{key: count}}}}'
        )
    entries: "Counter[str]" = Counter()
    for key, count in document["entries"].items():
        if not isinstance(key, str) or not isinstance(count, int) or count < 1:
            raise UsageError(
                f"malformed baseline entry in {path}: {key!r}: {count!r}"
            )
        entries[key] = count
    return entries


def write_baseline(path: Path, findings: Iterable[Finding]) -> int:
    """Write the baseline capturing ``findings``; returns the entry count.

    Crash-atomic (same-directory temp + rename): an interrupted
    ``--write-baseline`` never leaves a torn baseline that the next lint
    run would reject as malformed.
    """
    entries: "Counter[str]" = Counter(
        finding.baseline_key() for finding in findings
    )
    document = {
        "version": _VERSION,
        "entries": {key: entries[key] for key in sorted(entries)},
    }
    atomic_write_text(path, json.dumps(document, indent=2) + "\n")
    return sum(entries.values())


def apply_baseline(
    findings: Iterable[Finding], baseline: "Counter[str]"
) -> Tuple[List[Finding], int]:
    """Subtract baselined findings; returns (kept, suppressed_count).

    Duplicate keys are consumed multiset-style: a baseline entry with
    count 2 absorbs at most two identical findings.
    """
    remaining = Counter(baseline)
    kept: List[Finding] = []
    suppressed = 0
    for finding in findings:
        key = finding.baseline_key()
        if remaining[key] > 0:
            remaining[key] -= 1
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed
