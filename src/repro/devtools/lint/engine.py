"""The lint engine: file discovery, parsing, rule dispatch, filtering.

The engine is a pure function from (paths, configuration) to a sorted
finding list — no global state, no caching — so ``repro lint`` is fully
deterministic: the same tree always produces byte-identical reports,
which is itself one of the invariants the linter exists to defend
(RL003).

Pipeline per file: read -> parse (a syntax error becomes an ``RL000``
finding rather than a crash) -> run every registered rule whose scope
matches the root-relative path -> drop findings suppressed inline
(``# repro-lint: ignore[...]``) -> subtract the committed baseline.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.devtools.lint.baseline import apply_baseline, load_baseline
from repro.devtools.lint.findings import Finding, finding_sort_key
from repro.devtools.lint.registry import Rule, all_rules
from repro.devtools.lint.suppress import parse_suppressions
from repro.exceptions import UsageError

__all__ = ["FileContext", "LintConfig", "LintReport", "lint_paths"]

#: Directory names never descended into during discovery.
_SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".pytest_cache", "build", "dist", ".venv"}
)

#: The parse-failure pseudo-rule code.
PARSE_ERROR_CODE = "RL000"


@dataclass(frozen=True)
class FileContext:
    """Everything a rule gets to see about one file."""

    path: Path
    rel_path: str
    source: str
    lines: Tuple[str, ...]
    tree: ast.Module


@dataclass(frozen=True)
class LintConfig:
    """One lint run's configuration (CLI flags map 1:1 onto this)."""

    root: Path
    select: Optional[Tuple[str, ...]] = None
    ignore: Tuple[str, ...] = ()
    baseline_path: Optional[Path] = None
    use_baseline: bool = True
    #: Also run the whole-program pass (RL1xx rules over the import and
    #: call graphs of ``<root>/src``); ``repro lint --program``.
    program: bool = False


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed_inline: int = 0
    suppressed_baseline: int = 0

    @property
    def ok(self) -> bool:
        """Whether the run found nothing (exit code 0)."""
        return not self.findings


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Every ``.py`` file under ``paths`` (files pass through as-is)."""
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        if not path.is_dir():
            raise UsageError(f"no such file or directory: {path}")
        for candidate in sorted(path.rglob("*.py")):
            if _SKIP_DIRS.intersection(candidate.parts):
                continue
            yield candidate


def _relative_posix(path: Path, root: Path) -> str:
    resolved = path.resolve()
    try:
        return resolved.relative_to(root.resolve()).as_posix()
    except ValueError:
        return resolved.as_posix()


def _load_context(path: Path, root: Path) -> Tuple[Optional[FileContext], Optional[Finding]]:
    """Parse one file; on a syntax error return an RL000 finding instead."""
    rel_path = _relative_posix(path, root)
    source = path.read_text(encoding="utf-8")
    lines = tuple(source.splitlines())
    try:
        tree = ast.parse(source, filename=rel_path)
    except SyntaxError as exc:
        line = exc.lineno or 1
        snippet = lines[line - 1].strip() if 0 < line <= len(lines) else ""
        return None, Finding(
            code=PARSE_ERROR_CODE,
            message=f"file does not parse: {exc.msg}",
            path=rel_path,
            line=line,
            column=(exc.offset or 1) - 1,
            snippet=snippet,
        )
    return FileContext(path, rel_path, source, lines, tree), None


def _selected_rules(config: LintConfig) -> Tuple[Tuple[Rule, ...], Tuple[Rule, ...]]:
    """The (per-file, program-scope) rules this run executes."""
    rules = all_rules()
    known = {rule.code for rule in rules} | {PARSE_ERROR_CODE}
    requested = tuple(config.select or ()) + tuple(config.ignore)
    for code in requested:
        if code not in known:
            raise UsageError(
                f"unknown lint rule {code!r}; known: {', '.join(sorted(known))}"
            )
    if config.select is not None:
        rules = tuple(r for r in rules if r.code in config.select)
    rules = tuple(r for r in rules if r.code not in config.ignore)
    file_rules = tuple(r for r in rules if not r.program)
    program_rules = tuple(r for r in rules if r.program) if config.program else ()
    return file_rules, program_rules


def lint_paths(paths: Sequence[Path], config: LintConfig) -> LintReport:
    """Lint every Python file under ``paths`` per ``config``."""
    file_rules, program_rules = _selected_rules(config)
    report = LintReport()
    raw: List[Finding] = []
    for path in iter_python_files(paths):
        report.files_checked += 1
        ctx, parse_failure = _load_context(path, config.root)
        if parse_failure is not None:
            if PARSE_ERROR_CODE not in config.ignore and (
                config.select is None or PARSE_ERROR_CODE in config.select
            ):
                raw.append(parse_failure)
            continue
        assert ctx is not None
        table = parse_suppressions(ctx.lines)
        for rule in file_rules:
            if not rule.applies_to(ctx.rel_path):
                continue
            for finding in rule.check(ctx):
                if table.is_suppressed(finding.code, finding.line):
                    report.suppressed_inline += 1
                else:
                    raw.append(finding)
    if program_rules:
        # Imported lazily: the program package pulls in the full graph
        # pipeline, which per-file runs never need.
        from repro.devtools.lint.program.engine import run_program_rules

        program_findings, program_suppressed = run_program_rules(
            program_rules, config.root
        )
        raw.extend(program_findings)
        report.suppressed_inline += program_suppressed
    raw.sort(key=finding_sort_key)
    if config.use_baseline and config.baseline_path is not None \
            and config.baseline_path.exists():
        baseline = load_baseline(config.baseline_path)
        kept, absorbed = apply_baseline(raw, baseline)
        report.findings = kept
        report.suppressed_baseline = absorbed
    else:
        report.findings = raw
    return report
