"""Small AST utilities shared by the lint rules."""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Tuple

__all__ = [
    "call_name",
    "terminal_name",
    "build_parent_map",
    "walk_functions",
]


def call_name(node: ast.Call) -> Optional[str]:
    """The terminal name a call is made through.

    ``f(...)`` gives ``"f"``, ``mod.f(...)`` gives ``"f"``,
    ``a.b.c(...)`` gives ``"c"``; anything else (lambdas, subscripted
    callables) gives None.
    """
    return terminal_name(node.func)


def terminal_name(node: ast.AST) -> Optional[str]:
    """The rightmost identifier of a Name/Attribute chain, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def build_parent_map(root: ast.AST) -> Dict[ast.AST, ast.AST]:
    """A child -> parent map over the whole tree under ``root``."""
    parents: Dict[ast.AST, ast.AST] = {}
    for parent in ast.walk(root):
        for child in ast.iter_child_nodes(parent):
            parents[child] = parent
    return parents


def walk_functions(
    tree: ast.Module,
) -> Iterator[Tuple[ast.AST, Tuple[str, ...]]]:
    """Every function/method in the module with its qualname parts.

    Yields ``(node, ("Class", "method"))``-style pairs, outermost scope
    first, covering nested functions as well.
    """

    def visit(
        node: ast.AST, prefix: Tuple[str, ...]
    ) -> Iterator[Tuple[ast.AST, Tuple[str, ...]]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = prefix + (child.name,)
                yield child, qualname
                yield from visit(child, qualname)
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, prefix + (child.name,))
            else:
                yield from visit(child, prefix)

    yield from visit(tree, ())
