"""Inline suppression comments.

Two forms are honoured, mirroring the usual linter idioms:

``# repro-lint: ignore[RL003]``
    Suppresses the listed rule(s) for findings anchored on that physical
    line.  Several codes may be listed (``ignore[RL003,RL004]``) and
    ``ignore[*]`` suppresses every rule on the line.  The comment must
    sit on the line the finding points at (for multi-line statements,
    the line of the flagged node).

``# repro-lint: skip-file``
    Anywhere in the file: excludes the whole file from linting.

Suppressions are deliberate, visible exemptions — each one should carry
a neighbouring comment explaining why the invariant does not apply (see
``docs/lint_rules.md``).  For pre-existing findings that should not
block CI while they are burned down, use the baseline file instead
(:mod:`repro.devtools.lint.baseline`).
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, Sequence

__all__ = ["SuppressionTable", "parse_suppressions"]

_IGNORE = re.compile(r"#\s*repro-lint:\s*ignore\[([^\]]+)\]")
_SKIP_FILE = re.compile(r"#\s*repro-lint:\s*skip-file\b")


class SuppressionTable:
    """Per-file map of line number -> suppressed rule codes."""

    __slots__ = ("_by_line", "skip_file")

    def __init__(
        self, by_line: Dict[int, FrozenSet[str]], skip_file: bool
    ) -> None:
        self._by_line = by_line
        self.skip_file = skip_file

    def is_suppressed(self, code: str, line: int) -> bool:
        """Whether ``code`` is suppressed for findings on ``line``."""
        if self.skip_file:
            return True
        codes = self._by_line.get(line)
        if codes is None:
            return False
        return code in codes or "*" in codes


def parse_suppressions(lines: Sequence[str]) -> SuppressionTable:
    """Scan source lines for suppression comments."""
    by_line: Dict[int, FrozenSet[str]] = {}
    skip_file = False
    for number, text in enumerate(lines, start=1):
        if "repro-lint" not in text:
            continue
        if _SKIP_FILE.search(text):
            skip_file = True
        match = _IGNORE.search(text)
        if match:
            codes = frozenset(
                part.strip() for part in match.group(1).split(",")
                if part.strip()
            )
            if codes:
                by_line[number] = by_line.get(number, frozenset()) | codes
    return SuppressionTable(by_line, skip_file)
