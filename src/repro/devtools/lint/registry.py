"""The pluggable rule registry.

A rule is a class with a unique ``code`` (``RLxxx``), a ``name``, a
``summary``, a ``rationale`` tying it to the paper/engine construct it
protects, a ``scopes`` tuple of root-relative path prefixes it applies
to, and a ``check(ctx)`` generator yielding
:class:`~repro.devtools.lint.findings.Finding` objects.  Decorating the
class with :func:`register` adds one shared instance to the registry;
the engine runs every registered rule whose scope matches the file.

Rules are stateless: ``check`` receives the full
:class:`~repro.devtools.lint.engine.FileContext` and must not retain
anything between files, so the engine may lint files in any order (and
the report stays deterministic regardless).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, Iterator, Tuple, Type

from repro.devtools.lint.findings import Finding
from repro.exceptions import MissingEntryError, UsageError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.devtools.lint.engine import FileContext
    from repro.devtools.lint.program.analyzer import ProgramAnalysis

__all__ = [
    "ProgramRule",
    "Rule",
    "register",
    "all_rules",
    "file_rules",
    "program_rules",
    "rule_by_code",
]


class Rule:
    """Base class for lint rules; subclass and :func:`register`."""

    #: Unique rule identifier, e.g. ``"RL001"``.
    code: str = ""
    #: Short kebab-case name, e.g. ``"trusted-constructors"``.
    name: str = ""
    #: One-line description shown by ``repro lint --list-rules``.
    summary: str = ""
    #: What invariant of the reproduction the rule protects, and why.
    rationale: str = ""
    #: Root-relative POSIX path prefixes the rule applies to.
    scopes: Tuple[str, ...] = ("src/",)
    #: Whether the rule is program-scope (runs once per lint invocation
    #: over the whole-program analysis, only under ``--program``).
    program: bool = False

    def applies_to(self, rel_path: str) -> bool:
        """Whether the rule runs on ``rel_path`` (prefix scoping)."""
        return rel_path.startswith(self.scopes)

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        """Yield findings for one parsed file."""
        raise NotImplementedError

    def finding(
        self, ctx: "FileContext", node: ast.AST, message: str
    ) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0)
        snippet = ""
        if 1 <= line <= len(ctx.lines):
            snippet = ctx.lines[line - 1].strip()
        return Finding(
            code=self.code,
            message=message,
            path=ctx.rel_path,
            line=line,
            column=column,
            snippet=snippet,
        )


class ProgramRule(Rule):
    """Base class for whole-program rules (``repro lint --program``).

    Program rules run once per invocation over the shared
    :class:`~repro.devtools.lint.program.analyzer.ProgramAnalysis`
    rather than per file; their findings carry a call-path ``witness``
    from entry point to sink.  ``check`` is never called on them.
    """

    program = True

    def check(self, ctx: "FileContext") -> Iterator[Finding]:
        raise UsageError(
            f"program rule {self.code} has no per-file check; "
            "use check_program"
        )

    def check_program(
        self, analysis: "ProgramAnalysis"
    ) -> Iterator[Finding]:
        """Yield findings for the whole program."""
        raise NotImplementedError


_REGISTRY: Dict[str, Rule] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding one instance of ``rule_cls`` to the registry."""
    rule = rule_cls()
    if not rule.code or not rule.name:
        raise UsageError(
            f"lint rule {rule_cls.__name__} must define code and name"
        )
    if rule.code in _REGISTRY:
        raise UsageError(f"duplicate lint rule code {rule.code!r}")
    _REGISTRY[rule.code] = rule
    return rule_cls


def all_rules() -> Tuple[Rule, ...]:
    """Every registered rule, in code order."""
    # Import for the registration side effect; delayed so the registry
    # module stays importable from the rule modules themselves.
    from repro.devtools.lint import rules as _rules  # noqa: F401

    return tuple(
        _REGISTRY[code] for code in sorted(_REGISTRY)
    )


def file_rules() -> Tuple[Rule, ...]:
    """Registered per-file rules, in code order."""
    return tuple(rule for rule in all_rules() if not rule.program)


def program_rules() -> Tuple[Rule, ...]:
    """Registered program-scope rules, in code order."""
    return tuple(rule for rule in all_rules() if rule.program)


def rule_by_code(code: str) -> Rule:
    """The registered rule for ``code`` (raises for unknown codes)."""
    all_rules()
    try:
        return _REGISTRY[code]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise MissingEntryError(
            f"unknown lint rule {code!r}; known: {known}"
        ) from None
