"""The paper's running example and motivating cleaning scenarios.

:func:`running_example` rebuilds, fact for fact, the inconsistent
BookLoc/LibLoc database of Figure 1 together with the priority relation
of Example 2.3 and the four subinstances ``J1 … J4`` of Example 2.5.
Experiment E1 replays every claim the paper makes about them.

The two synthetic scenarios model the introduction's motivations for
preferred repairs: trusting one *source* over another, and trusting more
*recent* facts over stale ones.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.core.conflicts import iter_conflicts
from repro.core.fact import Fact
from repro.core.fd import FD
from repro.core.instance import Instance
from repro.core.priority import PrioritizingInstance, PriorityRelation
from repro.core.schema import Schema
from repro.core.signature import RelationSymbol, Signature

from repro.exceptions import MissingEntryError

__all__ = [
    "RunningExample",
    "running_example",
    "source_reliability_scenario",
    "timestamp_scenario",
]


@dataclass(frozen=True)
class RunningExample:
    """The paper's running example, bundled.

    Attributes
    ----------
    schema:
        Example 2.2's schema: ``BookLoc: 1 → 2``, ``LibLoc: 1 → 2``,
        ``LibLoc: 2 → 1``.
    prioritizing:
        Figure 1's instance with Example 2.3's priority.
    facts:
        The named facts, keyed by the paper's subscripted symbols
        (``"g1f1"``, ``"d1a"``, ...).
    j1, j2, j3, j4:
        Example 2.5's four subinstances.
    """

    schema: Schema
    prioritizing: PrioritizingInstance
    facts: Dict[str, Fact]
    j1: Instance
    j2: Instance
    j3: Instance
    j4: Instance


def running_example() -> RunningExample:
    """Build the running example of Figures 1–3 / Examples 2.1–2.5.

    Examples
    --------
    >>> example = running_example()
    >>> len(example.prioritizing.instance)
    13
    >>> example.schema.is_consistent(example.j2)
    True
    """
    signature = Signature(
        [
            RelationSymbol("BookLoc", 3, ("isbn", "genre", "lib")),
            RelationSymbol("LibLoc", 2, ("lib", "loc")),
        ]
    )
    schema = Schema(
        signature,
        [
            FD("BookLoc", {1}, {2}),
            FD("LibLoc", {1}, {2}),
            FD("LibLoc", {2}, {1}),
        ],
    )
    facts: Dict[str, Fact] = {
        # BookLoc(isbn, genre, lib) — Figure 1, left table.
        "g1f1": Fact("BookLoc", ("b1", "fiction", "lib1")),
        "g1f2": Fact("BookLoc", ("b1", "fiction", "lib2")),
        "f1d3": Fact("BookLoc", ("b1", "drama", "lib3")),
        "f2p1": Fact("BookLoc", ("b2", "poetry", "lib1")),
        "h3h2": Fact("BookLoc", ("b3", "horror", "lib2")),
        # LibLoc(lib, loc) — Figure 1, right table.
        "d1a": Fact("LibLoc", ("lib1", "almaden")),
        "d1e": Fact("LibLoc", ("lib1", "edenvale")),
        "g2a": Fact("LibLoc", ("lib2", "almaden")),
        "f2b": Fact("LibLoc", ("lib2", "bascom")),
        "f3a": Fact("LibLoc", ("lib3", "almaden")),
        "f3c": Fact("LibLoc", ("lib3", "cambrian")),
        "e1b": Fact("LibLoc", ("lib1", "bascom")),
        "e3b": Fact("LibLoc", ("lib3", "bascom")),
    }
    instance = Instance(signature, facts.values())

    # Example 2.3: g_y > f_x for all conflicting f_x, g_y; e_y > d_x for
    # all conflicting d_x, e_y.  The letter prefix of the symbolic name
    # encodes the tier: g beats f, e beats d.
    tier = {name: name[0] for name in facts}
    edges: List[Tuple[Fact, Fact]] = []
    for _, fact_a, fact_b in iter_conflicts(schema, instance):
        pairs = [(fact_a, fact_b), (fact_b, fact_a)]
        for better, worse in pairs:
            better_name = _name_of(facts, better)
            worse_name = _name_of(facts, worse)
            if (tier[better_name], tier[worse_name]) in (("g", "f"), ("e", "d")):
                edges.append((better, worse))
    prioritizing = PrioritizingInstance(
        schema, instance, PriorityRelation(edges), ccp=False
    )

    def sub(names: Sequence[str]) -> Instance:
        return instance.subinstance(facts[name] for name in names)

    # Example 2.5.  The copy of the conference text this reproduction
    # works from garbles J3 (it prints the same fact set as J1, which
    # contradicts the narrative: J2 Pareto-improves J1, yet J3 is
    # claimed Pareto-optimal).  Exhaustive repair enumeration over the
    # instance shows exactly one repair that is Pareto-optimal but not
    # globally-optimal — {g1f1, g1f2, f2p1, h3h2, d1a, f2b, f3c} — and
    # J4 is a global improvement of it via e1b > d1a and g2a > f2b while
    # not a Pareto improvement (no single added fact dominates both),
    # exactly the behaviour the text ascribes to J3.  We use that repair
    # as J3; experiment E1 asserts every claim.
    j1 = sub(["g1f1", "g1f2", "f2p1", "h3h2", "d1e", "f2b", "f3a"])
    j2 = sub(["g1f1", "g1f2", "f2p1", "h3h2", "d1e", "g2a", "e3b"])
    j3 = sub(["g1f1", "g1f2", "f2p1", "h3h2", "d1a", "f2b", "f3c"])
    j4 = sub(["g1f1", "g1f2", "f2p1", "h3h2", "e1b", "g2a", "f3c"])
    return RunningExample(
        schema=schema,
        prioritizing=prioritizing,
        facts=facts,
        j1=j1,
        j2=j2,
        j3=j3,
        j4=j4,
    )


def _name_of(facts: Dict[str, Fact], fact: Fact) -> str:
    for name, candidate in facts.items():
        if candidate == fact:
            return name
    raise MissingEntryError(fact)


def source_reliability_scenario(
    record_count: int = 40,
    overlap: float = 0.5,
    seed: int = 0,
) -> PrioritizingInstance:
    """Two data sources, one more reliable, integrated into one table.

    Models the introduction's first motivation.  A ``Customer(id, city)``
    relation with the key FD ``1 → 2`` receives facts from a *curated*
    source and a *scraped* source; on shared ids the sources disagree
    with probability one, and every conflict is resolved in favour of the
    curated fact by the priority.

    Parameters
    ----------
    record_count:
        Number of customer ids per source.
    overlap:
        Fraction of ids present in both sources (these create conflicts).
    seed:
        RNG seed for reproducibility.
    """
    rng = random.Random(seed)
    schema = Schema.single_relation(
        ["1 -> 2"], relation="Customer", arity=2,
        attribute_names=("id", "city"),
    )
    cities = ["armonk", "bento", "carmel", "dublin", "eureka"]
    curated: List[Fact] = []
    scraped: List[Fact] = []
    shared = int(record_count * overlap)
    for customer in range(record_count):
        good_city = rng.choice(cities)
        curated.append(Fact("Customer", (f"c{customer}", good_city)))
        if customer < shared:
            bad_city = rng.choice([c for c in cities if c != good_city])
            scraped.append(Fact("Customer", (f"c{customer}", bad_city)))
    instance = schema.instance(curated + scraped)
    edges = []
    scraped_by_id = {fact[1]: fact for fact in scraped}
    for fact in curated:
        rival = scraped_by_id.get(fact[1])
        if rival is not None:
            edges.append((fact, rival))
    return PrioritizingInstance(
        schema, instance, PriorityRelation(edges), ccp=False
    )


def timestamp_scenario(
    entity_count: int = 20,
    versions_per_entity: int = 3,
    seed: int = 0,
) -> PrioritizingInstance:
    """Versioned records where newer facts are preferred over older ones.

    Models the introduction's second motivation.  A
    ``Status(entity, state)`` relation with the key FD ``1 → 2`` holds
    several timestamped versions per entity; the priority prefers each
    version to every older conflicting version (a total order per
    entity, which makes the globally-optimal repair unique: the newest
    version of everything).
    """
    rng = random.Random(seed)
    schema = Schema.single_relation(
        ["1 -> 2"], relation="Status", arity=2,
        attribute_names=("entity", "state"),
    )
    states = ["new", "active", "paused", "closed"]
    facts: List[Fact] = []
    edges: List[Tuple[Fact, Fact]] = []
    for entity in range(entity_count):
        versions: List[Fact] = []
        available = states[:]
        rng.shuffle(available)
        for version in range(min(versions_per_entity, len(available))):
            versions.append(
                Fact("Status", (f"e{entity}", available[version]))
            )
        facts.extend(versions)
        for newer_idx in range(len(versions)):
            for older_idx in range(newer_idx):
                edges.append((versions[newer_idx], versions[older_idx]))
    instance = schema.instance(facts)
    return PrioritizingInstance(
        schema, instance, PriorityRelation(edges), ccp=False
    )
