"""Random priority relations over inconsistent instances.

Builders for the ``≻`` side of prioritizing instances:

* :func:`random_conflict_priority` — a random acyclic orientation of a
  random subset of the conflicting pairs (the classical setting of
  Section 2.3);
* :func:`total_conflict_priority` — orients *every* conflicting pair
  (a completion, under which all three preference semantics coincide
  per Staworko et al.);
* :func:`random_ccp_priority` — additionally relates non-conflicting
  facts (the ccp setting of Section 7);
* :func:`layered_priority` — assigns each fact a random tier and
  prefers higher tiers, modelling source-reliability cleaning.

Acyclicity is guaranteed by construction: every builder first draws a
random global order on the facts and only emits edges along it.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.core.conflicts import conflicting_pairs
from repro.core.fact import Fact
from repro.core.instance import Instance
from repro.core.priority import PrioritizingInstance, PriorityRelation
from repro.core.schema import Schema

__all__ = [
    "random_conflict_priority",
    "total_conflict_priority",
    "random_ccp_priority",
    "layered_priority",
    "random_prioritizing_instance",
]


def _fact_order(instance: Instance, rng: random.Random) -> Dict[Fact, int]:
    facts = sorted(instance.facts, key=str)
    rng.shuffle(facts)
    return {fact: position for position, fact in enumerate(facts)}


def random_conflict_priority(
    schema: Schema,
    instance: Instance,
    edge_probability: float = 0.7,
    seed: int = 0,
) -> PriorityRelation:
    """A random acyclic priority over conflicting pairs only.

    Each conflicting pair is oriented (along a hidden random global
    order, so cycles cannot arise) with probability
    ``edge_probability`` and left incomparable otherwise.
    """
    rng = random.Random(seed)
    order = _fact_order(instance, rng)
    edges: List[Tuple[Fact, Fact]] = []
    for pair in sorted(conflicting_pairs(schema, instance), key=str):
        if rng.random() >= edge_probability:
            continue
        f, g = sorted(pair, key=lambda fact: order[fact])
        edges.append((f, g))
    return PriorityRelation(edges)


def total_conflict_priority(
    schema: Schema, instance: Instance, seed: int = 0
) -> PriorityRelation:
    """An acyclic orientation of *all* conflicting pairs (a completion)."""
    return random_conflict_priority(
        schema, instance, edge_probability=1.0, seed=seed
    )


def random_ccp_priority(
    schema: Schema,
    instance: Instance,
    conflict_probability: float = 0.7,
    cross_probability: float = 0.1,
    seed: int = 0,
) -> PriorityRelation:
    """A random acyclic cross-conflict priority (Section 7).

    Conflicting pairs are oriented with ``conflict_probability``;
    non-conflicting pairs additionally with ``cross_probability``.
    """
    rng = random.Random(seed)
    order = _fact_order(instance, rng)
    conflicts = conflicting_pairs(schema, instance)
    edges: List[Tuple[Fact, Fact]] = []
    facts = sorted(instance.facts, key=str)
    for i, fact_a in enumerate(facts):
        for fact_b in facts[i + 1 :]:
            pair = frozenset({fact_a, fact_b})
            probability = (
                conflict_probability
                if pair in conflicts
                else cross_probability
            )
            if rng.random() >= probability:
                continue
            f, g = sorted(pair, key=lambda fact: order[fact])
            edges.append((f, g))
    return PriorityRelation(edges)


def layered_priority(
    schema: Schema,
    instance: Instance,
    tier_count: int = 3,
    seed: int = 0,
    ccp: bool = False,
) -> PriorityRelation:
    """A tier-based priority: facts in higher tiers beat lower tiers.

    Models source reliability: each fact lands in a random tier
    (``0`` = least trusted) and every pair in distinct tiers is oriented
    toward the higher tier — restricted to conflicting pairs unless
    ``ccp=True``.
    """
    rng = random.Random(seed)
    tier = {fact: rng.randrange(tier_count) for fact in sorted(instance.facts, key=str)}
    conflicts = conflicting_pairs(schema, instance)
    edges: List[Tuple[Fact, Fact]] = []
    facts = sorted(instance.facts, key=str)
    for i, fact_a in enumerate(facts):
        for fact_b in facts[i + 1 :]:
            if tier[fact_a] == tier[fact_b]:
                continue
            if not ccp and frozenset({fact_a, fact_b}) not in conflicts:
                continue
            better, worse = (
                (fact_a, fact_b)
                if tier[fact_a] > tier[fact_b]
                else (fact_b, fact_a)
            )
            edges.append((better, worse))
    return PriorityRelation(edges)


def random_prioritizing_instance(
    schema: Schema,
    instance: Instance,
    edge_probability: float = 0.7,
    seed: int = 0,
    ccp: bool = False,
    cross_probability: float = 0.1,
) -> PrioritizingInstance:
    """Bundle an instance with a freshly drawn random priority."""
    if ccp:
        priority = random_ccp_priority(
            schema,
            instance,
            conflict_probability=edge_probability,
            cross_probability=cross_probability,
            seed=seed,
        )
    else:
        priority = random_conflict_priority(
            schema, instance, edge_probability=edge_probability, seed=seed
        )
    return PrioritizingInstance(schema, instance, priority, ccp=ccp)
