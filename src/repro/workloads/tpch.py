"""A dependency-free synthetic workload with the shape of TPC-H.

The counting/CQA papers this reproduction serves (Calautti–Pieris–
Livshits, arXiv:2112.09617, and the tuple-inconsistency pipeline in
SNIPPETS.md snippet 2) evaluate repair-theoretic machinery on TPC-H
tables with *injected* FD violations: generate clean benchmark data at
several scale factors, verify it satisfies the constraints, corrupt it
at controlled rates and seeds, then run the pipeline end to end.  This
module is that recipe without the external ``dbgen`` dependency: the
eight standard relations (region, nation, supplier, part, partsupp,
customer, orders, lineitem) with realistic key FDs and the standard
cross-relation fan-out (orders reference customers, lineitems reference
orders/parts/suppliers, partsupp pairs parts with suppliers),
parameterized by ``scale_factor`` and ``seed``.

Everything is a **deterministic stream**: each relation's rows are
produced by an iterator whose content depends only on
``(relation, scale_factor, seed)`` — never on Python's hash
randomization or on how the streams are interleaved — so the same
parameters yield byte-identical ``.tbl`` files on every machine, and
the violation injector (:mod:`repro.workloads.injection`) can replay a
stream without materializing it.

Row counts follow TPC-H's proportions, scaled so that
``scale_factor=1`` yields roughly ``10^6`` lineitem rows (the official
benchmark's 6M lineitems at SF 1 are overkill for a pure-Python
pipeline; the *ratios* between tables are what the workload shape
needs).  Instances of this size never materialize as per-fact objects:
the streaming loader (:mod:`repro.engine.streaming`) ingests these
streams into sqlite and only surfaces the conflict kernel.
"""

from __future__ import annotations

import csv
import random
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.fd import FD
from repro.core.priority import PrioritizingInstance
from repro.core.schema import Schema
from repro.core.signature import RelationSymbol, Signature
from repro.exceptions import UsageError

__all__ = [
    "TPCH_RELATIONS",
    "COLUMN_TYPES",
    "tpch_schema",
    "table_sizes",
    "iter_relation",
    "generate_tables",
    "write_tbl",
    "read_tbl",
    "converters_for",
    "sample_conflict_neighborhoods",
]

#: Relation name -> (attribute names, column type tags).  Arities are
#: scaled down from full TPC-H (no comment/address columns) but keep
#: one key FD per relation and the benchmark's reference structure.
TPCH_RELATIONS: Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...]]] = {
    "region": (("regionkey", "name"), ("int", "str")),
    "nation": (("nationkey", "name", "regionkey"), ("int", "str", "int")),
    "supplier": (
        ("suppkey", "name", "nationkey", "acctbal"),
        ("int", "str", "int", "float"),
    ),
    "part": (
        ("partkey", "name", "brand", "retailprice"),
        ("int", "str", "str", "float"),
    ),
    "partsupp": (
        ("partkey", "suppkey", "availqty", "supplycost"),
        ("int", "int", "int", "float"),
    ),
    "customer": (
        ("custkey", "name", "nationkey", "acctbal"),
        ("int", "str", "int", "float"),
    ),
    "orders": (
        ("orderkey", "custkey", "orderstatus", "totalprice"),
        ("int", "int", "str", "float"),
    ),
    "lineitem": (
        ("orderkey", "linenumber", "partkey", "suppkey", "quantity",
         "extendedprice"),
        ("int", "int", "int", "int", "int", "float"),
    ),
}

#: Relation name -> column type tags (``int`` / ``float`` / ``str``),
#: the information a ``.tbl`` reader needs to restore typed constants.
COLUMN_TYPES: Dict[str, Tuple[str, ...]] = {
    name: types for name, (_, types) in TPCH_RELATIONS.items()
}

#: The key attribute positions (1-based) of each relation; the FD of
#: the relation is ``key -> all remaining attributes``.
_KEYS: Dict[str, Tuple[int, ...]] = {
    "region": (1,),
    "nation": (1,),
    "supplier": (1,),
    "part": (1,),
    "partsupp": (1, 2),
    "customer": (1,),
    "orders": (1,),
    "lineitem": (1, 2),
}

#: Base row counts at scale factor 1 (region/nation are fixed-size, as
#: in TPC-H; partsupp and lineitem are derived from part/orders).
_BASE_ROWS: Dict[str, int] = {
    "supplier": 2_000,
    "part": 20_000,
    "customer": 15_000,
    "orders": 150_000,
}

#: Minimum rows per scaled relation, so tiny smoke scale factors still
#: exercise every foreign-key fan-out.
_FLOOR_ROWS: Dict[str, int] = {
    "supplier": 4,
    "part": 8,
    "customer": 5,
    "orders": 10,
}

_REGION_NAMES = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")
_BRANDS = tuple(f"Brand#{i}{j}" for i in range(1, 6) for j in range(1, 6))
_ORDER_STATUS = ("O", "F", "P")
#: Lines per order: uniform over 4..10, mean 7, so scale factor 1
#: yields ~1.05M lineitem rows from 150k orders.
_MIN_LINES, _MAX_LINES = 4, 10


def tpch_schema() -> Schema:
    """The TPC-H-shaped schema: 8 relations, one key FD each.

    Every FD has the relation's primary key as its left-hand side and
    every remaining attribute on the right — exactly the shape whose
    repair checking the dichotomy places on the tractable side
    (each per-relation FD set is equivalent to a single FD).
    """
    symbols = [
        RelationSymbol(name, len(attributes), attributes)
        for name, (attributes, _) in TPCH_RELATIONS.items()
    ]
    fds = []
    for name, (attributes, _) in TPCH_RELATIONS.items():
        key = frozenset(_KEYS[name])
        rest = frozenset(range(1, len(attributes) + 1)) - key
        fds.append(FD(name, key, rest))
    return Schema(Signature(symbols), fds)


def _scaled(relation: str, scale_factor: float) -> int:
    base = _BASE_ROWS[relation]
    return max(_FLOOR_ROWS[relation], int(base * scale_factor))


def table_sizes(scale_factor: float) -> Dict[str, int]:
    """Exact row counts per relation at ``scale_factor``.

    ``partsupp`` holds two suppliers per part; ``lineitem`` is the one
    stochastic count (4–10 lines per order, so its entry here is the
    *expected* size — the generated stream's exact length depends on
    the seed).
    """
    if scale_factor <= 0:
        raise UsageError(
            f"scale factor must be positive, got {scale_factor!r}"
        )
    sizes = {
        "region": len(_REGION_NAMES),
        "nation": 25,
        "supplier": _scaled("supplier", scale_factor),
        "part": _scaled("part", scale_factor),
        "customer": _scaled("customer", scale_factor),
        "orders": _scaled("orders", scale_factor),
    }
    sizes["partsupp"] = 2 * sizes["part"]
    sizes["lineitem"] = (
        sizes["orders"] * (_MIN_LINES + _MAX_LINES) // 2
    )
    return sizes


def _rng(seed: int, relation: str) -> random.Random:
    """A per-relation RNG seeded by a string, so the stream content is
    independent of ``PYTHONHASHSEED`` and of other relations' streams."""
    return random.Random(f"tpch|{seed}|{relation}")


def _money(rng: random.Random, low: float, high: float) -> float:
    return round(rng.uniform(low, high), 2)


def iter_relation(
    relation: str, scale_factor: float, seed: int = 0
) -> Iterator[Tuple[Any, ...]]:
    """The deterministic clean row stream of one relation.

    Rows are keyed densely (``1..n``), so every foreign key can be
    drawn without materializing the referenced table; the stream for a
    given ``(relation, scale_factor, seed)`` is always identical.
    """
    if relation not in TPCH_RELATIONS:
        raise UsageError(f"unknown TPC-H relation {relation!r}")
    sizes = table_sizes(scale_factor)
    rng = _rng(seed, relation)
    if relation == "region":
        for key, name in enumerate(_REGION_NAMES, start=1):
            yield (key, name)
    elif relation == "nation":
        for key in range(1, sizes["nation"] + 1):
            yield (key, f"Nation#{key}", 1 + (key - 1) % sizes["region"])
    elif relation == "supplier":
        for key in range(1, sizes["supplier"] + 1):
            yield (
                key,
                f"Supplier#{key:09d}",
                rng.randrange(1, sizes["nation"] + 1),
                _money(rng, -999.99, 9999.99),
            )
    elif relation == "part":
        for key in range(1, sizes["part"] + 1):
            yield (
                key,
                f"Part#{key:09d}",
                rng.choice(_BRANDS),
                _money(rng, 1.00, 2098.99),
            )
    elif relation == "partsupp":
        n_supp = sizes["supplier"]
        for partkey in range(1, sizes["part"] + 1):
            # Two distinct suppliers per part, TPC-H's arithmetic skip
            # pattern: deterministic and collision-free.
            for i in range(2):
                suppkey = 1 + (partkey + i * (1 + n_supp // 2)) % n_supp
                yield (
                    partkey,
                    suppkey,
                    rng.randrange(1, 10_000),
                    _money(rng, 1.00, 1000.99),
                )
    elif relation == "customer":
        for key in range(1, sizes["customer"] + 1):
            yield (
                key,
                f"Customer#{key:09d}",
                rng.randrange(1, sizes["nation"] + 1),
                _money(rng, -999.99, 9999.99),
            )
    elif relation == "orders":
        for key in range(1, sizes["orders"] + 1):
            yield (
                key,
                rng.randrange(1, sizes["customer"] + 1),
                rng.choice(_ORDER_STATUS),
                _money(rng, 100.00, 100_000.00),
            )
    else:  # lineitem
        n_part = sizes["part"]
        n_supp = sizes["supplier"]
        for orderkey in range(1, sizes["orders"] + 1):
            lines = rng.randint(_MIN_LINES, _MAX_LINES)
            for linenumber in range(1, lines + 1):
                partkey = rng.randrange(1, n_part + 1)
                suppkey = 1 + (partkey + (linenumber % 2) * (1 + n_supp // 2)) % n_supp
                quantity = rng.randrange(1, 51)
                yield (
                    orderkey,
                    linenumber,
                    partkey,
                    suppkey,
                    quantity,
                    round(quantity * rng.uniform(1.00, 2098.99), 2),
                )


def generate_tables(
    scale_factor: float,
    seed: int = 0,
    relations: Optional[Sequence[str]] = None,
) -> Dict[str, Callable[[], Iterator[Tuple[Any, ...]]]]:
    """Stream factories for every relation (or a chosen subset).

    Returns ``{relation: factory}`` where each call to ``factory()``
    replays the relation's clean stream from the top — the property the
    injector and the ``.tbl`` writers rely on to stay single-pass.
    """
    chosen = list(relations) if relations is not None else list(TPCH_RELATIONS)
    for name in chosen:
        if name not in TPCH_RELATIONS:
            raise UsageError(f"unknown TPC-H relation {name!r}")

    def factory(name: str) -> Callable[[], Iterator[Tuple[Any, ...]]]:
        return lambda: iter_relation(name, scale_factor, seed)

    return {name: factory(name) for name in chosen}


# -- .tbl round trip ---------------------------------------------------------


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)


def write_tbl(
    rows: Iterable[Tuple[Any, ...]], path: Union[str, Path]
) -> int:
    """Write a row stream as a TPC-H ``.tbl`` file (pipe-delimited,
    trailing ``|``, one row per line).  Returns the row count."""
    count = 0
    with open(path, "w", newline="") as handle:
        for row in rows:
            handle.write("|".join(_format_cell(v) for v in row) + "|\n")
            count += 1
    return count


_CONVERTERS: Dict[str, Callable[[str], Any]] = {
    "int": int,
    "float": float,
    "str": str,
}


def converters_for(relation: str) -> Tuple[Callable[[str], Any], ...]:
    """Per-column cell converters restoring a relation's typed values."""
    if relation not in COLUMN_TYPES:
        raise UsageError(f"unknown TPC-H relation {relation!r}")
    return tuple(_CONVERTERS[tag] for tag in COLUMN_TYPES[relation])


def read_tbl(
    path: Union[str, Path],
    converters: Sequence[Callable[[str], Any]],
) -> Iterator[Tuple[Any, ...]]:
    """Stream typed rows back out of a ``.tbl`` file."""
    arity = len(converters)
    with open(path, newline="") as handle:
        reader = csv.reader(handle, delimiter="|")
        for line_number, cells in enumerate(reader, start=1):
            if cells and cells[-1] == "":  # trailing delimiter
                cells = cells[:-1]
            if not cells:
                continue
            if len(cells) != arity:
                raise UsageError(
                    f"{path}:{line_number}: expected {arity} columns, "
                    f"got {len(cells)}"
                )
            try:
                yield tuple(
                    convert(cell)
                    for convert, cell in zip(converters, cells)
                )
            except (TypeError, ValueError) as exc:
                raise UsageError(
                    f"{path}:{line_number}: cannot convert row: {exc}"
                ) from exc


# -- conformance sampling ----------------------------------------------------


def sample_conflict_neighborhoods(
    prioritizing: PrioritizingInstance,
    count: int,
    max_facts: int = 12,
    seed: int = 0,
) -> List[PrioritizingInstance]:
    """Random small neighborhoods of the conflict graph, for the oracle.

    Each neighborhood is one conflict component (a conflict block plus
    its priority closure — priority edges only relate conflicting
    facts, so the closure stays inside the component) optionally merged
    with further components while it fits in ``max_facts``.  The
    neighborhoods are valid prioritizing instances of their own, so the
    exhaustive definitional oracle (:mod:`repro.testing.oracle`) can
    afford them, and verdicts on them are faithful: conflict components
    are independent under all three semantics.
    """
    if max_facts < 2:
        raise UsageError("a conflict neighborhood needs max_facts >= 2")
    adjacency = prioritizing.conflict_index.adjacency()
    seen = set()
    components = []
    for fact in sorted(adjacency, key=str):
        if fact in seen or not adjacency[fact]:
            continue
        stack, component = [fact], set()
        while stack:
            current = stack.pop()
            if current in component:
                continue
            component.add(current)
            stack.extend(adjacency[current] - component)
        seen |= component
        if len(component) <= max_facts:
            components.append(sorted(component, key=str))
    rng = random.Random(f"neighborhoods|{seed}")
    rng.shuffle(components)
    neighborhoods: List[PrioritizingInstance] = []
    index = 0
    while len(neighborhoods) < count and index < len(components):
        chosen = list(components[index])
        index += 1
        # Greedily merge following components while they fit, so some
        # samples exercise multi-block interactions.
        while index < len(components) and (
            len(chosen) + len(components[index]) <= max_facts
        ):
            chosen.extend(components[index])
            index += 1
        instance = prioritizing.subinstance(chosen)
        priority = prioritizing.priority.restrict_to(chosen)
        neighborhoods.append(
            PrioritizingInstance(
                prioritizing.schema, instance, priority,
                ccp=prioritizing.is_ccp,
            )
        )
    return neighborhoods
