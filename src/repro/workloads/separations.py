"""Instances that separate the three preference semantics.

The semantics nest — completion-optimal ⊆ globally-optimal ⊆
Pareto-optimal — and both inclusions are strict.  This module builds
the canonical separating *blocks* (single-FD conflict blocks) and
concatenates them into instances where the three optimal-repair counts
diverge exponentially, making the hierarchy measurable (experiment
E16):

* :func:`pareto_not_global_block` — groups ``X = {x1, x2}`` and
  ``Y = {y1, y2}`` with ``y1 ≻ x1``, ``y2 ≻ x2``: choosing ``X`` is
  Pareto-optimal (no single fact dominates both ``x``'s) but not
  globally optimal (``Y`` jointly improves it) — the running example's
  J3 phenomenon in miniature.  Per-block counts: C=1, G=1, P=2.
* :func:`global_not_completion_block` — groups ``X = {x1, x2}``,
  ``Y = {y}``, ``Z = {z}`` with ``y ≻ x1``, ``z ≻ x2``: choosing ``X``
  is globally optimal (neither ``Y`` nor ``Z`` improves both ``x``'s,
  and ``Y ∪ Z`` is inconsistent) but no greedy run can produce it —
  the counterexample to [14, Prop. 10(iii)] reported in Section 4.1.
  Per-block counts: C=2, G=3, P=3.
* :func:`separation_instance` — ``k`` blocks of each kind over one
  relation, giving total counts ``C = 2^k``, ``G = 3^k``,
  ``P = 2^k · 3^k``.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.fact import Fact
from repro.core.priority import PrioritizingInstance, PriorityRelation
from repro.core.schema import Schema

from repro.exceptions import UsageError

__all__ = [
    "separation_schema",
    "pareto_not_global_block",
    "global_not_completion_block",
    "separation_instance",
]

_Block = Tuple[List[Fact], List[Tuple[Fact, Fact]]]


def separation_schema() -> Schema:
    """A ternary relation with the single FD ``1 → 2``.

    Attribute 1 names the block, attribute 2 the group, attribute 3
    distinguishes facts within a group.
    """
    return Schema.single_relation(["1 -> 2"], relation="B", arity=3)


def pareto_not_global_block(block_id: str) -> _Block:
    """A block whose ``X`` choice is Pareto- but not globally optimal."""
    x1 = Fact("B", (block_id, "x", 1))
    x2 = Fact("B", (block_id, "x", 2))
    y1 = Fact("B", (block_id, "y", 1))
    y2 = Fact("B", (block_id, "y", 2))
    return [x1, x2, y1, y2], [(y1, x1), (y2, x2)]


def global_not_completion_block(block_id: str) -> _Block:
    """A block whose ``X`` choice is globally but not completion
    optimal."""
    x1 = Fact("B", (block_id, "x", 1))
    x2 = Fact("B", (block_id, "x", 2))
    y = Fact("B", (block_id, "y", 1))
    z = Fact("B", (block_id, "z", 1))
    return [x1, x2, y, z], [(y, x1), (z, x2)]


def separation_instance(block_count: int) -> PrioritizingInstance:
    """``block_count`` blocks of each separator kind, in one relation.

    The counts of optimal repairs are exactly
    ``C = 2^k``, ``G = 3^k``, ``P = 2^k · 3^k`` for ``k = block_count``
    (asserted by the tests and measured by experiment E16).

    Examples
    --------
    >>> pri = separation_instance(2)
    >>> len(pri.instance)
    16
    """
    if block_count < 1:
        raise UsageError("need at least one block")
    schema = separation_schema()
    facts: List[Fact] = []
    edges: List[Tuple[Fact, Fact]] = []
    for index in range(block_count):
        for builder, tag in (
            (pareto_not_global_block, "pg"),
            (global_not_completion_block, "gc"),
        ):
            block_facts, block_edges = builder(f"{tag}{index}")
            facts.extend(block_facts)
            edges.extend(block_edges)
    return PrioritizingInstance(
        schema,
        schema.instance(facts),
        PriorityRelation(edges),
        ccp=False,
    )
