"""Workload generation: synthetic inconsistent databases, priorities,
random graphs, and the paper's running example.

The paper is a theory paper without an empirical section, so every
experiment in this reproduction runs on synthetic data produced here
(documented as a substitution in DESIGN.md).  The generators model the
paper's own motivations: conflicting sources of differing reliability
and timestamped fact versions.  :mod:`repro.workloads.tpch` and
:mod:`repro.workloads.injection` add the production-scale workload: a
TPC-H-shaped benchmark generator with seeded FD-violation injection
and a trusted/crowdsourced two-tier priority.
"""

from repro.workloads.consortium import consortium_scenario, consortium_schema
from repro.workloads.generators import (
    domain_sizes_for_density,
    random_instance,
    random_instance_with_conflicts,
)
from repro.workloads.graphs import (
    all_graphs,
    erdos_renyi,
    hamiltonian_graph,
    non_hamiltonian_graph,
)
from repro.workloads.injection import (
    InjectedConflict,
    InjectionManifest,
    inject_violations,
    iter_injected_rows,
    manifest_priority_edges,
    tiered_prioritizing,
)
from repro.workloads.priorities import (
    layered_priority,
    random_ccp_priority,
    random_conflict_priority,
    random_prioritizing_instance,
    total_conflict_priority,
)
from repro.workloads.scenarios import (
    RunningExample,
    running_example,
    source_reliability_scenario,
    timestamp_scenario,
)
from repro.workloads.separations import (
    separation_instance,
    separation_schema,
)
from repro.workloads.tpch import (
    TPCH_RELATIONS,
    converters_for,
    generate_tables,
    iter_relation,
    read_tbl,
    sample_conflict_neighborhoods,
    table_sizes,
    tpch_schema,
    write_tbl,
)

__all__ = [
    "random_instance",
    "random_instance_with_conflicts",
    "domain_sizes_for_density",
    "erdos_renyi",
    "hamiltonian_graph",
    "non_hamiltonian_graph",
    "all_graphs",
    "random_conflict_priority",
    "total_conflict_priority",
    "random_ccp_priority",
    "layered_priority",
    "random_prioritizing_instance",
    "RunningExample",
    "running_example",
    "source_reliability_scenario",
    "timestamp_scenario",
    "consortium_scenario",
    "consortium_schema",
    "separation_instance",
    "separation_schema",
    "TPCH_RELATIONS",
    "tpch_schema",
    "table_sizes",
    "iter_relation",
    "generate_tables",
    "write_tbl",
    "read_tbl",
    "converters_for",
    "sample_conflict_neighborhoods",
    "InjectedConflict",
    "InjectionManifest",
    "inject_violations",
    "iter_injected_rows",
    "manifest_priority_edges",
    "tiered_prioritizing",
]
