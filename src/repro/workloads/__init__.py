"""Workload generation: synthetic inconsistent databases, priorities,
random graphs, and the paper's running example.

The paper is a theory paper without an empirical section, so every
experiment in this reproduction runs on synthetic data produced here
(documented as a substitution in DESIGN.md).  The generators model the
paper's own motivations: conflicting sources of differing reliability
and timestamped fact versions.
"""

from repro.workloads.consortium import consortium_scenario, consortium_schema
from repro.workloads.generators import (
    domain_sizes_for_density,
    random_instance,
    random_instance_with_conflicts,
)
from repro.workloads.graphs import (
    all_graphs,
    erdos_renyi,
    hamiltonian_graph,
    non_hamiltonian_graph,
)
from repro.workloads.priorities import (
    layered_priority,
    random_ccp_priority,
    random_conflict_priority,
    random_prioritizing_instance,
    total_conflict_priority,
)
from repro.workloads.scenarios import (
    RunningExample,
    running_example,
    source_reliability_scenario,
    timestamp_scenario,
)
from repro.workloads.separations import (
    separation_instance,
    separation_schema,
)

__all__ = [
    "random_instance",
    "random_instance_with_conflicts",
    "domain_sizes_for_density",
    "erdos_renyi",
    "hamiltonian_graph",
    "non_hamiltonian_graph",
    "all_graphs",
    "random_conflict_priority",
    "total_conflict_priority",
    "random_ccp_priority",
    "layered_priority",
    "random_prioritizing_instance",
    "RunningExample",
    "running_example",
    "source_reliability_scenario",
    "timestamp_scenario",
    "consortium_scenario",
    "consortium_schema",
    "separation_instance",
    "separation_schema",
]
