"""Synthetic inconsistent databases with controllable conflict density.

The paper evaluates nothing empirically (it is a theory paper), so the
reproduction's experiments run on synthetic inconsistent databases.  The
generators here produce instances over arbitrary schemas where the
number and shape of δ-conflicts is steered by per-attribute domain
sizes: small domains on FD left-hand sides create many same-LHS groups,
small domains on right-hand sides create disagreement within them.

All generators take an explicit seed and are deterministic given it.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.core.fact import Fact
from repro.core.instance import Instance
from repro.core.schema import Schema

from repro.exceptions import UsageError

__all__ = [
    "random_instance",
    "random_instance_with_conflicts",
    "domain_sizes_for_density",
]


def random_instance(
    schema: Schema,
    facts_per_relation: int,
    domain_sizes: Optional[Dict[str, Sequence[int]]] = None,
    seed: int = 0,
) -> Instance:
    """A random instance over ``schema``.

    Parameters
    ----------
    schema:
        The target schema.
    facts_per_relation:
        How many distinct facts to draw for each relation symbol.
    domain_sizes:
        Per relation, a sequence of per-attribute domain sizes (defaults
        to ``facts_per_relation`` everywhere, which yields sparse
        conflicts).  Attribute ``i`` of relation ``R`` draws uniformly
        from ``{0, …, domain_sizes[R][i-1] - 1}``.
    seed:
        RNG seed.

    Examples
    --------
    >>> schema = Schema.single_relation(["1 -> 2"], arity=2)
    >>> inst = random_instance(schema, 10, seed=1)
    >>> len(inst) <= 10
    True
    """
    rng = random.Random(seed)
    facts: set = set()
    for relation in schema.signature:
        sizes = (
            list(domain_sizes[relation.name])
            if domain_sizes and relation.name in domain_sizes
            else [max(facts_per_relation, 2)] * relation.arity
        )
        if len(sizes) != relation.arity:
            raise UsageError(
                f"domain_sizes[{relation.name!r}] must have "
                f"{relation.arity} entries, got {len(sizes)}"
            )
        attempts = 0
        produced: set = set()
        while len(produced) < facts_per_relation and attempts < 50 * facts_per_relation:
            attempts += 1
            values = tuple(
                rng.randrange(size) for size in sizes
            )
            produced.add(Fact(relation.name, values))
        facts |= produced
    return Instance(schema.signature, facts)


def domain_sizes_for_density(
    schema: Schema, facts_per_relation: int, density: float
) -> Dict[str, List[int]]:
    """Domain sizes tuned so that conflicts hit roughly ``density``.

    ``density`` near 0 gives almost-consistent instances; near 1 gives
    instances where most facts participate in conflicts.  The heuristic
    shrinks every FD left-hand-side attribute's domain as density grows
    (more facts collide on the LHS) while keeping the remaining
    attributes wide (so colliding facts disagree on the RHS).
    """
    if not 0.0 <= density <= 1.0:
        raise UsageError(f"density must be in [0, 1], got {density}")
    sizes: Dict[str, List[int]] = {}
    for relation, fdset in schema.per_relation():
        lhs_attributes = {
            position for fd in fdset if not fd.is_trivial() for position in fd.lhs
        }
        wide = max(2 * facts_per_relation, 4)
        # Interpolate the LHS domain between `facts_per_relation` groups
        # (no collisions) and very few groups (everything collides).
        narrow = max(2, round(facts_per_relation * (1.0 - density)) + 1)
        sizes[relation.name] = [
            narrow if position in lhs_attributes else wide
            for position in range(1, relation.arity + 1)
        ]
    return sizes


def random_instance_with_conflicts(
    schema: Schema,
    facts_per_relation: int,
    density: float = 0.5,
    seed: int = 0,
) -> Instance:
    """A random instance whose conflict rate tracks ``density``.

    Examples
    --------
    >>> schema = Schema.single_relation(["1 -> 2"], arity=2)
    >>> dense = random_instance_with_conflicts(schema, 30, 0.9, seed=2)
    >>> schema.is_consistent(dense)
    False
    """
    return random_instance(
        schema,
        facts_per_relation,
        domain_sizes_for_density(schema, facts_per_relation, density),
        seed=seed,
    )
