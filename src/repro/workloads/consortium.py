"""The "library consortium" workload: the running example, at scale.

Generates BookLoc/LibLoc-style databases of arbitrary size over the
exact schema of the paper's running example (Example 2.2), with the
same conflict *shapes* — duplicate isbn entries with clashing genres,
clashing library locations, clashing location-to-library assignments —
and the same priority *style* (a trusted catalog tier beating a
crowdsourced tier on conflicting facts).

This makes the tractable algorithms measurable on inputs that look like
the paper's own motivating scenario rather than on abstract random
tables.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.core.conflicts import iter_conflicts
from repro.core.fact import Fact
from repro.core.fd import FD
from repro.core.instance import Instance
from repro.core.priority import PrioritizingInstance, PriorityRelation
from repro.core.schema import Schema
from repro.core.signature import RelationSymbol, Signature

__all__ = ["consortium_schema", "consortium_scenario"]


def consortium_schema() -> Schema:
    """The running example's schema (Example 2.2)."""
    signature = Signature(
        [
            RelationSymbol("BookLoc", 3, ("isbn", "genre", "lib")),
            RelationSymbol("LibLoc", 2, ("lib", "loc")),
        ]
    )
    return Schema(
        signature,
        [
            FD("BookLoc", {1}, {2}),
            FD("LibLoc", {1}, {2}),
            FD("LibLoc", {2}, {1}),
        ],
    )


_GENRES = ["fiction", "drama", "poetry", "horror", "history", "sci-fi"]


def consortium_scenario(
    book_count: int = 50,
    library_count: int = 10,
    genre_clash_rate: float = 0.3,
    location_clash_rate: float = 0.3,
    seed: int = 0,
) -> PrioritizingInstance:
    """A scaled running-example database with a trusted-tier priority.

    Parameters
    ----------
    book_count:
        Number of distinct isbns.
    library_count:
        Number of libraries (locations are drawn from a pool of the
        same size, so the LibLoc keys genuinely collide).
    genre_clash_rate:
        Fraction of books whose crowdsourced genre clashes with the
        catalog genre.
    location_clash_rate:
        Fraction of libraries with a clashing crowdsourced location.
    seed:
        RNG seed.

    Priorities mirror Example 2.3: every catalog fact beats every
    conflicting crowdsourced fact; conflicts inside a tier stay
    unordered.
    """
    rng = random.Random(seed)
    schema = consortium_schema()
    catalog: List[Fact] = []
    crowd: List[Fact] = []

    locations = [f"loc{i}" for i in range(library_count)]
    for lib_index in range(library_count):
        lib = f"lib{lib_index}"
        catalog.append(Fact("LibLoc", (lib, locations[lib_index])))
        if rng.random() < location_clash_rate:
            other = rng.choice(locations)
            fact = Fact("LibLoc", (lib, other))
            if fact not in catalog:
                crowd.append(fact)

    for book_index in range(book_count):
        isbn = f"b{book_index}"
        genre = rng.choice(_GENRES)
        lib = f"lib{rng.randrange(library_count)}"
        catalog.append(Fact("BookLoc", (isbn, genre, lib)))
        if rng.random() < genre_clash_rate:
            wrong = rng.choice([g for g in _GENRES if g != genre])
            crowd.append(
                Fact("BookLoc", (isbn, wrong, f"lib{rng.randrange(library_count)}"))
            )

    catalog_set = set(catalog)
    instance = Instance(schema.signature, catalog + crowd)
    edges: List[Tuple[Fact, Fact]] = []
    for _, fact_a, fact_b in iter_conflicts(schema, instance):
        a_trusted = fact_a in catalog_set
        b_trusted = fact_b in catalog_set
        if a_trusted and not b_trusted:
            edges.append((fact_a, fact_b))
        elif b_trusted and not a_trusted:
            edges.append((fact_b, fact_a))
    return PrioritizingInstance(
        schema, instance, PriorityRelation(edges), ccp=False
    )
