"""Seeded FD-violation injection with a full conflict manifest.

The snippet-2 pipeline (and the counting/CQA evaluations it feeds)
corrupts *clean* benchmark tables at controlled rates and seeds, so
that every inconsistency in the resulting instance is provably
injector-introduced and independently recorded.  This module is that
step for the streams of :mod:`repro.workloads.tpch` (or any clean
keyed row stream): :func:`inject_violations` duplicates key-bearing
rows with clashing right-hand-side values and returns, next to the
corrupted streams, an :class:`InjectionManifest` listing every injected
conflict pair.

Determinism contract
--------------------
Each row's injection decision *and* its corrupted twin are drawn from a
throwaway RNG seeded by ``(seed, relation, row_index)`` — a string
seed, so nothing depends on ``PYTHONHASHSEED`` — and the decision is
``u < rate`` for a ``u`` that does not depend on the rate.  Hence

* the same ``(rate, seed)`` yields byte-identical manifests on every
  machine and hash seed;
* raising the rate at a fixed seed *adds* conflict blocks without
  touching the blocks already injected (rate monotonicity), which the
  metamorphic suite pins.

Because the clean streams are keyed (one row per key), an injected
twin conflicts with exactly its original row and nothing else: the
manifest's pair list *is* the instance's conflict-pair list, a
cross-check the loader runs at every scale.

The two-tier priority (:func:`manifest_priority_edges`) mirrors
``consortium.py``'s trusted-catalog style: every clean ("trusted")
fact beats its injected ("crowdsourced") twin, and nothing else is
ordered.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.fact import Fact
from repro.core.fd import FD
from repro.core.instance import Instance
from repro.core.priority import PrioritizingInstance, PriorityRelation
from repro.core.schema import Schema
from repro.exceptions import UsageError

__all__ = [
    "InjectedConflict",
    "InjectionManifest",
    "iter_injected_rows",
    "inject_violations",
    "manifest_priority_edges",
    "tiered_prioritizing",
]

MANIFEST_VERSION = 1


@dataclass(frozen=True)
class InjectedConflict:
    """One injected conflict: a clean row and its corrupted twin.

    ``row_index`` is the 0-based position of the clean row in its
    relation's stream; ``positions`` are the 1-based attribute
    positions that were corrupted (always a nonempty subset of the
    violated FD's right-hand side).
    """

    relation: str
    fd: str
    row_index: int
    positions: Tuple[int, ...]
    clean_row: Tuple[Any, ...]
    injected_row: Tuple[Any, ...]

    def clean_fact(self) -> Fact:
        """The trusted fact of this conflict."""
        return Fact(self.relation, self.clean_row)

    def injected_fact(self) -> Fact:
        """The corrupted (crowdsourced-tier) fact of this conflict."""
        return Fact(self.relation, self.injected_row)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "relation": self.relation,
            "fd": self.fd,
            "row_index": self.row_index,
            "positions": list(self.positions),
            "clean_row": list(self.clean_row),
            "injected_row": list(self.injected_row),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "InjectedConflict":
        return cls(
            relation=data["relation"],
            fd=data["fd"],
            row_index=data["row_index"],
            positions=tuple(data["positions"]),
            clean_row=tuple(data["clean_row"]),
            injected_row=tuple(data["injected_row"]),
        )


@dataclass
class InjectionManifest:
    """The complete record of one injection run.

    The manifest is the ground truth every downstream verdict is
    cross-checked against: the loader's conflict scan must find exactly
    :meth:`conflict_pairs`, and the all-trusted repair must be the
    unique globally optimal repair of the conflict kernel under the
    two-tier priority.
    """

    rate: float
    seed: int
    relations: Tuple[str, ...]
    conflicts: List[InjectedConflict]

    def __len__(self) -> int:
        return len(self.conflicts)

    def counts_by_relation(self) -> Dict[str, int]:
        """Injected-conflict counts per relation (zero entries kept)."""
        counts = {relation: 0 for relation in self.relations}
        for conflict in self.conflicts:
            counts[conflict.relation] = counts.get(conflict.relation, 0) + 1
        return counts

    def conflict_pairs(self) -> FrozenSet[FrozenSet[Fact]]:
        """Every injected conflict as an unordered fact pair."""
        return frozenset(
            frozenset((c.clean_fact(), c.injected_fact()))
            for c in self.conflicts
        )

    def injected_facts(self) -> FrozenSet[Fact]:
        """All corrupted twins (the crowdsourced tier)."""
        return frozenset(c.injected_fact() for c in self.conflicts)

    def clean_conflict_facts(self) -> FrozenSet[Fact]:
        """All clean rows that gained a corrupted twin (trusted tier)."""
        return frozenset(c.clean_fact() for c in self.conflicts)

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, list-only containers, ``\\n``
        terminated — byte-identical for identical runs."""
        document = {
            "version": MANIFEST_VERSION,
            "rate": self.rate,
            "seed": self.seed,
            "relations": list(self.relations),
            "conflict_count": len(self.conflicts),
            "counts_by_relation": self.counts_by_relation(),
            # A list in deterministic row-scan (injection) order, not a
            # set: the order is already canonical without sorted().
            "conflicts": [  # repro-lint: ignore[RL003]
                c.to_dict() for c in self.conflicts
            ],
        }
        return json.dumps(document, sort_keys=True, indent=1) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "InjectionManifest":
        try:
            document = json.loads(text)
        except ValueError as exc:
            raise UsageError(f"manifest is not valid JSON: {exc}") from exc
        for field in ("rate", "seed", "relations", "conflicts"):
            if field not in document:
                raise UsageError(f"manifest is missing {field!r}")
        manifest = cls(
            rate=document["rate"],
            seed=document["seed"],
            relations=tuple(document["relations"]),
            conflicts=[
                InjectedConflict.from_dict(entry)
                for entry in document["conflicts"]
            ],
        )
        if document.get("conflict_count") not in (None, len(manifest)):
            raise UsageError(
                f"manifest conflict_count {document['conflict_count']} "
                f"does not match its {len(manifest)} conflict entries"
            )
        return manifest


def _corrupt_value(value: Any, rng: random.Random) -> Any:
    """A deterministic replacement guaranteed to differ from ``value``."""
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value + 1 + rng.randrange(999_983)
    if isinstance(value, float):
        return round(value + 1.0 + rng.random() * 997.0, 2)
    if isinstance(value, str):
        return f"{value}~v{rng.randrange(1_000)}"
    return f"corrupt~{rng.randrange(1_000_000)}"


def _row_rng(seed: int, relation: str, row_index: int) -> random.Random:
    return random.Random(f"inject|{seed}|{relation}|{row_index}")


def iter_injected_rows(
    relation: str,
    fd: FD,
    rows: Iterable[Tuple[Any, ...]],
    rate: float,
    seed: int,
    sink: Optional[List[InjectedConflict]] = None,
) -> Iterator[Tuple[Any, ...]]:
    """Stream ``rows`` through the injector for one relation.

    Yields every clean row unchanged and, for the selected rows,
    immediately afterwards a corrupted twin: the FD's left-hand side is
    kept verbatim and a random nonempty subset of its right-hand-side
    positions is replaced with clashing values.  Selected conflicts are
    appended to ``sink`` (when given) in stream order.
    """
    if not 0.0 <= rate < 1.0:
        raise UsageError(f"injection rate must be in [0, 1), got {rate!r}")
    if fd.relation != relation:
        raise UsageError(
            f"FD {fd} does not constrain relation {relation!r}"
        )
    rhs = fd.rhs_sorted
    if not rhs:
        raise UsageError(f"FD {fd} has an empty right-hand side")
    fd_text = str(fd)
    for row_index, row in enumerate(rows):
        yield row
        rng = _row_rng(seed, relation, row_index)
        if rng.random() >= rate:
            continue
        chosen = 1 + rng.randrange(len(rhs))
        positions = tuple(sorted(rng.sample(rhs, chosen)))
        corrupted = list(row)
        for position in positions:
            corrupted[position - 1] = _corrupt_value(
                row[position - 1], rng
            )
        injected = tuple(corrupted)
        if sink is not None:
            sink.append(
                InjectedConflict(
                    relation=relation,
                    fd=fd_text,
                    row_index=row_index,
                    positions=positions,
                    clean_row=row,
                    injected_row=injected,
                )
            )
        yield injected


def _fd_for(schema: Schema, relation: str) -> FD:
    """The single non-trivial FD of ``relation`` in ``schema``."""
    candidates = sorted(
        (fd for fd in schema.fds_for(relation).fds if not fd.is_trivial()),
        key=str,
    )
    if not candidates:
        raise UsageError(
            f"relation {relation!r} has no non-trivial FD to violate"
        )
    if len(candidates) > 1:
        raise UsageError(
            f"relation {relation!r} has {len(candidates)} FDs; pass the "
            f"FD to inject explicitly via fd_subset"
        )
    return candidates[0]


def _normalize_fd_subset(
    schema: Schema, fd_subset: Optional[Iterable[Union[str, FD]]]
) -> Dict[str, FD]:
    """``fd_subset`` entries (relation names or FDs) -> {relation: FD}."""
    chosen: Dict[str, FD] = {}
    if fd_subset is None:
        for relation in sorted(schema.relation_names()):
            fds = [
                fd for fd in schema.fds_for(relation).fds
                if not fd.is_trivial()
            ]
            if fds:
                chosen[relation] = _fd_for(schema, relation)
        return chosen
    for entry in fd_subset:
        if isinstance(entry, FD):
            if entry.relation not in schema.relation_names():
                raise UsageError(
                    f"FD {entry} names a relation outside the schema"
                )
            if entry.relation in chosen:
                raise UsageError(
                    f"fd_subset names relation {entry.relation!r} twice"
                )
            chosen[entry.relation] = entry
        else:
            if entry in chosen:
                raise UsageError(f"fd_subset names relation {entry!r} twice")
            chosen[entry] = _fd_for(schema, entry)
    return chosen


def inject_violations(
    tables: Dict[str, Callable[[], Iterator[Tuple[Any, ...]]]],
    schema: Schema,
    rate: float,
    seed: int,
    fd_subset: Optional[Iterable[Union[str, FD]]] = None,
) -> Tuple[
    Dict[str, Callable[[], Iterator[Tuple[Any, ...]]]], InjectionManifest
]:
    """Corrupt clean stream factories at ``rate``; record a manifest.

    ``tables`` maps relation names to replayable clean-stream factories
    (:func:`repro.workloads.tpch.generate_tables` produces exactly
    this).  Relations outside ``fd_subset`` (default: every relation
    with a non-trivial FD) pass through untouched.

    Returns ``(injected_tables, manifest)``.  The injected factories
    are replayable too, and the manifest is **eagerly** complete: the
    selected conflicts are decided here by a dry scan of the decision
    stream (cheap — one short-seeded RNG per row, no corruption work),
    so callers may consult the manifest before, during, or without
    consuming the corrupted streams.
    """
    chosen = _normalize_fd_subset(schema, fd_subset)
    for relation in chosen:
        if relation not in tables:
            raise UsageError(
                f"fd_subset names relation {relation!r} but no such "
                f"stream was provided"
            )
    conflicts: List[InjectedConflict] = []
    for relation in sorted(tables):
        fd = chosen.get(relation)
        if fd is None:
            continue
        sink: List[InjectedConflict] = []
        for _ in iter_injected_rows(
            relation, fd, tables[relation](), rate, seed, sink
        ):
            pass
        conflicts.extend(sink)

    def injected_factory(
        relation: str, fd: FD
    ) -> Callable[[], Iterator[Tuple[Any, ...]]]:
        return lambda: iter_injected_rows(
            relation, fd, tables[relation](), rate, seed
        )

    injected_tables: Dict[str, Callable[[], Iterator[Tuple[Any, ...]]]] = {}
    for relation in sorted(tables):
        fd = chosen.get(relation)
        if fd is None:
            injected_tables[relation] = tables[relation]
        else:
            injected_tables[relation] = injected_factory(relation, fd)
    manifest = InjectionManifest(
        rate=rate,
        seed=seed,
        relations=tuple(sorted(chosen)),
        conflicts=conflicts,
    )
    return injected_tables, manifest


# -- the two-tier priority ---------------------------------------------------


def manifest_priority_edges(
    manifest: InjectionManifest,
    facts: Optional[Iterable[Fact]] = None,
) -> List[Tuple[Fact, Fact]]:
    """Trusted-beats-crowdsourced edges, in deterministic order.

    One edge per injected conflict, from the clean fact to its
    corrupted twin (the style of ``consortium.py``: the catalog tier
    wins every cross-tier conflict, ties inside a tier stay
    unordered).  When ``facts`` is given, only edges with both
    endpoints inside it are kept — the restriction used when the
    priority is laid over a conflict kernel or a sampled neighborhood.
    """
    keep = None if facts is None else frozenset(facts)
    edges = []
    for conflict in manifest.conflicts:
        clean, injected = conflict.clean_fact(), conflict.injected_fact()
        if keep is not None and (clean not in keep or injected not in keep):
            continue
        edges.append((clean, injected))
    return edges


def tiered_prioritizing(
    schema: Schema,
    instance: Instance,
    manifest: InjectionManifest,
) -> PrioritizingInstance:
    """``instance`` under the manifest's two-tier priority.

    ``instance`` is typically the streaming loader's conflict kernel;
    every edge relates a conflicting pair by construction, so this is a
    classical (non-ccp) prioritizing instance, and the all-trusted
    fact set is its unique globally optimal repair — the cross-check
    verdict the workload pipeline asserts end to end.
    """
    edges = manifest_priority_edges(manifest, instance.facts)
    return PrioritizingInstance(
        schema, instance, PriorityRelation(edges), ccp=False
    )
