"""Random undirected graphs for the Hamiltonian-cycle experiments.

Generators feeding the Lemma 5.2 gadget (experiment E5): Erdős–Rényi
graphs, guaranteed-Hamiltonian graphs (a hidden cycle plus noise), and
guaranteed-non-Hamiltonian graphs (a cut vertex construction).
"""

from __future__ import annotations

import random
from typing import Iterator, List, Tuple

from repro.exceptions import UsageError
from repro.hardness.hamiltonian import UndirectedGraph

__all__ = [
    "erdos_renyi",
    "hamiltonian_graph",
    "non_hamiltonian_graph",
    "all_graphs",
]


def erdos_renyi(
    node_count: int, edge_probability: float, seed: int = 0
) -> UndirectedGraph:
    """A ``G(n, p)`` random graph.

    Examples
    --------
    >>> g = erdos_renyi(5, 0.5, seed=3)
    >>> g.node_count
    5
    """
    rng = random.Random(seed)
    edges = [
        (u, v)
        for u in range(node_count)
        for v in range(u + 1, node_count)
        if rng.random() < edge_probability
    ]
    return UndirectedGraph(node_count, edges)


def hamiltonian_graph(
    node_count: int, extra_edge_probability: float = 0.2, seed: int = 0
) -> UndirectedGraph:
    """A graph guaranteed Hamiltonian: a hidden random cycle plus noise."""
    if node_count < 2:
        raise UsageError("need at least two vertices")
    rng = random.Random(seed)
    order = list(range(node_count))
    rng.shuffle(order)
    edges = {
        (order[i], order[(i + 1) % node_count]) for i in range(node_count)
    }
    edges = {(u, v) for u, v in edges if u != v}
    for u in range(node_count):
        for v in range(u + 1, node_count):
            if rng.random() < extra_edge_probability:
                edges.add((u, v))
    return UndirectedGraph(node_count, edges)


def non_hamiltonian_graph(node_count: int, seed: int = 0) -> UndirectedGraph:
    """A graph guaranteed non-Hamiltonian via a cut vertex.

    Two random connected blobs share exactly one vertex; any Hamiltonian
    cycle would have to pass through the cut vertex twice.
    """
    if node_count < 3:
        raise UsageError("need at least three vertices for a cut vertex")
    rng = random.Random(seed)
    cut = 0
    left = list(range(1, node_count // 2 + 1))
    right = list(range(node_count // 2 + 1, node_count))
    edges: List[Tuple[int, int]] = []
    for blob in (left, right):
        previous = cut
        for node in blob:
            edges.append((previous, node))
            previous = node
        for i, u in enumerate(blob):
            for v in blob[i + 1 :]:
                if rng.random() < 0.4:
                    edges.append((u, v))
    return UndirectedGraph(node_count, edges)


def all_graphs(node_count: int) -> Iterator[UndirectedGraph]:
    """Every graph on ``node_count`` labelled vertices (2^(n choose 2))."""
    pairs = [
        (u, v)
        for u in range(node_count)
        for v in range(u + 1, node_count)
    ]
    for mask in range(1 << len(pairs)):
        yield UndirectedGraph(
            node_count,
            [pair for bit, pair in enumerate(pairs) if mask & (1 << bit)],
        )
