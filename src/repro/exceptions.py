"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing the individual failure modes when they need to.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

__all__ = [
    "ReproError",
    "UsageError",
    "MissingEntryError",
    "AttributePositionError",
    "SchemaError",
    "UnknownRelationError",
    "ArityError",
    "InvalidFDError",
    "InvalidPriorityError",
    "CyclicPriorityError",
    "CrossConflictPriorityError",
    "InconsistentInstanceError",
    "NotASubinstanceError",
    "IntractableSchemaError",
    "SearchBudgetExceededError",
    "TransientWorkerError",
    "WorkerCrashError",
    "JournalCorruptError",
    "QueryError",
    "ProtocolError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class UsageError(ReproError, ValueError):
    """An argument value is outside a function's documented domain.

    Derives from both :class:`ReproError` (so ``except ReproError``
    catches every library failure) and :class:`ValueError` (so callers
    treating bad arguments the builtin way keep working).
    """


class MissingEntryError(ReproError, KeyError):
    """A name is absent from a registry, catalog, or report.

    Derives from both :class:`ReproError` and :class:`KeyError`; note
    the :class:`KeyError` quirk that ``str()`` shows the repr of the
    message.
    """


class AttributePositionError(ReproError, IndexError):
    """An attribute position is outside a fact's ``1..arity`` range.

    Derives from both :class:`ReproError` and :class:`IndexError` (the
    paper's 1-based ``f[A]`` notation is still positional indexing).
    """


class SchemaError(ReproError):
    """A schema (signature plus FDs) is malformed."""


class UnknownRelationError(SchemaError):
    """A fact, FD, or query atom refers to a relation not in the signature."""

    def __init__(self, relation_name: str) -> None:
        super().__init__(f"unknown relation symbol: {relation_name!r}")
        self.relation_name = relation_name


class ArityError(SchemaError):
    """A tuple's width does not match the arity of its relation symbol."""

    def __init__(self, relation_name: str, expected: int, actual: int) -> None:
        super().__init__(
            f"relation {relation_name!r} has arity {expected}, "
            f"got a tuple of width {actual}"
        )
        self.relation_name = relation_name
        self.expected = expected
        self.actual = actual


class InvalidFDError(SchemaError):
    """A functional dependency refers to attributes outside ``1..arity``."""


class InvalidPriorityError(ReproError):
    """A priority relation violates the requirements of Section 2.3."""


class CyclicPriorityError(InvalidPriorityError):
    """The priority relation contains a cycle (it must be acyclic)."""

    def __init__(self, cycle: Iterable[Any]) -> None:
        super().__init__(f"priority relation has a cycle: {list(cycle)!r}")
        self.cycle = tuple(cycle)


class CrossConflictPriorityError(InvalidPriorityError):
    """A classical (non-ccp) priority relates two non-conflicting facts.

    Section 2.3 of the paper requires ``f > g`` only between conflicting
    facts; Section 7 relaxes this via *ccp-instances*.  Constructing a
    classical prioritizing instance with a cross-conflict edge raises this
    error; use ``ccp=True`` to opt into the relaxed setting.
    """


class InconsistentInstanceError(ReproError):
    """An operation requires a consistent instance but got conflicts."""


class NotASubinstanceError(ReproError):
    """A candidate repair contains facts outside the original instance."""


class IntractableSchemaError(ReproError):
    """A polynomial-time checker was requested for a coNP-hard schema.

    Raised by the dispatching checkers when the schema falls on the hard
    side of the dichotomy and the caller did not allow the exponential
    brute-force fallback.
    """


class SearchBudgetExceededError(ReproError):
    """The budgeted improvement search ran out of nodes or wall-clock.

    Raised by :func:`repro.core.checking.improvement_search.
    check_globally_optimal_search` when a ``node_budget`` or ``deadline``
    was given and exhausted before the search could decide the question.
    The exception reports how far the search got; callers such as the
    batch service translate it into an explicit ``degraded`` or
    ``timeout`` job status instead of an answer.
    """

    def __init__(
        self, kind: str, nodes_explored: int, budget: Optional[int] = None
    ) -> None:
        if kind == "deadline":
            message = (
                f"improvement search hit its deadline after exploring "
                f"{nodes_explored} node(s)"
            )
        else:
            message = (
                f"improvement search exhausted its node budget "
                f"({budget}) after exploring {nodes_explored} node(s)"
            )
        super().__init__(message)
        self.kind = kind
        self.nodes_explored = nodes_explored
        self.budget = budget


class TransientWorkerError(ReproError):
    """A repair-check worker failed in a retryable way.

    The batch service retries jobs that raise this (or an ``OSError``)
    with bounded exponential backoff; any other failure is reported as a
    permanent job error.  Custom runners raise it to signal "try again".
    """


class WorkerCrashError(TransientWorkerError):
    """A worker died (or simulated dying) mid-job.

    In a process pool a dead worker surfaces as a broken pool, which the
    supervised executor absorbs by rebuilding the pool and re-dispatching
    the lost jobs.  In thread/serial execution there is no process to
    kill, so the fault-injection harness (:mod:`repro.service.faults`)
    raises this instead; deriving from :class:`TransientWorkerError`
    makes the retry loop play the role the pool supervisor plays for
    real crashes.
    """


class JournalCorruptError(ReproError):
    """A result-journal file is structurally unreadable.

    Individual torn or corrupt lines are *skipped* during replay (a
    crash mid-append legitimately tears the final line); this error is
    reserved for journals that cannot be read at all.
    """


class QueryError(ReproError):
    """A conjunctive query is malformed (unsafe variables, bad arity...)."""


class ProtocolError(ReproError):
    """A wire request to the repair-checking daemon is malformed.

    Raised by :mod:`repro.server.protocol` while decoding a
    newline-delimited JSON request (unparseable JSON, unknown ``op``,
    missing or ill-typed fields, oversized line).  The daemon translates
    it into a structured ``bad-request`` error response on the same
    connection rather than dropping the client.
    """
