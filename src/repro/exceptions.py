"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing the individual failure modes when they need to.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SchemaError",
    "UnknownRelationError",
    "ArityError",
    "InvalidFDError",
    "InvalidPriorityError",
    "CyclicPriorityError",
    "CrossConflictPriorityError",
    "InconsistentInstanceError",
    "NotASubinstanceError",
    "IntractableSchemaError",
    "QueryError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class SchemaError(ReproError):
    """A schema (signature plus FDs) is malformed."""


class UnknownRelationError(SchemaError):
    """A fact, FD, or query atom refers to a relation not in the signature."""

    def __init__(self, relation_name: str) -> None:
        super().__init__(f"unknown relation symbol: {relation_name!r}")
        self.relation_name = relation_name


class ArityError(SchemaError):
    """A tuple's width does not match the arity of its relation symbol."""

    def __init__(self, relation_name: str, expected: int, actual: int) -> None:
        super().__init__(
            f"relation {relation_name!r} has arity {expected}, "
            f"got a tuple of width {actual}"
        )
        self.relation_name = relation_name
        self.expected = expected
        self.actual = actual


class InvalidFDError(SchemaError):
    """A functional dependency refers to attributes outside ``1..arity``."""


class InvalidPriorityError(ReproError):
    """A priority relation violates the requirements of Section 2.3."""


class CyclicPriorityError(InvalidPriorityError):
    """The priority relation contains a cycle (it must be acyclic)."""

    def __init__(self, cycle) -> None:
        super().__init__(f"priority relation has a cycle: {list(cycle)!r}")
        self.cycle = tuple(cycle)


class CrossConflictPriorityError(InvalidPriorityError):
    """A classical (non-ccp) priority relates two non-conflicting facts.

    Section 2.3 of the paper requires ``f > g`` only between conflicting
    facts; Section 7 relaxes this via *ccp-instances*.  Constructing a
    classical prioritizing instance with a cross-conflict edge raises this
    error; use ``ccp=True`` to opt into the relaxed setting.
    """


class InconsistentInstanceError(ReproError):
    """An operation requires a consistent instance but got conflicts."""


class NotASubinstanceError(ReproError):
    """A candidate repair contains facts outside the original instance."""


class IntractableSchemaError(ReproError):
    """A polynomial-time checker was requested for a coNP-hard schema.

    Raised by the dispatching checkers when the schema falls on the hard
    side of the dichotomy and the caller did not allow the exponential
    brute-force fallback.
    """


class QueryError(ReproError):
    """A conjunctive query is malformed (unsafe variables, bad arity...)."""
