"""Counting the preferred repairs that entail a conjunctive query.

Calautti, Pieris and Livshits ("Counting Database Repairs Entailing a
Query", arXiv:2112.09617) study the problem behind this module: given
an inconsistent instance, how many of its repairs satisfy a boolean
query?  The fraction of entailing repairs is a natural confidence score
for a query answer — strictly finer-grained than the all-or-nothing
certain-answer semantics of :mod:`repro.cqa`.

Two evaluation paths, mirroring :mod:`repro.core.counting`:

* **Block-product fast path** — for classical priorities over schemas
  whose every ``Δ|R`` is equivalent to a single FD, and a single
  ground (variable-free) atom, the count factorizes per FD-block
  (:func:`repro.core.counting_optimal.count_optimal_repairs_with_fact`)
  and is polynomial.
* **Enumeration** — every other combination walks
  :func:`repro.cqa.preferred_repairs` and evaluates the query on each
  repair; exact but exponential, with an optional ``max_repairs`` cap
  that degrades the result to a lower bound instead of hanging.

A query *entails* in a repair when it has at least one answer there
(for boolean queries: when it holds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.counting_optimal import count_optimal_repairs_with_fact
from repro.core.fact import Fact
from repro.core.priority import PrioritizingInstance
from repro.cqa.consistent_answers import preferred_repairs
from repro.cqa.evaluation import holds
from repro.cqa.queries import ConjunctiveQuery
from repro.exceptions import UsageError

__all__ = ["EntailmentCount", "count_repairs_entailing"]

#: Semantics the counter accepts (the preferred-repair chain).
COUNT_SEMANTICS = ("global", "pareto", "completion", "all")

#: Method label for the per-block product decomposition.
BLOCK_METHOD = "block-product"

#: Method label for the enumeration fallback.
ENUMERATION_METHOD = "enumeration"


def _require_semantics(semantics: str) -> None:
    if semantics not in COUNT_SEMANTICS:
        raise UsageError(
            f"unknown semantics {semantics!r}; "
            f"expected one of {COUNT_SEMANTICS}"
        )


@dataclass(frozen=True)
class EntailmentCount:
    """How many preferred repairs entail the query.

    ``exact`` is False only when an enumeration cap (``max_repairs``)
    stopped the count early — then ``entailing`` and ``total`` are the
    tallies over the repairs actually examined, and ``status`` is
    ``"degraded"``.
    """

    entailing: int
    total: int
    semantics: str
    method: str
    exact: bool = True
    reason: str = ""

    @property
    def status(self) -> str:
        """``"ok"`` for exact counts, ``"degraded"`` for capped ones."""
        return "ok" if self.exact else "degraded"

    @property
    def fraction(self) -> float:
        """The entailing share — 0.0 when there are no repairs at all."""
        if self.total == 0:
            return 0.0
        return self.entailing / self.total


def _ground_atom_fact(query: ConjunctiveQuery) -> Optional[Fact]:
    """The query's single ground atom as a fact, or None.

    The block-product path applies only to a one-atom variable-free
    body (safety then forces an empty head, so the query is boolean).
    """
    if len(query.body) != 1 or query.head:
        return None
    atom = query.body[0]
    if atom.variables():
        return None
    return Fact(atom.relation, atom.terms)


def count_repairs_entailing(
    query: ConjunctiveQuery,
    prioritizing: PrioritizingInstance,
    semantics: str = "global",
    max_repairs: Optional[int] = None,
) -> EntailmentCount:
    """Count the ``semantics``-preferred repairs in which ``query`` holds.

    ``semantics`` is ``"global"``, ``"pareto"``, ``"completion"``, or
    ``"all"`` (plain subset repairs).  ``max_repairs`` caps how many
    preferred repairs the enumeration fallback examines; hitting the
    cap returns a degraded (``exact=False``) partial count rather than
    running forever on astronomically repaired instances.

    Examples
    --------
    >>> from repro.core import Fact, PriorityRelation, PrioritizingInstance, Schema
    >>> from repro.cqa import Atom, ConjunctiveQuery
    >>> schema = Schema.single_relation(["1 -> 2"], arity=2)
    >>> new, old = Fact("R", (1, "new")), Fact("R", (1, "old"))
    >>> pri = PrioritizingInstance(
    ...     schema, schema.instance([new, old]),
    ...     PriorityRelation([(new, old)]),
    ... )
    >>> q = ConjunctiveQuery((), (Atom("R", (1, "new")),))
    >>> result = count_repairs_entailing(q, pri, "global")
    >>> (result.entailing, result.total, result.fraction)
    (1, 1, 1.0)
    """
    _require_semantics(semantics)
    query.validate_against(prioritizing.schema)
    fact = _ground_atom_fact(query)
    if (
        fact is not None
        and semantics in ("global", "pareto")
        and not prioritizing.is_ccp
    ):
        counts = count_optimal_repairs_with_fact(
            prioritizing, fact, semantics
        )
        if counts is not None:
            entailing, total = counts
            return EntailmentCount(
                entailing=entailing,
                total=total,
                semantics=semantics,
                method=BLOCK_METHOD,
            )
    entailing = 0
    total = 0
    for repair in preferred_repairs(prioritizing, semantics=semantics):
        if max_repairs is not None and total >= max_repairs:
            return EntailmentCount(
                entailing=entailing,
                total=total,
                semantics=semantics,
                method=ENUMERATION_METHOD,
                exact=False,
                reason=(
                    f"stopped after examining {total} preferred repairs "
                    f"(max_repairs={max_repairs})"
                ),
            )
        total += 1
        if holds(query, repair):
            entailing += 1
    return EntailmentCount(
        entailing=entailing,
        total=total,
        semantics=semantics,
        method=ENUMERATION_METHOD,
    )
