"""Computing preferred repairs, not just checking them.

The paper's dichotomies classify *repair checking*: given a candidate,
is it optimal?  The natural follow-on problems — *construct* an optimal
repair and *count* the repairs entailing a query — are worked out in
Livshits, Kimelfeld and Roy, "Computing Optimal Repairs for Functional
Dependencies" (arXiv:1712.07705) and Calautti, Pieris and Livshits,
"Counting Database Repairs Entailing a Query" (arXiv:2112.09617).  This
package implements both on top of the checking engine:

* :func:`find_optimal_repair` / :func:`compute_optimal_repair`
  (:mod:`repro.compute.construct`) — construct a globally-, Pareto-, or
  completion-optimal repair.  For classical priorities one greedy run
  with forced orientations suffices for all three semantics (finding is
  tractable even on schemas where checking is coNP-hard); for ccp
  priorities an anytime budgeted improvement climb returns the
  best-so-far repair with an explicit ``degraded``/``timeout`` status.
* :func:`count_repairs_entailing` (:mod:`repro.compute.entailment`) —
  how many preferred repairs entail a conjunctive query, with the
  per-block product decomposition of
  :mod:`repro.core.counting_optimal` as the polynomial fast path and
  repair enumeration as the exact fallback.

Everything returned here is a checkable witness: the test suite drives
every computed repair back through the ``check_*`` dispatchers and the
definitional oracle.
"""

from repro.compute.construct import (
    SEMANTICS,
    ComputedRepair,
    compute_optimal_repair,
    find_optimal_repair,
)
from repro.compute.entailment import EntailmentCount, count_repairs_entailing

__all__ = [
    "SEMANTICS",
    "ComputedRepair",
    "EntailmentCount",
    "compute_optimal_repair",
    "count_repairs_entailing",
    "find_optimal_repair",
]
