"""Constructing optimal repairs (the dichotomies' companion problem).

Checking whether a *given* repair is optimal and *finding* one are
different problems with different frontiers: Livshits–Kimelfeld–Roy
(arXiv:1712.07705) show that an optimal repair can be constructed in
polynomial time in settings well beyond the checking dichotomy's
tractable side.  The engine of this module is that asymmetry:

* **Classical priorities** (the paper's Section 2.3 setting).  One run
  of the greedy procedure with forced orientations
  (:func:`repro.core.checking.completion.greedy_completion_repair`)
  outputs a completion-optimal repair, and by the semantics chain
  ``completion ⊆ global ⊆ pareto`` that repair is also globally- and
  Pareto-optimal.  This works for *every* schema — including the
  coNP-hard-to-check ones of Theorem 3.1 — so the classical side of
  :func:`compute_optimal_repair` is polynomial for all three semantics.
* **ccp priorities** (Section 7).  Preference edges may cross conflict
  boundaries, the greedy characterization no longer applies, and this
  module falls back to an *anytime improvement climb*: start from any
  repair, repeatedly ask the exact searchers for an improvement, and
  extend each improvement witness back into a repair.  The climb is
  budgeted exactly like
  :func:`~repro.core.checking.improvement_search.check_globally_optimal_search`
  (``node_budget`` per climb round, a monotonic ``deadline`` overall)
  and always returns its best-so-far repair, downgrading the status to
  ``degraded`` or ``timeout`` instead of failing.

The witness-extension step is the load-bearing lemma: if ``J'``
globally (or Pareto) improves ``J`` and ``J'' ⊇ J'`` is a repair, then
``J''`` still improves ``J`` — lost facts only shrink
(``J \\ J'' ⊆ J \\ J'``) while gained facts only grow.  Extending with
:func:`~repro.core.repairs.greedy_repair` and the witness facts first
(they are mutually consistent, so all of them are kept) therefore turns
any improvement witness into a strictly better *repair*.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import FrozenSet, Optional, Set

from repro.core.checking.completion import greedy_completion_repair
from repro.core.checking.improvement_search import find_global_improvement
from repro.core.improvements import find_pareto_improvement
from repro.core.instance import Instance
from repro.core.priority import PrioritizingInstance, PriorityRelation
from repro.core.repairs import greedy_repair
from repro.core.schema import Schema
from repro.exceptions import SearchBudgetExceededError, UsageError

__all__ = [
    "SEMANTICS",
    "ComputedRepair",
    "compute_optimal_repair",
    "find_optimal_repair",
]

#: The closed vocabulary of preference semantics the constructors accept.
SEMANTICS = ("global", "pareto", "completion")

#: Method label for the classical one-shot greedy construction.
GREEDY_METHOD = "greedy-forced-orientations"

#: Method label for the ccp anytime improvement climb.
ANYTIME_METHOD = "anytime-improvement-climb"


def _require_semantics(semantics: str) -> None:
    """Reject semantics outside the closed vocabulary up front."""
    if semantics not in SEMANTICS:
        raise UsageError(
            f"unknown semantics {semantics!r}; expected one of {SEMANTICS}"
        )


@dataclass(frozen=True)
class ComputedRepair:
    """A constructed repair plus the claim the constructor makes for it.

    ``repair`` is always a genuine repair (maximal consistent
    subinstance).  ``status`` qualifies the optimality claim:

    * ``"ok"`` — the repair is optimal under ``semantics``;
    * ``"degraded"`` — the climb ran out of node budget (or detected an
      improvement cycle); the repair is the best one found;
    * ``"timeout"`` — the climb hit its wall-clock deadline; the repair
      is the best one found.
    """

    repair: Instance
    status: str
    semantics: str
    method: str
    reason: str = ""
    rounds: int = 1

    @property
    def is_exact(self) -> bool:
        """Whether the optimality claim is unconditional."""
        return self.status == "ok"


def compute_optimal_repair(
    prioritizing: PrioritizingInstance,
    semantics: str = "global",
    rng: Optional[random.Random] = None,
    node_budget: Optional[int] = None,
    deadline: Optional[float] = None,
) -> ComputedRepair:
    """Construct an optimal repair of ``prioritizing`` under ``semantics``.

    For classical priorities this is one polynomial greedy run for every
    schema and every semantics; distinct ``rng`` streams reach distinct
    optimal repairs.  For ccp priorities under ``"global"`` or
    ``"pareto"`` the anytime climb applies, with ``node_budget``
    bounding each improvement search round and ``deadline`` (a
    :func:`time.monotonic` timestamp) bounding the whole climb;
    ``"completion"`` semantics rejects ccp instances
    (:class:`~repro.exceptions.InvalidPriorityError`), matching the
    checkers.

    Examples
    --------
    >>> from repro.core import Fact, PriorityRelation, Schema
    >>> schema = Schema.single_relation(["1 -> 2"], arity=2)
    >>> new, old = Fact("R", (1, "new")), Fact("R", (1, "old"))
    >>> pri = PrioritizingInstance(
    ...     schema, schema.instance([new, old]),
    ...     PriorityRelation([(new, old)]),
    ... )
    >>> result = compute_optimal_repair(pri, "global")
    >>> (result.status, sorted(map(str, result.repair)))
    ('ok', ["R(1, 'new')"])
    """
    _require_semantics(semantics)
    rng = rng or random.Random(0)
    if not prioritizing.is_ccp or semantics == "completion":
        # `greedy_completion_repair` rejects ccp itself, so the
        # completion/ccp combination raises InvalidPriorityError here.
        repair = greedy_completion_repair(prioritizing, rng)
        return ComputedRepair(
            repair=repair,
            status="ok",
            semantics=semantics,
            method=GREEDY_METHOD,
            reason=(
                "classical priority: a greedy forced-orientation run is "
                "completion-optimal, hence globally- and Pareto-optimal"
            ),
        )
    return _anytime_climb(prioritizing, semantics, rng, node_budget, deadline)


def _extend_witness(
    prioritizing: PrioritizingInstance,
    witness: Instance,
    candidate: Instance,
    rng: random.Random,
) -> Instance:
    """Grow an improvement witness into a repair that still improves.

    Witness facts go first in the greedy preference order (mutually
    consistent, so all survive), then the candidate's facts (so the
    extension discards as little as possible), then everything else.
    """
    prefer = sorted(witness.facts, key=str) + sorted(candidate.facts, key=str)
    return greedy_repair(
        prioritizing.schema, prioritizing.instance, rng, prefer=prefer
    )


def _anytime_climb(
    prioritizing: PrioritizingInstance,
    semantics: str,
    rng: random.Random,
    node_budget: Optional[int],
    deadline: Optional[float],
) -> ComputedRepair:
    """Improvement climbing for ccp priorities (global/pareto)."""
    candidate = greedy_repair(prioritizing.schema, prioritizing.instance, rng)
    seen: Set[FrozenSet] = {frozenset(candidate.facts)}
    rounds = 0
    while True:
        rounds += 1
        if deadline is not None and time.monotonic() > deadline:
            return ComputedRepair(
                candidate, "timeout", semantics, ANYTIME_METHOD,
                reason="the climb hit its deadline; best-so-far repair",
                rounds=rounds,
            )
        try:
            if semantics == "global":
                witness = find_global_improvement(
                    prioritizing, candidate,
                    node_budget=node_budget, deadline=deadline,
                )
            else:
                witness = find_pareto_improvement(prioritizing, candidate)
                if node_budget is not None and rounds > node_budget:
                    raise SearchBudgetExceededError("nodes", rounds, node_budget)
        except SearchBudgetExceededError as exc:
            status = "timeout" if exc.kind == "deadline" else "degraded"
            return ComputedRepair(
                candidate, status, semantics, ANYTIME_METHOD,
                reason=str(exc), rounds=rounds,
            )
        if witness is None:
            return ComputedRepair(
                candidate, "ok", semantics, ANYTIME_METHOD, rounds=rounds
            )
        better = _extend_witness(prioritizing, witness, candidate, rng)
        key = frozenset(better.facts)
        if key in seen:
            # The improvement relation is not a partial order on ccp
            # instances; a revisit means the climb is orbiting.
            return ComputedRepair(
                candidate, "degraded", semantics, ANYTIME_METHOD,
                reason="improvement cycle detected; best-so-far repair",
                rounds=rounds,
            )
        seen.add(key)
        candidate = better


def find_optimal_repair(
    schema: Schema,
    instance: Instance,
    priority: PriorityRelation,
    semantics: str = "global",
    ccp: bool = False,
    seed: int = 0,
    node_budget: Optional[int] = None,
    deadline: Optional[float] = None,
) -> ComputedRepair:
    """Construct an optimal repair from the raw ``(schema, I, ≻)`` triple.

    The loose-argument companion of :func:`compute_optimal_repair`:
    validates the triple by building the
    :class:`~repro.core.priority.PrioritizingInstance` (so cyclic or
    cross-conflict priorities raise the usual library errors) and seeds
    the greedy tie-breaking RNG with ``seed`` — equal seeds give equal
    repairs, distinct seeds explore distinct optima.
    """
    _require_semantics(semantics)
    prioritizing = PrioritizingInstance(schema, instance, priority, ccp=ccp)
    return compute_optimal_repair(
        prioritizing,
        semantics,
        rng=random.Random(seed),
        node_budget=node_budget,
        deadline=deadline,
    )
