"""repro: preferred repairs of inconsistent databases, and their
complexity dichotomies.

A complete, executable reproduction of *"Dichotomies in the Complexity of
Preferred Repairs"* (Fagin, Kimelfeld, Kolaitis; PODS 2015): the data
model of prioritized inconsistent databases, the polynomial-time
globally-optimal repair-checking algorithms for the tractable schemas,
the brute-force baseline for the hard ones, the dichotomy classifiers,
and the coNP-hardness gadgetry.

Quickstart
----------
>>> from repro import Schema, Fact, PriorityRelation, PrioritizingInstance
>>> from repro import check_globally_optimal, classify_schema
>>> schema = Schema.single_relation(["1 -> 2"], arity=2)
>>> f, g = Fact("R", (1, "new")), Fact("R", (1, "old"))
>>> instance = schema.instance([f, g])
>>> pri = PrioritizingInstance(schema, instance, PriorityRelation([(f, g)]))
>>> check_globally_optimal(pri, schema.instance([f])).is_optimal
True
>>> check_globally_optimal(pri, schema.instance([g])).is_optimal
False
>>> classify_schema(schema).is_tractable
True
"""

from repro.core.checking import (
    CheckResult,
    check_completion_optimal,
    check_globally_optimal,
    check_pareto_optimal,
)
from repro.core.classification import (
    CcpVerdict,
    ClassificationVerdict,
    classify_ccp_schema,
    classify_schema,
)
from repro.core.counting import (
    count_optimal_repairs,
    count_repairs_fast,
    has_unique_optimal_repair,
    optimal_repair_census,
)
from repro.core.fact import Fact
from repro.core.fd import FD
from repro.core.fdset import FDSet
from repro.core.instance import Instance
from repro.core.priority import PrioritizingInstance, PriorityRelation
from repro.core.schema import Schema
from repro.core.signature import RelationSymbol, Signature
from repro.exceptions import ReproError
from repro.explain import (
    explain_ccp_classification,
    explain_check,
    explain_classification,
)

__version__ = "1.0.0"

__all__ = [
    "Fact",
    "FD",
    "FDSet",
    "Instance",
    "PrioritizingInstance",
    "PriorityRelation",
    "Schema",
    "RelationSymbol",
    "Signature",
    "CheckResult",
    "check_globally_optimal",
    "check_pareto_optimal",
    "check_completion_optimal",
    "ClassificationVerdict",
    "CcpVerdict",
    "classify_schema",
    "classify_ccp_schema",
    "count_repairs_fast",
    "count_optimal_repairs",
    "optimal_repair_census",
    "has_unique_optimal_repair",
    "explain_check",
    "explain_classification",
    "explain_ccp_classification",
    "ReproError",
    "__version__",
]
