"""Job and result datatypes for the batch repair-checking service.

A :class:`RepairJob` is one repair-checking question: a prioritizing
instance, a candidate subinstance, the semantics to check under, plus
scheduling knobs (priority, per-job timeout, search node budget).  A
:class:`JobResult` is the service's answer, which is deliberately richer
than a bare boolean:

``status``
    ``"ok"`` — the question was decided; ``is_optimal`` holds.
    ``"degraded"`` — the schema is on the coNP-hard side and the
    budgeted search exhausted its node budget; ``is_optimal`` is None.
    Deterministic for a fixed budget.
    ``"timeout"`` — the job hit its wall-clock timeout.
    ``"error"`` — the job input was malformed (e.g. the candidate is
    not a subinstance) or the worker failed permanently.

Results are comparable to direct checker calls through ``verdict()``,
which strips the operational fields (durations, attempts, cache flags)
down to what correctness tests should compare.

The compute pipeline (``repro.compute`` driven through the service) has
its own pair: a :class:`ComputeJob` asks the service to *construct* an
optimal repair (``kind="repair"``) or *count* the preferred repairs
entailing a query (``kind="count"``), and a :class:`ComputeResult`
carries the answer in a ``payload`` dict.  Compute results share the
check results' status vocabulary and journal contract (``status``,
``fingerprint``, ``to_dict()``), so the write-ahead journal and the
resume path treat both uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional

from repro.core.instance import Instance
from repro.core.priority import PrioritizingInstance
from repro.cqa.queries import ConjunctiveQuery

from repro.exceptions import MissingEntryError, UsageError

__all__ = [
    "JOB_STATUSES",
    "COMPUTE_KINDS",
    "RepairJob",
    "JobResult",
    "ComputeJob",
    "ComputeResult",
    "BatchReport",
]

#: Every status a job can finish with.
JOB_STATUSES = ("ok", "degraded", "timeout", "error")

#: The compute operations the service can run.
COMPUTE_KINDS = ("repair", "count")


@dataclass(frozen=True)
class RepairJob:
    """One repair-checking request.

    Parameters
    ----------
    job_id:
        Caller-chosen identifier, echoed on the result.
    prioritizing:
        The (possibly ccp) prioritizing instance the question is about.
        Jobs in one batch may share it (the common case, and the one the
        result cache exploits) or carry distinct instances.
    candidate:
        The subinstance to check.
    semantics:
        ``"global"``, ``"pareto"``, or ``"completion"``.
    method:
        Passed through to the checker for global semantics: ``"auto"``
        (dichotomy-guided, with budgeted-search degradation on the hard
        side), ``"search"``, ``"brute-force"``, or ``"paranoid"``.
    priority:
        Scheduling priority; higher runs first.  Ties run in submission
        order.
    timeout:
        Per-job wall-clock budget in seconds (None = service default).
    node_budget:
        Node budget for the improvement search on hard schemas
        (None = service default; the budget is part of the cache key).
    """

    job_id: str
    prioritizing: PrioritizingInstance
    candidate: Instance
    semantics: str = "global"
    method: str = "auto"
    priority: int = 0
    timeout: Optional[float] = None
    node_budget: Optional[int] = None


@dataclass(frozen=True)
class JobResult:
    """The service's answer to one :class:`RepairJob`."""

    job_id: str
    status: str
    is_optimal: Optional[bool]
    semantics: str
    method: str
    reason: str = ""
    cache_hit: bool = False
    attempts: int = 1
    duration: float = 0.0
    fingerprint: str = ""

    def verdict(self) -> Dict[str, Any]:
        """The correctness-relevant projection of this result.

        Two runs of the same batch must agree on every job's verdict —
        regardless of worker count, executor kind, or cache temperature.
        Operational fields (duration, attempts, cache_hit) may differ.
        """
        return {
            "job_id": self.job_id,
            "status": self.status,
            "is_optimal": self.is_optimal,
            "semantics": self.semantics,
        }

    def as_cached(self) -> "JobResult":
        """A copy marked as served from the result cache."""
        return replace(self, cache_hit=True, attempts=0, duration=0.0)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready rendering (one JSONL line per job)."""
        return {
            "job_id": self.job_id,
            "status": self.status,
            "is_optimal": self.is_optimal,
            "semantics": self.semantics,
            "method": self.method,
            "reason": self.reason,
            "cache_hit": self.cache_hit,
            "attempts": self.attempts,
            "duration": self.duration,
            "fingerprint": self.fingerprint,
        }


@dataclass(frozen=True)
class ComputeJob:
    """One compute request: construct an optimal repair or count.

    Parameters
    ----------
    job_id:
        Caller-chosen identifier, echoed on the result.
    prioritizing:
        The (possibly ccp) prioritizing instance to compute over.
    kind:
        ``"repair"`` — construct an optimal repair under ``semantics``;
        ``"count"`` — count the preferred repairs entailing ``query``.
    semantics:
        ``"global"``, ``"pareto"``, or ``"completion"`` for repair jobs;
        count jobs additionally accept ``"all"``.
    seed:
        Seed for the construction's tie-breaking RNG (part of the cache
        key: different seeds may construct different optimal repairs).
    timeout:
        Per-job wall-clock budget in seconds (None = service default).
    node_budget:
        Round budget for the anytime climb on the coNP-hard side
        (None = service default; part of the cache key).
    query:
        The query whose entailment count is wanted (count jobs only).
    max_repairs:
        Enumeration cap for count jobs that fall off the block-product
        fast path (None = unbounded).
    """

    job_id: str
    prioritizing: PrioritizingInstance
    kind: str = "repair"
    semantics: str = "global"
    seed: int = 0
    priority: int = 0
    timeout: Optional[float] = None
    node_budget: Optional[int] = None
    query: Optional[ConjunctiveQuery] = None
    max_repairs: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in COMPUTE_KINDS:
            raise UsageError(
                f"kind must be one of {COMPUTE_KINDS}, got {self.kind!r}"
            )
        if self.kind == "count" and self.query is None:
            raise UsageError("a count job needs a query")


@dataclass(frozen=True)
class ComputeResult:
    """The service's answer to one :class:`ComputeJob`.

    ``payload`` carries the kind-specific answer: for ``repair`` jobs
    the constructed repair as a serialized fact list plus the number of
    improvement rounds; for ``count`` jobs the entailing/total counts
    and the entailment fraction.  The journal-facing surface
    (``status`` in the journaled vocabulary, a truthy ``fingerprint``,
    ``to_dict()``) matches :class:`JobResult`, so compute results ride
    the same write-ahead journal and resume machinery.
    """

    job_id: str
    kind: str
    status: str
    semantics: str
    method: str
    payload: Dict[str, Any] = field(default_factory=dict)
    reason: str = ""
    cache_hit: bool = False
    attempts: int = 1
    duration: float = 0.0
    fingerprint: str = ""

    def verdict(self) -> Dict[str, Any]:
        """The correctness-relevant projection of this result."""
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "status": self.status,
            "semantics": self.semantics,
            "payload": self.payload,
        }

    def as_cached(self) -> "ComputeResult":
        """A copy marked as served from the result cache."""
        return replace(self, cache_hit=True, attempts=0, duration=0.0)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-ready rendering (one JSONL line per job)."""
        return {
            "job_id": self.job_id,
            "kind": self.kind,
            "status": self.status,
            "semantics": self.semantics,
            "method": self.method,
            "payload": self.payload,
            "reason": self.reason,
            "cache_hit": self.cache_hit,
            "attempts": self.attempts,
            "duration": self.duration,
            "fingerprint": self.fingerprint,
        }


@dataclass
class BatchReport:
    """Everything a batch run produced: results plus observability."""

    results: List[JobResult]
    metrics: Dict[str, Any] = field(default_factory=dict)
    cache_stats: Dict[str, Any] = field(default_factory=dict)

    @property
    def status_counts(self) -> Dict[str, int]:
        """``{status: count}`` over the batch (absent statuses omitted)."""
        counts: Dict[str, int] = {}
        for result in self.results:
            counts[result.status] = counts.get(result.status, 0) + 1
        return counts

    @property
    def cache_hits(self) -> int:
        """How many results were served from the cache (including
        within-batch deduplication)."""
        return sum(1 for result in self.results if result.cache_hit)

    @property
    def ok(self) -> bool:
        """Whether no job finished with status ``"error"``."""
        return all(result.status != "error" for result in self.results)

    def by_id(self, job_id: str) -> JobResult:
        """The result for ``job_id`` (first match)."""
        for result in self.results:
            if result.job_id == job_id:
                return result
        raise MissingEntryError(job_id)
