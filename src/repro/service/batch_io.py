"""Job-file IO for ``repro serve-batch``: JSON/CSV in, JSONL out.

A *job file* describes one batch: where the prioritizing instance comes
from and which candidates to check.  Two formats are supported.

JSON job file::

    {
      "problem": "problem.json",          // repro.io problem (path), or
      "csv": {                            //  build from CSV feeds via
        "schema": "R:2; 1 -> 2",          //  engine.csv_loader (earlier
        "relation": "R",                  //  sources outrank later ones)
        "sources": ["curated.csv", "scraped.csv"],
        "has_header": true
      },
      "defaults": {"semantics": "global", "timeout": 5.0, "budget": 100000},
      "jobs": [
        {"id": "j1", "candidate": [0, 2], "priority": 5},
        {"id": "j2", "candidate": [{"relation": "R", "values": ["1", "a"]}]}
      ]
    }

A candidate is either a list of **indices** into the problem's canonical
fact order (the sorted order of :func:`repro.io.instance_to_list`) or a
list of explicit fact objects.  Exactly one of ``"problem"`` (a path or
an inline :func:`repro.io.prioritizing_from_dict` document) and
``"csv"`` must be given, unless the caller supplies the prioritizing
instance directly.

CSV job file (one row per job; the problem must come from the caller,
e.g. the CLI's ``--problem``)::

    id,candidate,semantics,method,priority,timeout,budget
    j1,0;2,global,auto,5,,
    j2,1,global,auto,0,2.5,50000

``candidate`` is ``;``-separated indices.  Empty cells take defaults.

Results are written as JSONL — one :meth:`JobResult.to_dict` per line —
plus an optional metrics-summary JSON.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.fact import Fact
from repro.core.instance import Instance
from repro.core.priority import PrioritizingInstance
from repro.exceptions import ReproError
from repro.io import (
    atomic_write_text,
    instance_to_list,
    load_prioritizing_instance,
    parse_schema_spec,
    prioritizing_from_dict,
)
from repro.service.jobs import BatchReport, RepairJob

__all__ = [
    "load_problem_from_csv_spec",
    "candidate_from_spec",
    "load_batch_file",
    "write_results_jsonl",
    "write_metrics_json",
]


def load_problem_from_csv_spec(
    spec: Dict[str, Any], base_dir: Optional[Path] = None
) -> PrioritizingInstance:
    """Build a prioritizing instance from tagged CSV feeds.

    ``spec`` holds a CLI-style ``"schema"`` string, a ``"relation"``,
    and ordered ``"sources"`` (most trusted first); loading goes through
    :func:`repro.engine.csv_loader.load_tagged_sources`, so conflicting
    facts from differently-ranked feeds get the source-trust priority.
    """
    from repro.engine.csv_loader import load_tagged_sources
    from repro.engine.database import Database

    try:
        schema_spec = spec["schema"]
        relation = spec["relation"]
        sources = spec["sources"]
    except KeyError as exc:
        raise ReproError(f"csv problem spec is missing {exc}") from exc
    base = base_dir or Path(".")
    database = Database(parse_schema_spec(schema_spec))
    load_tagged_sources(
        database,
        relation,
        [base / source for source in sources],
        has_header=bool(spec.get("has_header", True)),
        delimiter=spec.get("delimiter", ","),
    )
    return database.seal(ccp=bool(spec.get("ccp", False)))


def _facts_in_canonical_order(prioritizing: PrioritizingInstance) -> List[Fact]:
    return [
        Fact(entry["relation"], tuple(entry["values"]))
        for entry in instance_to_list(prioritizing.instance)
    ]


def candidate_from_spec(
    prioritizing: PrioritizingInstance, spec: Sequence[Any]
) -> Instance:
    """Resolve a job's candidate spec against the problem instance.

    ``spec`` is a list of canonical fact indices, a list of
    ``{"relation", "values"}`` objects, or a mix.  The result is
    validated to be a subinstance (bad indices raise; out-of-instance
    facts are left to the checker, which reports them as a job error).
    """
    ordered = _facts_in_canonical_order(prioritizing)
    facts: List[Fact] = []
    for entry in spec:
        if isinstance(entry, bool):
            raise ReproError(f"bad candidate entry {entry!r}")
        if isinstance(entry, int):
            if not 0 <= entry < len(ordered):
                raise ReproError(
                    f"candidate index {entry} out of range "
                    f"0..{len(ordered) - 1}"
                )
            facts.append(ordered[entry])
        elif isinstance(entry, dict):
            try:
                facts.append(
                    Fact(entry["relation"], tuple(entry["values"]))
                )
            except (KeyError, TypeError) as exc:
                raise ReproError(
                    f"malformed candidate fact {entry!r}: {exc}"
                ) from exc
        else:
            raise ReproError(f"bad candidate entry {entry!r}")
    return Instance(prioritizing.instance.signature, facts)


def _job_from_fields(
    prioritizing: PrioritizingInstance,
    job_id: str,
    candidate_spec: Sequence[Any],
    defaults: Dict[str, Any],
    fields: Dict[str, Any],
) -> RepairJob:
    def pick(name: str, fallback: Any) -> Any:
        value = fields.get(name)
        if value is None:
            value = defaults.get(name, fallback)
        return value

    return RepairJob(
        job_id=job_id,
        prioritizing=prioritizing,
        candidate=candidate_from_spec(prioritizing, candidate_spec),
        semantics=pick("semantics", "global"),
        method=pick("method", "auto"),
        priority=int(pick("priority", 0)),
        timeout=pick("timeout", None),
        node_budget=pick("budget", None),
    )


def _load_json_batch(
    path: Path, prioritizing: Optional[PrioritizingInstance]
) -> Tuple[PrioritizingInstance, List[RepairJob]]:
    document = json.loads(path.read_text())
    if prioritizing is None:
        problem = document.get("problem")
        csv_spec = document.get("csv")
        if problem is not None and csv_spec is not None:
            raise ReproError(
                "job file declares both 'problem' and 'csv'; pick one"
            )
        if isinstance(problem, str):
            prioritizing = load_prioritizing_instance(path.parent / problem)
        elif isinstance(problem, dict):
            prioritizing = prioritizing_from_dict(problem)
        elif csv_spec is not None:
            prioritizing = load_problem_from_csv_spec(csv_spec, path.parent)
        else:
            raise ReproError(
                "job file needs a 'problem' or 'csv' section (or pass "
                "--problem)"
            )
    defaults = document.get("defaults", {})
    jobs = []
    for position, entry in enumerate(document.get("jobs", [])):
        if "candidate" not in entry:
            raise ReproError(f"job #{position} has no 'candidate'")
        jobs.append(
            _job_from_fields(
                prioritizing,
                str(entry.get("id", f"job-{position}")),
                entry["candidate"],
                defaults,
                entry,
            )
        )
    return prioritizing, jobs


_CSV_COLUMNS = (
    "id",
    "candidate",
    "semantics",
    "method",
    "priority",
    "timeout",
    "budget",
)


def _load_csv_batch(
    path: Path, prioritizing: PrioritizingInstance
) -> Tuple[PrioritizingInstance, List[RepairJob]]:
    jobs = []
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        missing = {"id", "candidate"} - set(reader.fieldnames or ())
        if missing:
            raise ReproError(
                f"{path}: job CSV is missing column(s) {sorted(missing)}"
            )
        for position, row in enumerate(reader):
            candidate_text = (row.get("candidate") or "").strip()
            candidate_spec = [
                int(token)
                for token in candidate_text.split(";")
                if token.strip()
            ]
            fields: Dict[str, Any] = {}
            if (row.get("semantics") or "").strip():
                fields["semantics"] = row["semantics"].strip()
            if (row.get("method") or "").strip():
                fields["method"] = row["method"].strip()
            if (row.get("priority") or "").strip():
                fields["priority"] = int(row["priority"])
            if (row.get("timeout") or "").strip():
                fields["timeout"] = float(row["timeout"])
            if (row.get("budget") or "").strip():
                fields["budget"] = int(row["budget"])
            jobs.append(
                _job_from_fields(
                    prioritizing,
                    (row.get("id") or f"job-{position}").strip(),
                    candidate_spec,
                    {},
                    fields,
                )
            )
    return prioritizing, jobs


def load_batch_file(
    path: Union[str, Path],
    prioritizing: Optional[PrioritizingInstance] = None,
) -> Tuple[PrioritizingInstance, List[RepairJob]]:
    """Load a JSON (``.json``) or CSV (anything else) job file.

    ``prioritizing`` overrides/provides the problem; CSV job files
    require it (they have no problem section of their own).
    """
    path = Path(path)
    if path.suffix.lower() == ".json":
        return _load_json_batch(path, prioritizing)
    if prioritizing is None:
        raise ReproError(
            "CSV job files carry no problem; pass --problem (or a "
            "prioritizing instance)"
        )
    return _load_csv_batch(path, prioritizing)


def write_results_jsonl(report: BatchReport, path: Union[str, Path]) -> None:
    """Write one JSON object per job result, in submission order.

    Crash-atomic: the file is either the previous contents or the full
    new batch, never a torn prefix (same-directory temp + rename).
    """
    lines = [json.dumps(result.to_dict()) for result in report.results]
    atomic_write_text(path, "\n".join(lines) + ("\n" if lines else ""))


def write_metrics_json(report: BatchReport, path: Union[str, Path]) -> None:
    """Write the batch's metrics snapshot (counters, histograms, cache
    and classification-cache statistics; events are included last).

    Crash-atomic, like :func:`write_results_jsonl`.
    """
    atomic_write_text(path, json.dumps(report.metrics, indent=2, default=str))
