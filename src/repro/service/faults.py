"""Deterministic fault injection (the chaos harness).

A :class:`FaultPlan` is a *seeded, reproducible* schedule of
infrastructure faults: for every ``(job_id, attempt)`` pair it decides —
by hashing, never by mutable RNG state — whether that execution attempt
suffers a transient error, a worker crash, or a slowdown.  Because the
decision is a pure function of ``(seed, job_id, attempt)``, the same
plan injects the same faults regardless of executor kind, worker count,
scheduling order, or how many times the batch is re-run; and because
faults stop after ``max_faults_per_job`` attempts, every job is
*eventually allowed to complete*, which is exactly the hypothesis of the
service's determinism contract (``tests/service/test_chaos.py``).

The plan plugs into the service through the existing seams:

* :class:`FaultyRunner` wraps any runner (default: the real degradation
  policy) and is picklable, so it rides into process-pool workers.  A
  scheduled *crash* really kills the worker process there
  (``os._exit``), exercising the supervised executor; under thread or
  serial execution — where there is no worker process to kill — it
  raises :class:`~repro.exceptions.WorkerCrashError` instead, and the
  retry loop plays the supervisor's role.
* :class:`SkewedClock` wraps the service's injectable ``clock`` seam
  with deterministic forward skew (monotonicity is preserved — verdicts
  must never depend on the clock, skewed or not).

Examples
--------
>>> plan = FaultPlan(seed=7, transient_rate=1.0, max_faults_per_job=2)
>>> plan.action("job-1", 1)
'transient'
>>> plan.action("job-1", 3)  # beyond max_faults_per_job: clean
'none'
>>> plan.action("job-1", 1) == plan.action("job-1", 1)  # reproducible
True
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Tuple

from repro.exceptions import TransientWorkerError, UsageError, WorkerCrashError
from repro.service.resilience import unit_interval

__all__ = [
    "FaultPlan",
    "FaultyRunner",
    "SkewedClock",
    "parse_fault_spec",
    "FleetFaultPlan",
    "parse_fleet_fault_spec",
]

#: The actions a plan can schedule for one execution attempt.
FAULT_ACTIONS = ("crash", "transient", "slow", "none")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, reproducible schedule of injected faults.

    Rates partition the unit interval: a hash of ``(seed, job_id,
    attempt)`` lands in the crash, transient, slow, or fault-free
    region.  ``crash_rate + transient_rate + slow_rate`` must not
    exceed 1.

    Attributes
    ----------
    seed:
        The schedule seed; two plans with equal fields inject byte-
        identical fault sequences.
    transient_rate / crash_rate / slow_rate:
        Probabilities (over the hash) of each fault kind per attempt.
    slow_seconds:
        How long an injected slowdown sleeps.
    max_faults_per_job:
        Attempts beyond this index are never faulted, guaranteeing that
        every job eventually runs clean (the determinism contract's
        hypothesis).  The retry/supervision budget must cover it.
    clock_skew:
        Maximum deterministic forward skew (seconds) added per clock
        reading by :meth:`clock` — exercises the breaker/duration paths'
        independence from clock quality.
    """

    seed: int = 0
    transient_rate: float = 0.0
    crash_rate: float = 0.0
    slow_rate: float = 0.0
    slow_seconds: float = 0.0
    max_faults_per_job: int = 2
    clock_skew: float = 0.0

    def __post_init__(self) -> None:
        for name in ("transient_rate", "crash_rate", "slow_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise UsageError(f"{name} must be in [0, 1], got {rate}")
        if self.transient_rate + self.crash_rate + self.slow_rate > 1.0 + 1e-9:
            raise UsageError("fault rates must sum to <= 1")
        if self.slow_seconds < 0 or self.clock_skew < 0:
            raise UsageError("slow_seconds/clock_skew must be >= 0")
        if self.max_faults_per_job < 0:
            raise UsageError("max_faults_per_job must be >= 0")

    def action(self, job_id: str, attempt: int) -> str:
        """The scheduled fault for the ``attempt``-th run of ``job_id``.

        1-based global attempt index (across retries and pool rebuilds);
        one of ``"crash"``, ``"transient"``, ``"slow"``, ``"none"``.
        """
        if attempt > self.max_faults_per_job:
            return "none"
        sample = unit_interval(self.seed, "fault", job_id, attempt)
        if sample < self.crash_rate:
            return "crash"
        if sample < self.crash_rate + self.transient_rate:
            return "transient"
        if sample < self.crash_rate + self.transient_rate + self.slow_rate:
            return "slow"
        return "none"

    def faults_for(self, job_id: str) -> tuple:
        """The full fault prefix scheduled for ``job_id`` (for asserts)."""
        return tuple(
            self.action(job_id, attempt)
            for attempt in range(1, self.max_faults_per_job + 1)
        )

    def clock(self, base: Callable[[], float] = time.monotonic) -> "SkewedClock":
        """A deterministically skewed clock driven by this plan's seed."""
        return SkewedClock(base=base, seed=self.seed, max_skew=self.clock_skew)


class SkewedClock:
    """A monotonic clock with deterministic forward skew.

    Each reading adds ``unit_interval(seed, tick) * max_skew`` to an
    accumulated offset, so time runs fast in a reproducible pattern but
    never backwards — matching what the RL006 invariant already
    guarantees about real monotonic clocks.
    """

    def __init__(
        self,
        base: Callable[[], float] = time.monotonic,
        seed: int = 0,
        max_skew: float = 0.0,
    ) -> None:
        if max_skew < 0:
            raise UsageError(f"max_skew must be >= 0, got {max_skew}")
        self._base = base
        self._seed = seed
        self._max_skew = max_skew
        self._offset = 0.0
        self._ticks = 0

    def __call__(self) -> float:
        self._ticks += 1
        self._offset += self._max_skew * unit_interval(
            self._seed, "clock", self._ticks
        )
        return self._base() + self._offset


@dataclass
class FaultyRunner:
    """A picklable runner wrapper that executes a :class:`FaultPlan`.

    Wraps ``inner`` (default: the real degradation policy) and consults
    the plan before every attempt.  Crashes are real where possible:
    when the runner finds itself in a different process than the one
    that built it (i.e. inside a process-pool worker) it calls
    ``os._exit``, killing the worker and breaking the pool; in-process
    execution raises :class:`WorkerCrashError` instead.

    The optional ``sleep`` seam exists so unit tests can count injected
    slowdowns without waiting for them; it must stay picklable for
    process-pool use (the default ``time.sleep`` is).
    """

    plan: FaultPlan
    inner: Optional[Callable] = None
    sleep: Callable[[float], None] = time.sleep
    origin_pid: int = field(default_factory=os.getpid)

    def __call__(self, job, node_budget, timeout, attempt: int = 1):
        action = self.plan.action(job.job_id, attempt)
        if action == "crash":
            if os.getpid() != self.origin_pid:
                # A real worker process: die for real. The supervised
                # executor must absorb the broken pool.
                os._exit(17)
            raise WorkerCrashError(
                f"injected worker crash (job {job.job_id}, attempt {attempt})"
            )
        if action == "transient":
            raise TransientWorkerError(
                f"injected transient fault (job {job.job_id}, "
                f"attempt {attempt})"
            )
        if action == "slow":
            self.sleep(self.plan.slow_seconds)
        if self.inner is not None:
            return self.inner(job, node_budget, timeout)
        from repro.service.policy import execute_check

        return execute_check(
            job.prioritizing,
            job.candidate,
            semantics=job.semantics,
            method=job.method,
            node_budget=node_budget,
            timeout=timeout,
        )


@dataclass(frozen=True)
class FleetFaultPlan:
    """A deterministic schedule of fleet-level (process) faults.

    Where :class:`FaultPlan` injects faults *inside* a worker's runner,
    this plan drives the supervisor's drills against whole worker
    processes: SIGKILL a named worker at a fixed dispatch ordinal
    (mid-load crash), or wedge its heartbeat for a window of beats so
    the supervisor's liveness escalation fires.  Torn-store faults need
    no schedule — the chaos tests corrupt the sqlite file directly and
    assert heal-on-open.

    Everything is keyed by worker *name* (``"w0"``, ``"w1"``, ...) and
    fixed ordinals, so a drill replays identically run after run.

    Attributes
    ----------
    kills:
        ``worker name -> dispatch ordinal``: the worker is SIGKILLed
        immediately after the supervisor forwards its n-th job (1-based)
        to it.
    wedges:
        ``worker name -> (first beat, beat count)``: heartbeats in
        ``[first, first + count)`` (1-based supervisor beats) go
        unanswered for that worker, as if it were wedged in C code.
    """

    kills: Mapping[str, int] = field(default_factory=dict)
    wedges: Mapping[str, Tuple[int, int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for worker, ordinal in self.kills.items():
            if ordinal < 1:
                raise UsageError(
                    f"kill ordinal for {worker!r} must be >= 1, got {ordinal}"
                )
        for worker, (first, count) in self.wedges.items():
            if first < 1 or count < 1:
                raise UsageError(
                    f"wedge window for {worker!r} must start at beat >= 1 "
                    f"with count >= 1, got {first}x{count}"
                )

    def should_kill(self, worker: str, dispatch: int) -> bool:
        """Whether ``worker`` dies right after its ``dispatch``-th job."""
        return self.kills.get(worker) == dispatch

    def wedged(self, worker: str, beat: int) -> bool:
        """Whether ``worker`` ignores the ``beat``-th heartbeat."""
        window = self.wedges.get(worker)
        if window is None:
            return False
        first, count = window
        return first <= beat < first + count


def parse_fleet_fault_spec(spec: str) -> FleetFaultPlan:
    """Parse the CLI fleet-chaos spec into a :class:`FleetFaultPlan`.

    Comma-separated tokens: ``kill=<worker>@<dispatch>`` (SIGKILL worker
    ``w<worker>`` after its n-th forwarded job) and
    ``wedge=<worker>@<beat>x<count>`` (that worker misses ``count``
    heartbeats starting at supervisor beat ``beat``), e.g.
    ``"kill=1@5,wedge=2@3x4"``.  Workers are named by index.
    """
    kills = {}
    wedges = {}
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        name, separator, text = token.partition("=")
        name = name.strip()
        if not separator or name not in ("kill", "wedge"):
            raise UsageError(
                f"bad fleet chaos token {token!r}; expected "
                "kill=<worker>@<dispatch> or wedge=<worker>@<beat>x<count>"
            )
        worker_text, at, ordinal_text = text.strip().partition("@")
        if not at:
            raise UsageError(
                f"bad fleet chaos token {token!r}: missing '@<ordinal>'"
            )
        try:
            worker = f"w{int(worker_text)}"
            if name == "kill":
                kills[worker] = int(ordinal_text)
            else:
                first_text, x, count_text = ordinal_text.partition("x")
                wedges[worker] = (
                    int(first_text),
                    int(count_text) if x else 1,
                )
        except ValueError as exc:
            raise UsageError(
                f"bad fleet chaos value in {token!r}: {exc}"
            ) from exc
    return FleetFaultPlan(kills=kills, wedges=wedges)


#: ``parse_fault_spec`` field spellings -> FaultPlan constructor fields.
_SPEC_FIELDS = {
    "seed": ("seed", int),
    "transient": ("transient_rate", float),
    "crash": ("crash_rate", float),
    "slow": ("slow_rate", float),
    "slow-ms": ("slow_seconds", lambda text: float(text) / 1000.0),
    "max-faults": ("max_faults_per_job", int),
    "skew-ms": ("clock_skew", lambda text: float(text) / 1000.0),
}


def parse_fault_spec(spec: str) -> FaultPlan:
    """Parse the CLI chaos spec into a :class:`FaultPlan`.

    Comma-separated ``key=value`` pairs, e.g.
    ``"seed=3,transient=0.4,crash=0.1,slow=0.2,slow-ms=20,max-faults=2"``.
    Unknown keys raise :class:`~repro.exceptions.UsageError`.
    """
    fields = {}
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        name, separator, text = token.partition("=")
        name = name.strip()
        if not separator or name not in _SPEC_FIELDS:
            known = ", ".join(sorted(_SPEC_FIELDS))
            raise UsageError(
                f"bad chaos spec token {token!r}; expected key=value with "
                f"key in: {known}"
            )
        target, convert = _SPEC_FIELDS[name]
        try:
            fields[target] = convert(text.strip())
        except ValueError as exc:
            raise UsageError(
                f"bad chaos spec value in {token!r}: {exc}"
            ) from exc
    return FaultPlan(**fields)
