"""The persistent content-addressed result store (sqlite tier).

The LRU result cache dies with its process; the motivating fleet
deployment restarts workers routinely (crashes, rolling restarts,
breaker-driven kills), and every restart would otherwise re-pay every
hard-side search the worker had already answered.  :class:`SqliteStore`
is the durable tier *under* the LRU: results keyed by the same
backend-invariant canonical request fingerprints
(:mod:`repro.service.fingerprint`), stored in one sqlite file that any
number of worker processes share.

Durability discipline (mirrors the PR 4 journal):

* **WAL mode** — readers never block the single writer, concurrent
  worker processes interleave through sqlite's own locking (with a
  busy timeout), and a torn tail after a hard kill is healed by
  sqlite's WAL recovery on the next open.
* **Per-row checksums** — every payload row carries its own sha256;
  a row that fails verification on read (bit rot, a writer killed
  mid-page before WAL, manual tampering) is *skipped and dropped*,
  never returned.
* **Heal on open** — a store file sqlite refuses to open (a torn or
  garbage header) is quarantined by an atomic rename to
  ``<name>.corrupt`` and a fresh store is created in its place: a
  damaged cache must cost recomputation, never availability.
* **Never on the request path's critical failure edge** — like the
  journal sink, store errors are absorbed into counters
  (``store.errors``); a full disk or a locked database degrades the
  cache, not the verdicts.

Only deterministic statuses (``ok``, ``degraded`` — the cacheable set)
are stored, so a replayed entry is always safe to serve.

Examples
--------
>>> import tempfile, pathlib
>>> path = pathlib.Path(tempfile.mkdtemp()) / "results.sqlite"
>>> store = SqliteStore(path)
>>> store.put("fp-1", {"status": "ok", "is_optimal": True})
True
>>> store.get("fp-1")["is_optimal"]
True
>>> store.close()
>>> reopened = SqliteStore(path)       # survives the process
>>> reopened.get("fp-1")["status"]
'ok'
>>> reopened.close()
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import sqlite3
import threading
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.exceptions import UsageError

__all__ = ["STORED_STATUSES", "SqliteStore"]

#: Statuses durable enough to persist: deterministic for fixed inputs
#: and budget (the same set the LRU cache and the journal accept).
STORED_STATUSES = frozenset({"ok", "degraded"})

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    fingerprint TEXT PRIMARY KEY,
    checksum    TEXT NOT NULL,
    payload     TEXT NOT NULL
)
"""


def _checksum(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class SqliteStore:
    """A durable fingerprint → result-dict store shared across processes.

    Thread-safe (one connection guarded by a lock — the daemon's worker
    threads all funnel through it) and multi-process safe (WAL mode
    plus a busy timeout; each process opens its own connection to the
    same file).  ``get`` returns a *copy* of the stored dict or None;
    ``put`` returns whether the row was durably written.

    Parameters
    ----------
    path:
        The sqlite file; parent directories must exist.
    busy_timeout:
        Seconds a statement waits on another process's write lock
        before giving up (the failed operation is counted, not raised).
    """

    def __init__(
        self, path: Union[str, Path], busy_timeout: float = 5.0
    ) -> None:
        if busy_timeout < 0:
            raise UsageError(
                f"busy_timeout must be >= 0, got {busy_timeout}"
            )
        self.path = Path(path)
        self._busy_timeout = busy_timeout
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._puts = 0
        self._errors = 0
        self._dropped = 0
        self._healed = False
        self._connection = self._open()

    # -- lifecycle ---------------------------------------------------------------------

    def _open(self) -> sqlite3.Connection:
        """Open (and if needed heal) the store file.

        A file sqlite cannot treat as a database — a torn tail that
        corrupted the header, a half-written copy, garbage — is
        quarantined to ``<name>.corrupt`` with an atomic rename and
        replaced by a fresh store.  WAL recovery handles the benign
        torn tails (a killed writer) transparently.
        """
        try:
            return self._connect()
        except sqlite3.DatabaseError:
            return self._heal()

    def _heal(self) -> sqlite3.Connection:
        """Quarantine the unreadable store file and start fresh.

        Quarantine, don't delete: the operator may want the bytes.
        Concurrent healers (several fleet workers opening the same torn
        store) must not race on the rename — a loser renaming *after*
        the winner already created a fresh store would quarantine the
        healthy file and clobber the evidence.  An exclusive lock file
        serializes healers; the holder re-probes before renaming (a
        previous healer may have fixed the store already), and waiters
        whose wait exceeds the busy timeout break a stale lock (a
        healer SIGKILLed mid-heal) rather than spin forever.
        """
        lock = self.path.with_name(self.path.name + ".heal-lock")
        deadline = time.monotonic() + max(self._busy_timeout, 1.0)
        while True:
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                break
            except FileExistsError:
                # Another healer holds the lock: give it a beat, then
                # see whether the store is healthy now.
                time.sleep(0.05)
                try:
                    return self._connect()
                except sqlite3.DatabaseError:
                    if time.monotonic() >= deadline:
                        with contextlib.suppress(FileNotFoundError):
                            os.unlink(lock)
        try:
            # Holding the lock.  Re-probe first: the previous holder
            # may have quarantined and rebuilt while we waited.
            try:
                return self._connect()
            except sqlite3.DatabaseError:
                pass
            try:
                os.replace(
                    self.path,
                    self.path.with_name(self.path.name + ".corrupt"),
                )
            except FileNotFoundError:
                pass
            self._healed = True
            return self._connect()
        finally:
            os.close(fd)
            with contextlib.suppress(FileNotFoundError):
                os.unlink(lock)

    def _connect(self) -> sqlite3.Connection:
        connection = sqlite3.connect(
            self.path,
            timeout=self._busy_timeout,
            check_same_thread=False,
            isolation_level=None,  # autocommit: one statement, one txn
        )
        try:
            connection.execute("PRAGMA journal_mode=WAL")
            connection.execute("PRAGMA synchronous=NORMAL")
            connection.execute(_SCHEMA)
        except sqlite3.DatabaseError:
            connection.close()
            raise
        return connection

    @property
    def healed(self) -> bool:
        """Whether opening quarantined a corrupt store file."""
        return self._healed

    def close(self) -> None:
        """Close the connection (idempotent)."""
        with self._lock:
            if self._connection is not None:
                self._connection.close()
                self._connection = None

    def __enter__(self) -> "SqliteStore":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    # -- the store surface -------------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored result dict for ``key``, or None.

        A row whose payload fails its checksum (or no longer parses) is
        dropped and counted under ``dropped`` — corruption must never
        surface as a served result.
        """
        with self._lock:
            if self._connection is None:
                raise UsageError("store is closed")
            try:
                row = self._connection.execute(
                    "SELECT checksum, payload FROM results "
                    "WHERE fingerprint = ?",
                    (key,),
                ).fetchone()
            except sqlite3.Error:
                self._errors += 1
                return None
            if row is None:
                self._misses += 1
                return None
            checksum, payload = row
            if _checksum(payload) != checksum:
                self._drop(key)
                self._misses += 1
                return None
            try:
                document = json.loads(payload)
            except json.JSONDecodeError:
                self._drop(key)
                self._misses += 1
                return None
            if (
                not isinstance(document, dict)
                or document.get("status") not in STORED_STATUSES
            ):
                self._drop(key)
                self._misses += 1
                return None
            self._hits += 1
            return document

    def _drop(self, key: str) -> None:
        """Delete one corrupt row (lock held; errors absorbed)."""
        self._dropped += 1
        try:
            self._connection.execute(
                "DELETE FROM results WHERE fingerprint = ?", (key,)
            )
        except sqlite3.Error:
            self._errors += 1

    def put(self, key: str, result: Dict[str, Any]) -> bool:
        """Durably store one result dict; returns whether it landed.

        Non-deterministic statuses are refused (returns False) — a
        persisted ``timeout`` would outlive the slow machine that
        produced it.  Write errors (locked database, full disk) are
        absorbed and counted, mirroring the journal sink's contract.
        """
        if result.get("status") not in STORED_STATUSES:
            return False
        payload = json.dumps(result, sort_keys=True)
        with self._lock:
            if self._connection is None:
                raise UsageError("store is closed")
            try:
                self._connection.execute(
                    "INSERT OR REPLACE INTO results "
                    "(fingerprint, checksum, payload) VALUES (?, ?, ?)",
                    (key, _checksum(payload), payload),
                )
            except sqlite3.Error:
                self._errors += 1
                return False
            self._puts += 1
            return True

    def __len__(self) -> int:
        with self._lock:
            if self._connection is None:
                return 0
            try:
                (count,) = self._connection.execute(
                    "SELECT COUNT(*) FROM results"
                ).fetchone()
            except sqlite3.Error:
                return 0
            return int(count)

    def stats(self) -> Dict[str, Any]:
        """A snapshot of size and hit/miss/put/error/heal counts."""
        size = len(self)
        with self._lock:
            lookups = self._hits + self._misses
            return {
                "path": str(self.path),
                "size": size,
                "hits": self._hits,
                "misses": self._misses,
                "puts": self._puts,
                "errors": self._errors,
                "dropped": self._dropped,
                "healed": self._healed,
                "hit_rate": self._hits / lookups if lookups else 0.0,
            }

    def __repr__(self) -> str:
        return f"SqliteStore({self.path})"
