"""`RepairService`: parallel, cached, observable batch repair checking.

The front-end the rest of the repo talks to.  A batch of
:class:`~repro.service.jobs.RepairJob` goes in; a
:class:`~repro.service.jobs.BatchReport` comes out, with one
:class:`~repro.service.jobs.JobResult` per job **in submission order**.

Pipeline per batch:

1. **Schedule** — jobs are ordered by descending ``priority`` (ties by
   submission order).
2. **Replay / cache** — each job's canonical fingerprint is looked up
   first in the caller-supplied ``completed`` map (journal replay on a
   resumed run) and then in the LRU result cache; hits (including
   duplicates *within* the batch) never reach a worker.
3. **Execute** — misses run on a ``concurrent.futures`` pool
   (``"thread"``, ``"process"``, or in-line ``"serial"``), through the
   degradation policy of :mod:`repro.service.policy`: tractable
   questions use the paper's polynomial checkers, coNP-hard questions
   use the budgeted improvement search and report ``degraded`` /
   ``timeout`` instead of hanging.  The pool is **supervised**: a dead
   worker (``BrokenProcessPool``) triggers a bounded number of pool
   rebuilds that re-dispatch the lost jobs; when the resurrection
   budget runs out the lost jobs become ``status="error"`` results —
   never an exception out of ``run_batch``.
4. **Retry** — a worker raising
   :class:`~repro.exceptions.TransientWorkerError` (or ``OSError``) is
   retried with capped exponential backoff under deterministic seeded
   full jitter (:class:`~repro.service.resilience.RetryPolicy`), up to
   ``ServiceConfig.max_retries`` times; permanent failures become
   ``status="error"`` results.  A per-problem
   :class:`~repro.service.resilience.CircuitBreaker` fast-fails jobs of
   a problem whose workers keep dying instead of burning the full
   retry budget on every remaining job.
5. **Observe** — counters, per-algorithm latency histograms, and a
   structured event log accumulate in a
   :class:`~repro.service.metrics.MetricsRegistry`; every freshly
   computed result is also offered to the optional ``result_sink``
   (the write-ahead journal of :mod:`repro.service.journal`).

Determinism contract: for any fixed batch and ``node_budget``, the
``verdict()`` of every result is identical across worker counts,
executor kinds, cache temperatures, and any injected fault schedule
that eventually lets a job complete (property-tested in
``tests/properties/test_service_properties.py`` and
``tests/service/test_chaos.py``).
"""

from __future__ import annotations

import functools
import pickle
import time
from concurrent.futures import (
    BrokenExecutor,
    CancelledError,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    TimeoutError as FutureTimeoutError,
)
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.backend import normalize_backend
from repro.core.classification import classification_cache_info
from repro.core.instance import Instance
from repro.core.priority import PrioritizingInstance
from repro.exceptions import TransientWorkerError, UsageError
from repro.service.cache import LRUCache
from repro.service.fingerprint import (
    fingerprint_check_request,
    fingerprint_compute_request,
    fingerprint_prioritizing,
)
from repro.service.jobs import (
    BatchReport,
    ComputeJob,
    ComputeResult,
    JobResult,
    RepairJob,
)
from repro.service.metrics import MetricsRegistry
from repro.service.policy import (
    ComputeOutcome,
    Outcome,
    execute_check,
    execute_count,
    execute_repair,
)
from repro.service.resilience import (
    CircuitBreaker,
    PoolSupervisor,
    RetryPolicy,
    call_runner,
    runner_accepts_attempt,
)

__all__ = ["ServiceConfig", "RepairService"]

#: Exceptions the retry loop treats as transient worker failures.
TRANSIENT_EXCEPTIONS = (TransientWorkerError, OSError)

#: Statuses whose outcomes are deterministic and therefore cacheable.
#: ``timeout`` depends on the wall clock and ``error`` may reflect a
#: worker failure, so neither is ever cached.
_CACHEABLE_STATUSES = frozenset({"ok", "degraded"})

#: Counters pre-registered at service construction so every metrics
#: snapshot (and ``write_metrics_json`` output) reports them, zero or
#: not — dashboards and the serve-batch summary line rely on presence.
_WELL_KNOWN_COUNTERS = (
    "breaker.open",
    "breaker.close",
    "breaker.fast_fails",
    "pool.restarts",
    "pool.lost_jobs",
    "journal.replayed",
    "journal.appended",
    "jobs.cancelled",
)

#: A per-job execution unit in the pool path:
#: (submission position, job, cache key, prior dispatch count).
_PoolItem = Tuple[int, RepairJob, str, int]


def _default_runner(
    job: RepairJob, node_budget, timeout, *, core_backend=None
) -> Outcome:
    """Execute one job through the degradation policy (worker side).

    ``core_backend`` is keyword-only so the runner keeps the 3-positional
    contract (``runner_accepts_attempt`` introspects positional arity);
    a :func:`functools.partial` of this function binds it when the
    service config pins a backend, and stays picklable for the process
    executor.
    """
    return execute_check(
        job.prioritizing,
        job.candidate,
        semantics=job.semantics,
        method=job.method,
        node_budget=node_budget,
        timeout=timeout,
        core_backend=core_backend,
    )


def _default_compute_runner(
    job: ComputeJob, node_budget, timeout
) -> ComputeOutcome:
    """Execute one compute job through the degradation policy."""
    if job.kind == "count":
        return execute_count(
            job.query,
            job.prioritizing,
            semantics=job.semantics,
            max_repairs=job.max_repairs,
        )
    return execute_repair(
        job.prioritizing,
        semantics=job.semantics,
        seed=job.seed,
        node_budget=node_budget,
        timeout=timeout,
    )


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs for a :class:`RepairService`.

    Attributes
    ----------
    workers:
        Pool size for ``"thread"`` / ``"process"`` executors.
    executor:
        ``"serial"`` (run in the calling thread; the reference
        behaviour), ``"thread"`` (default; shares the in-process caches,
        overlaps well with cache hits), or ``"process"`` (true
        parallelism for CPU-bound batches; jobs must be picklable and
        non-picklable runners fall back to the default policy).
    cache_size:
        Result-cache capacity (0 disables result caching).
    default_timeout:
        Per-job wall-clock seconds when the job does not set one
        (None = no timeout).
    default_node_budget:
        Improvement-search node budget for coNP-hard jobs when the job
        does not set one (None = unbounded, not recommended for a
        service).
    max_retries:
        How many times a transiently-failing job is re-attempted.
    backoff_base / backoff_cap:
        Exponential backoff: the ``k``-th failed attempt sleeps a
        seeded full-jitter fraction of
        ``min(backoff_base * 2**(k-1), backoff_cap)`` seconds; there is
        no sleep after the final failed attempt.
    backoff_seed:
        Seed for the deterministic jitter (the delay for a given job
        and attempt is a pure function of this seed).
    max_pool_restarts:
        How many times a broken worker pool may be rebuilt per batch
        before the jobs lost to it are reported as ``error`` results.
    breaker_threshold:
        Consecutive worker-level failures on one problem that open its
        circuit (further jobs fast-fail as ``error`` without running);
        0 disables the breaker.  Note that with the breaker enabled an
        ``error``-storming problem may fast-fail jobs that a breaker-
        free run would have executed — the breaker trades that sliver
        of determinism for not burning the retry budget on every job of
        a dead problem.  Deterministic job errors (malformed input)
        never trip it.
    breaker_reset_seconds:
        How long an open circuit waits before admitting one half-open
        probe.
    core_backend:
        Core execution substrate for check jobs (``object`` | ``bitset``
        | ``auto``; see :mod:`repro.core.backend`).  None (the default)
        defers to the ``REPRO_CORE_BACKEND`` environment variable —
        which worker threads and spawned process pools inherit — and
        then to the auto size threshold.  Backends decide identically,
        so this knob never enters job fingerprints: cached results are
        shared across backends.
    """

    workers: int = 1
    executor: str = "thread"
    cache_size: int = 2048
    default_timeout: Optional[float] = None
    default_node_budget: Optional[int] = 100_000
    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 1.0
    backoff_seed: int = 0
    max_pool_restarts: int = 2
    breaker_threshold: int = 5
    breaker_reset_seconds: float = 30.0
    core_backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.core_backend is not None:
            # Validate (and canonicalize) eagerly so a typo fails at
            # service construction, not inside a worker.
            object.__setattr__(
                self, "core_backend", normalize_backend(self.core_backend)
            )
        if self.workers < 1:
            raise UsageError(f"workers must be >= 1, got {self.workers}")
        if self.executor not in ("serial", "thread", "process"):
            raise UsageError(
                f"executor must be serial/thread/process, got {self.executor!r}"
            )
        if self.max_retries < 0:
            raise UsageError("max_retries must be >= 0")
        if self.max_pool_restarts < 0:
            raise UsageError("max_pool_restarts must be >= 0")
        if self.breaker_threshold < 0:
            raise UsageError("breaker_threshold must be >= 0")
        if self.breaker_reset_seconds < 0:
            raise UsageError("breaker_reset_seconds must be >= 0")


class RepairService:
    """A batch repair-checking service over the paper's checkers.

    Parameters
    ----------
    config:
        A :class:`ServiceConfig` (defaults are sensible for tests and
        small batches).
    metrics / cache:
        Injectable for sharing across services or asserting in tests.
    runner:
        The per-job execution function ``(job, node_budget, timeout) ->
        Outcome`` — fault-aware runners may take a 4th ``attempt``
        argument (the global 1-based attempt index, stable across
        retries and pool rebuilds); tests and the chaos harness inject
        flaky runners to exercise the retry and supervision paths.  The
        ``"process"`` executor ships the runner to workers when it is
        picklable and falls back to the default policy otherwise.
    sleep:
        The backoff sleep function (injectable so retry tests run
        instantly).
    clock:
        The monotonic clock used for durations and the circuit breaker
        (injectable for deterministic breaker tests and the chaos
        harness's skewed clocks).
    result_sink:
        Called with every freshly *computed* :class:`JobResult` (cache
        hits and journal replays excluded); the write-ahead journal
        plugs in here.  A truthy return value counts as a durable
        append (``journal.appended``); ``OSError`` from the sink is
        absorbed into ``journal.errors`` rather than failing the batch.
    store:
        An optional persistent result store (the sqlite tier of
        :mod:`repro.service.store`) consulted *under* the LRU cache: an
        LRU miss falls through to ``store.get(key)``, and a store hit
        warms the LRU and is served without recomputation
        (``store.hits``).  Freshly computed deterministic results are
        written through (``store.appended``).  Because store keys are
        the same backend-invariant canonical fingerprints as cache
        keys, a store file shared by many service processes — the
        fleet's workers — shares every answer across them and across
        restarts.  Store failures degrade the cache, never a verdict.
    cancel:
        An optional ``threading.Event``; once set, jobs that have not
        started yet finish as ``error`` results (``jobs.cancelled``)
        instead of executing, letting a signal handler drain a batch
        promptly while keeping the one-result-per-job contract.

    Examples
    --------
    >>> from repro.core import Fact, PriorityRelation, Schema
    >>> from repro.core.priority import PrioritizingInstance
    >>> from repro.service.jobs import RepairJob
    >>> schema = Schema.single_relation(["1 -> 2"], arity=2)
    >>> f, g = Fact("R", (1, "a")), Fact("R", (1, "b"))
    >>> pri = PrioritizingInstance(
    ...     schema, schema.instance([f, g]), PriorityRelation([(f, g)])
    ... )
    >>> service = RepairService(ServiceConfig(executor="serial"))
    >>> report = service.run_batch(
    ...     [RepairJob("j1", pri, schema.instance([f]))]
    ... )
    >>> report.results[0].status, report.results[0].is_optimal
    ('ok', True)
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        cache: Optional[LRUCache] = None,
        runner: Optional[Callable[..., Outcome]] = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
        result_sink: Optional[Callable[[JobResult], object]] = None,
        cancel: Optional[object] = None,
        compute_runner: Optional[Callable[..., ComputeOutcome]] = None,
        store: Optional[object] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.metrics = metrics or MetricsRegistry()
        self.cache = cache if cache is not None else LRUCache(
            self.config.cache_size
        )
        default_runner: Callable[..., Outcome] = _default_runner
        if self.config.core_backend is not None:
            # A partial of the module-level function: still 3 positional
            # params for runner_accepts_attempt, still picklable for the
            # process executor, so the pinned backend reaches workers.
            default_runner = functools.partial(
                _default_runner, core_backend=self.config.core_backend
            )
        self._runner = runner or default_runner
        self._compute_runner = compute_runner or _default_compute_runner
        self._runner_takes_attempt = runner_accepts_attempt(self._runner)
        self._sleep = sleep
        self._clock = clock
        self._result_sink = result_sink
        self._cancel = cancel
        self._retry = RetryPolicy(
            self.config.backoff_base,
            self.config.backoff_cap,
            self.config.backoff_seed,
        )
        self._breaker = CircuitBreaker(
            self.config.breaker_threshold,
            self.config.breaker_reset_seconds,
            clock=clock,
            metrics=self.metrics,
        )
        self.store = store
        for name in _WELL_KNOWN_COUNTERS:
            self.metrics.counter(name)
        if store is not None:
            for name in ("store.hits", "store.misses", "store.appended"):
                self.metrics.counter(name)

    # -- single-job convenience ----------------------------------------------------

    def check(
        self,
        prioritizing: PrioritizingInstance,
        candidate: Instance,
        semantics: str = "global",
        **job_fields,
    ) -> JobResult:
        """Check one candidate through the full service pipeline."""
        job = RepairJob(
            job_id="single",
            prioritizing=prioritizing,
            candidate=candidate,
            semantics=semantics,
            **job_fields,
        )
        return self.run_batch([job]).results[0]

    # -- single-job reentrant submission -------------------------------------------

    def run_job(self, job: RepairJob) -> JobResult:
        """Run one job through the cache → breaker → retry pipeline.

        The single-request front door the async daemon drives: unlike
        :meth:`run_batch` it holds no batch-wide state, so any number of
        threads may call it concurrently against one warm service — the
        result cache, circuit breaker, retry policy, metrics registry,
        and journal sink are all individually thread-safe.  Each call
        lands in the same ``jobs.*`` counters and ``latency.*``
        histograms as a batch job, and freshly computed deterministic
        results feed the same cache and result sink.

        Two concurrent calls asking the same question may both compute
        it (there is no cross-request duplicate barrier — that is batch
        bookkeeping); both produce the identical verdict and the second
        write to the cache is a no-op refresh.
        """
        key = self._cache_key(job)
        cached = self.cache.get(key)
        if cached is not None:
            self.metrics.counter("cache.hits").increment()
            result = self._reissue(cached, job, key)
        else:
            self.metrics.counter("cache.misses").increment()
            stored = self._store_lookup(key)
            if stored is not None:
                result = self._reissue(stored, job, key)
            else:
                result = self._execute_one(job, key)
        self.metrics.counter(f"jobs.{result.status}").increment()
        return result

    def run_compute(self, job: ComputeJob) -> ComputeResult:
        """Run one compute job through the full service pipeline.

        The compute analogue of :meth:`run_job`: same cache (compute
        fingerprints live in a disjoint namespace from check
        fingerprints), same circuit breaker and retry policy, same
        result sink and metrics — so a daemon can serve ``repair`` and
        ``count`` requests with the exact operational guarantees of
        ``check`` requests.  Reentrant for the same reasons
        :meth:`run_job` is.
        """
        key = self._compute_cache_key(job)
        cached = self.cache.get(key)
        if cached is not None:
            self.metrics.counter("cache.hits").increment()
            result = self._reissue_compute(cached, job, key)
        else:
            self.metrics.counter("cache.misses").increment()
            stored = self._store_lookup(key)
            if stored is not None and "kind" in stored:
                result = self._reissue_compute(stored, job, key)
            else:
                result = self._execute_compute(job, key)
        self.metrics.counter(f"jobs.{result.status}").increment()
        return result

    # -- batch execution ------------------------------------------------------------

    def run_batch(
        self,
        jobs: Sequence[RepairJob],
        completed: Optional[Mapping[str, Dict]] = None,
    ) -> BatchReport:
        """Run a batch; results come back in submission order.

        ``completed`` maps request fingerprints to already-known result
        dicts (a replayed journal): matching jobs are served without
        recomputation and counted under ``journal.replayed``.
        """
        batch_start = self._clock()
        ordered = sorted(
            enumerate(jobs), key=lambda pair: (-pair[1].priority, pair[0])
        )
        results: Dict[int, JobResult] = {}
        pending: List[Tuple[int, RepairJob, str]] = []
        first_by_key: Dict[str, int] = {}
        duplicates: List[Tuple[int, RepairJob, str]] = []

        for position, job in ordered:
            key = self._cache_key(job)
            cached = self.cache.get(key)
            if cached is not None:
                self.metrics.counter("cache.hits").increment()
                results[position] = self._reissue(cached, job, key)
                continue
            if completed is not None:
                record = completed.get(key)
                if (
                    record is not None
                    and record.get("status") in _CACHEABLE_STATUSES
                ):
                    # A resumed run: the journal already answered this
                    # question.  Warm the cache so in-batch duplicates
                    # (and later batches) count as plain cache hits.
                    self.metrics.counter("journal.replayed").increment()
                    self.cache.put(key, dict(record))
                    results[position] = self._reissue(record, job, key)
                    continue
            if key in first_by_key:
                # An in-batch duplicate: resolved after the first
                # occurrence executes, without spending a worker on it.
                duplicates.append((position, job, key))
            else:
                self.metrics.counter("cache.misses").increment()
                stored = self._store_lookup(key)
                if stored is not None:
                    # The persistent tier already answered this (this
                    # process, an earlier incarnation, or a fleet peer);
                    # the lookup warmed the LRU for in-batch duplicates.
                    results[position] = self._reissue(stored, job, key)
                    continue
                first_by_key[key] = position
                pending.append((position, job, key))

        if pending:
            if self.config.executor == "serial" or self.config.workers == 1:
                self._run_serial(pending, results)
            else:
                self._run_pool(pending, results)

        # Within-batch duplicates reuse the first occurrence's result
        # (a cache hit in every sense that matters: no work was done).
        for position, job, key in duplicates:
            cached = self.cache.get(key)
            if cached is not None:
                self.metrics.counter("cache.hits").increment()
                results[position] = self._reissue(cached, job, key)
            else:
                first = results[first_by_key[key]]
                results[position] = self._reissue(
                    first.to_dict(), job, key, from_cache=first.status
                    in _CACHEABLE_STATUSES
                )

        ordered_results = [results[position] for position in range(len(jobs))]
        for result in ordered_results:
            self.metrics.counter(f"jobs.{result.status}").increment()
        self.metrics.record_event(
            "batch",
            jobs=len(jobs),
            duration=self._clock() - batch_start,
        )
        return BatchReport(
            results=ordered_results,
            metrics=self._metrics_snapshot(),
            cache_stats=self.cache.stats(),
        )

    # -- internals -------------------------------------------------------------------

    def _store_lookup(self, key: str) -> Optional[Dict]:
        """Consult the persistent tier after an LRU miss.

        A hit warms the LRU so repeats in this process are pure memory
        lookups; the store's own checksum verification guarantees a
        returned record is exactly what some service once computed.
        """
        if self.store is None:
            return None
        record = self.store.get(key)
        if record is None:
            self.metrics.counter("store.misses").increment()
            return None
        self.metrics.counter("store.hits").increment()
        self.cache.put(key, dict(record))
        return record

    def _store_put(self, key: str, result_dict: Dict) -> None:
        """Write one fresh deterministic result through to the store."""
        if self.store is not None and self.store.put(key, result_dict):
            self.metrics.counter("store.appended").increment()

    def _cache_key(self, job: RepairJob) -> str:
        return fingerprint_check_request(
            job.prioritizing,
            job.candidate,
            semantics=job.semantics,
            method=job.method,
            node_budget=self._budget_for(job),
        )

    def _problem_key(self, job: RepairJob) -> str:
        """The circuit-breaker key: the job's prioritizing instance."""
        return fingerprint_prioritizing(job.prioritizing)

    def _budget_for(self, job: RepairJob) -> Optional[int]:
        if job.node_budget is not None:
            return job.node_budget
        return self.config.default_node_budget

    def _timeout_for(self, job: RepairJob) -> Optional[float]:
        if job.timeout is not None:
            return job.timeout
        return self.config.default_timeout

    def _cancelled_requested(self) -> bool:
        return self._cancel is not None and self._cancel.is_set()

    def _cancelled_outcome(self, job: RepairJob) -> Outcome:
        self.metrics.counter("jobs.cancelled").increment()
        return Outcome(
            status="error",
            is_optimal=None,
            semantics=job.semantics,
            method="none",
            reason="batch cancelled before this job ran "
            "(shutdown signal received)",
        )

    def _fast_fail_outcome(self, job: RepairJob, problem_key: str) -> Outcome:
        self.metrics.counter("breaker.fast_fails").increment()
        self.metrics.record_event(
            "breaker_fast_fail", job_id=job.job_id, key=problem_key
        )
        return Outcome(
            status="error",
            is_optimal=None,
            semantics=job.semantics,
            method="none",
            reason=(
                f"circuit breaker open for this problem "
                f"({problem_key[:12]}…): consecutive worker failures "
                f"reached the threshold "
                f"({self.config.breaker_threshold})"
            ),
            worker_failure=True,
        )

    def _reissue(
        self,
        cached: Mapping,
        job: RepairJob,
        key: str,
        from_cache: bool = True,
    ) -> JobResult:
        return JobResult(
            job_id=job.job_id,
            status=cached["status"],
            is_optimal=cached["is_optimal"],
            semantics=cached["semantics"],
            method=cached["method"],
            reason=cached["reason"],
            cache_hit=from_cache,
            attempts=0,
            duration=0.0,
            fingerprint=key,
        )

    def _run_serial(
        self,
        pending: List[Tuple[int, RepairJob, str]],
        results: Dict[int, JobResult],
    ) -> None:
        """The serial executor: run each job in line, breaker-guarded."""
        for position, job, key in pending:
            results[position] = self._execute_one(job, key)

    def _execute_one(self, job: RepairJob, key: str) -> JobResult:
        """Cancel/breaker-guarded execution of one cache-missed job.

        The shared in-line execution path: both the serial batch
        executor and the reentrant :meth:`run_job` route through it, so
        single-request and batch traffic keep identical cancel, breaker,
        retry, and finish semantics.
        """
        if self._cancelled_requested():
            return self._finish(job, key, self._cancelled_outcome(job), 0, 0.0)
        problem_key = self._problem_key(job)
        if not self._breaker.allow(problem_key):
            return self._finish(
                job, key, self._fast_fail_outcome(job, problem_key), 0, 0.0
            )
        outcome, attempts, duration = self._attempt_with_retry(job)
        self._breaker.record(
            problem_key,
            failure=outcome.status == "error" and outcome.worker_failure,
        )
        return self._finish(job, key, outcome, attempts, duration)

    def _attempt_with_retry(
        self, job: RepairJob, attempt_base: int = 0
    ) -> Tuple[Outcome, int, float]:
        """Run one job with bounded retry; never raises.

        ``attempt_base`` counts dispatches already consumed elsewhere
        (pool rebuilds), so the global attempt index — which keys both
        the jitter schedule and any fault plan — keeps increasing across
        supervision boundaries.  Returns ``(outcome, attempts,
        duration)``.
        """
        budget = self._budget_for(job)
        timeout = self._timeout_for(job)
        start = self._clock()
        attempts = attempt_base
        while True:
            attempts += 1
            try:
                outcome = call_runner(
                    self._runner,
                    self._runner_takes_attempt,
                    job,
                    budget,
                    timeout,
                    attempts,
                )
                return outcome, attempts, self._clock() - start
            except TRANSIENT_EXCEPTIONS as exc:
                if attempts > self.config.max_retries:
                    outcome = Outcome(
                        status="error",
                        is_optimal=None,
                        semantics=job.semantics,
                        method="none",
                        reason=(
                            f"transient failure persisted after "
                            f"{attempts} attempt(s): {exc}"
                        ),
                        worker_failure=True,
                    )
                    return outcome, attempts, self._clock() - start
                delay = self._retry.delay(job.job_id, attempts)
                self.metrics.counter("jobs.retries").increment()
                self.metrics.record_event(
                    "retry",
                    job_id=job.job_id,
                    attempt=attempts,
                    delay=delay,
                    error=str(exc),
                )
                self._sleep(delay)
            # The documented supervision boundary: an arbitrary worker
            # crash must become a result, never escape the batch.
            except Exception as exc:  # noqa: BLE001  # repro-lint: ignore[RL007]
                outcome = Outcome(
                    status="error",
                    is_optimal=None,
                    semantics=job.semantics,
                    method="none",
                    reason=f"worker failed: {type(exc).__name__}: {exc}",
                    worker_failure=True,
                )
                return outcome, attempts, self._clock() - start

    def _finish(
        self, job: RepairJob, key: str, outcome: Outcome, attempts: int,
        duration: float,
    ) -> JobResult:
        result = JobResult(
            job_id=job.job_id,
            status=outcome.status,
            is_optimal=outcome.is_optimal,
            semantics=outcome.semantics,
            method=outcome.method,
            reason=outcome.reason,
            cache_hit=False,
            attempts=attempts,
            duration=duration,
            fingerprint=key,
        )
        if outcome.status in _CACHEABLE_STATUSES:
            self.cache.put(key, result.to_dict())
            self._store_put(key, result.to_dict())
        if self._result_sink is not None:
            try:
                if self._result_sink(result):
                    self.metrics.counter("journal.appended").increment()
            except OSError as exc:
                # A failing sink (disk full, journal unlinked) must not
                # take the batch down; the results are still returned.
                self.metrics.counter("journal.errors").increment()
                self.metrics.record_event(
                    "journal_error", job_id=job.job_id, error=str(exc)
                )
        self.metrics.histogram(f"latency.{outcome.method}").observe(duration)
        if outcome.status == "degraded":
            self.metrics.counter("jobs.degraded_routed").increment()
        self.metrics.record_event(
            "job",
            job_id=job.job_id,
            status=outcome.status,
            method=outcome.method,
            duration=duration,
            attempts=attempts,
        )
        return result

    # -- compute internals ----------------------------------------------------------

    def _compute_cache_key(self, job: ComputeJob) -> str:
        return fingerprint_compute_request(
            job.prioritizing,
            job.kind,
            semantics=job.semantics,
            seed=job.seed,
            node_budget=self._budget_for(job),
            query=job.query,
            max_repairs=job.max_repairs,
        )

    def _reissue_compute(
        self,
        cached: Mapping,
        job: ComputeJob,
        key: str,
        from_cache: bool = True,
    ) -> ComputeResult:
        return ComputeResult(
            job_id=job.job_id,
            kind=cached["kind"],
            status=cached["status"],
            semantics=cached["semantics"],
            method=cached["method"],
            payload=dict(cached["payload"]),
            reason=cached["reason"],
            cache_hit=from_cache,
            attempts=0,
            duration=0.0,
            fingerprint=key,
        )

    def _execute_compute(self, job: ComputeJob, key: str) -> ComputeResult:
        """Cancel/breaker-guarded execution of one compute cache miss."""
        if self._cancelled_requested():
            self.metrics.counter("jobs.cancelled").increment()
            outcome = ComputeOutcome(
                status="error",
                semantics=job.semantics,
                method="none",
                reason="batch cancelled before this job ran "
                "(shutdown signal received)",
            )
            return self._finish_compute(job, key, outcome, 0, 0.0)
        problem_key = self._problem_key(job)
        if not self._breaker.allow(problem_key):
            self.metrics.counter("breaker.fast_fails").increment()
            self.metrics.record_event(
                "breaker_fast_fail", job_id=job.job_id, key=problem_key
            )
            outcome = ComputeOutcome(
                status="error",
                semantics=job.semantics,
                method="none",
                reason=(
                    f"circuit breaker open for this problem "
                    f"({problem_key[:12]}…): consecutive worker failures "
                    f"reached the threshold "
                    f"({self.config.breaker_threshold})"
                ),
                worker_failure=True,
            )
            return self._finish_compute(job, key, outcome, 0, 0.0)
        outcome, attempts, duration = self._compute_attempt_with_retry(job)
        self._breaker.record(
            problem_key,
            failure=outcome.status == "error" and outcome.worker_failure,
        )
        return self._finish_compute(job, key, outcome, attempts, duration)

    def _compute_attempt_with_retry(
        self, job: ComputeJob
    ) -> Tuple[ComputeOutcome, int, float]:
        """Run one compute job with bounded retry; never raises."""
        budget = self._budget_for(job)
        timeout = self._timeout_for(job)
        start = self._clock()
        attempts = 0
        while True:
            attempts += 1
            try:
                outcome = self._compute_runner(job, budget, timeout)
                return outcome, attempts, self._clock() - start
            except TRANSIENT_EXCEPTIONS as exc:
                if attempts > self.config.max_retries:
                    outcome = ComputeOutcome(
                        status="error",
                        semantics=job.semantics,
                        method="none",
                        reason=(
                            f"transient failure persisted after "
                            f"{attempts} attempt(s): {exc}"
                        ),
                        worker_failure=True,
                    )
                    return outcome, attempts, self._clock() - start
                delay = self._retry.delay(job.job_id, attempts)
                self.metrics.counter("jobs.retries").increment()
                self.metrics.record_event(
                    "retry",
                    job_id=job.job_id,
                    attempt=attempts,
                    delay=delay,
                    error=str(exc),
                )
                self._sleep(delay)
            # The documented supervision boundary: a worker crash must
            # become a result, never escape the request.
            except Exception as exc:  # noqa: BLE001  # repro-lint: ignore[RL007]
                outcome = ComputeOutcome(
                    status="error",
                    semantics=job.semantics,
                    method="none",
                    reason=f"worker failed: {type(exc).__name__}: {exc}",
                    worker_failure=True,
                )
                return outcome, attempts, self._clock() - start

    def _finish_compute(
        self,
        job: ComputeJob,
        key: str,
        outcome: ComputeOutcome,
        attempts: int,
        duration: float,
    ) -> ComputeResult:
        result = ComputeResult(
            job_id=job.job_id,
            kind=job.kind,
            status=outcome.status,
            semantics=outcome.semantics,
            method=outcome.method,
            payload=outcome.payload,
            reason=outcome.reason,
            cache_hit=False,
            attempts=attempts,
            duration=duration,
            fingerprint=key,
        )
        if outcome.status in _CACHEABLE_STATUSES:
            self.cache.put(key, result.to_dict())
            self._store_put(key, result.to_dict())
        if self._result_sink is not None:
            try:
                if self._result_sink(result):
                    self.metrics.counter("journal.appended").increment()
            except OSError as exc:
                self.metrics.counter("journal.errors").increment()
                self.metrics.record_event(
                    "journal_error", job_id=job.job_id, error=str(exc)
                )
        self.metrics.histogram(f"latency.{outcome.method}").observe(duration)
        if outcome.status == "degraded":
            self.metrics.counter("jobs.degraded_routed").increment()
        self.metrics.record_event(
            "job",
            job_id=job.job_id,
            status=outcome.status,
            method=outcome.method,
            duration=duration,
            attempts=attempts,
        )
        return result

    def _process_pool_runner(self) -> Optional[Callable[..., Outcome]]:
        """The runner to ship to process workers (None = default policy).

        Closures cannot cross the process boundary; picklable runners
        (module-level functions, picklable callables like the chaos
        harness's ``FaultyRunner``) ride along, everything else falls
        back to the default policy exactly as before.
        """
        if self._runner is _default_runner:
            return None
        try:
            pickle.dumps(self._runner)
        except (pickle.PicklingError, TypeError, AttributeError):
            return None
        return self._runner

    def _run_pool(
        self,
        pending: List[Tuple[int, RepairJob, str]],
        results: Dict[int, JobResult],
    ) -> None:
        """The supervised pool executor.

        Submits every pending job to a worker pool and collects results;
        when the pool breaks (a worker process died), the jobs lost with
        it are re-dispatched to a rebuilt pool, up to
        ``max_pool_restarts`` rebuilds per batch.  Jobs still lost when
        the resurrection budget runs out become ``error`` results.
        """
        supervisor = PoolSupervisor(
            self.config.max_pool_restarts, metrics=self.metrics
        )
        remaining: List[_PoolItem] = [
            (position, job, key, 0) for position, job, key in pending
        ]
        while remaining:
            lost = self._pool_round(remaining, results)
            if not lost:
                return
            if not supervisor.can_restart():
                for position, job, key, attempt_base in lost:
                    outcome = Outcome(
                        status="error",
                        is_optimal=None,
                        semantics=job.semantics,
                        method="none",
                        reason=(
                            "worker process died and the pool-restart "
                            f"budget ({self.config.max_pool_restarts}) "
                            "is exhausted"
                        ),
                        worker_failure=True,
                    )
                    self._breaker.record(self._problem_key(job), failure=True)
                    results[position] = self._finish(
                        job, key, outcome, attempt_base + 1, 0.0
                    )
                return
            supervisor.record_restart(len(lost))
            # Each lost dispatch consumed one global attempt: fault
            # schedules and retry accounting must see it.
            remaining = [
                (position, job, key, attempt_base + 1)
                for position, job, key, attempt_base in lost
            ]

    def _pool_round(
        self,
        items: List[_PoolItem],
        results: Dict[int, JobResult],
    ) -> List[_PoolItem]:
        """One submit-and-collect round; returns the jobs lost to a
        broken pool (empty when the round fully resolved)."""
        pool_runner = (
            self._process_pool_runner()
            if self.config.executor == "process"
            else None
        )
        lost: List[_PoolItem] = []
        with self._make_pool() as pool:
            futures: Dict[Future, _PoolItem] = {}
            for item in items:
                position, job, key, attempt_base = item
                if self._cancelled_requested():
                    results[position] = self._finish(
                        job, key, self._cancelled_outcome(job), 0, 0.0
                    )
                    continue
                problem_key = self._problem_key(job)
                if not self._breaker.allow(problem_key):
                    results[position] = self._finish(
                        job, key, self._fast_fail_outcome(job, problem_key),
                        0, 0.0,
                    )
                    continue
                try:
                    if self.config.executor == "process":
                        future = pool.submit(
                            _process_attempt,
                            job,
                            self._budget_for(job),
                            self._timeout_for(job),
                            self.config.max_retries,
                            self.config.backoff_base,
                            self.config.backoff_cap,
                            self.config.backoff_seed,
                            attempt_base,
                            pool_runner,
                        )
                    else:
                        future = pool.submit(
                            self._attempt_with_retry, job, attempt_base
                        )
                except BrokenExecutor:
                    lost.append(item)
                    continue
                futures[future] = item
            for future, item in futures.items():
                position, job, key, attempt_base = item
                if self._cancelled_requested() and future.cancel():
                    results[position] = self._finish(
                        job, key, self._cancelled_outcome(job), 0, 0.0
                    )
                    continue
                timeout = self._timeout_for(job)
                try:
                    # The in-worker deadline is the primary timeout (it
                    # cancels the search cooperatively); this wait is a
                    # backstop with slack for queueing behind other jobs.
                    wait_for = (
                        None
                        if timeout is None
                        else timeout * (len(items) + 1) + 1.0
                    )
                    outcome, attempts, duration = future.result(wait_for)
                except FutureTimeoutError:
                    self.metrics.counter("jobs.pool_timeouts").increment()
                    results[position] = self._finish(
                        job,
                        key,
                        Outcome(
                            status="timeout",
                            is_optimal=None,
                            semantics=job.semantics,
                            method="none",
                            reason="job exceeded its wall-clock timeout "
                            "(abandoned by the coordinator)",
                        ),
                        attempts=1,
                        duration=wait_for or 0.0,
                    )
                    continue
                except BrokenExecutor:
                    # The worker serving (or queued to serve) this job
                    # died: hand it to the supervisor for re-dispatch.
                    lost.append(item)
                    continue
                except CancelledError:
                    results[position] = self._finish(
                        job, key, self._cancelled_outcome(job), 0, 0.0
                    )
                    continue
                # The documented supervision boundary: any pool-level
                # failure becomes a result, never escapes the batch.
                except Exception as exc:  # noqa: BLE001  # repro-lint: ignore[RL007]
                    results[position] = self._finish(
                        job,
                        key,
                        Outcome(
                            status="error",
                            is_optimal=None,
                            semantics=job.semantics,
                            method="none",
                            reason=f"executor failed: "
                            f"{type(exc).__name__}: {exc}",
                            worker_failure=True,
                        ),
                        attempts=1,
                        duration=0.0,
                    )
                    continue
                self._breaker.record(
                    self._problem_key(job),
                    failure=outcome.status == "error"
                    and outcome.worker_failure,
                )
                results[position] = self._finish(
                    job, key, outcome, attempts, duration
                )
        return lost

    def _make_pool(self):
        if self.config.executor == "process":
            return ProcessPoolExecutor(max_workers=self.config.workers)
        return ThreadPoolExecutor(max_workers=self.config.workers)

    def _metrics_snapshot(self) -> Dict:
        snapshot = self.metrics.snapshot()
        info = classification_cache_info()
        snapshot["classification_cache"] = {
            name: {
                "hits": cache_info.hits,
                "misses": cache_info.misses,
                "size": cache_info.currsize,
            }
            for name, cache_info in info.items()
        }
        snapshot["result_cache"] = self.cache.stats()
        if self.store is not None:
            snapshot["result_store"] = self.store.stats()
        return snapshot


def _process_attempt(
    job: RepairJob,
    node_budget: Optional[int],
    timeout: Optional[float],
    max_retries: int,
    backoff_base: float,
    backoff_cap: float,
    backoff_seed: int = 0,
    attempt_base: int = 0,
    runner: Optional[Callable[..., Outcome]] = None,
) -> Tuple[Outcome, int, float]:
    """The process-pool worker: runner plus in-worker retry.

    Module-level (picklable); mirrors ``_attempt_with_retry`` through
    the shared :class:`~repro.service.resilience.RetryPolicy`, so both
    loops produce identical attempt/delay sequences for the same seed
    (property-tested).  ``runner`` must be picklable (None runs the
    default policy — closures cannot cross the process boundary), and
    ``attempt_base`` carries the dispatches consumed by earlier pool
    incarnations of this job.
    """
    policy = RetryPolicy(backoff_base, backoff_cap, backoff_seed)
    run = runner if runner is not None else _default_runner
    takes_attempt = runner_accepts_attempt(run)
    start = time.monotonic()
    attempts = attempt_base
    while True:
        attempts += 1
        try:
            outcome = call_runner(
                run, takes_attempt, job, node_budget, timeout, attempts
            )
            return outcome, attempts, time.monotonic() - start
        except TRANSIENT_EXCEPTIONS as exc:
            if attempts > max_retries:
                outcome = Outcome(
                    status="error",
                    is_optimal=None,
                    semantics=job.semantics,
                    method="none",
                    reason=(
                        f"transient failure persisted after "
                        f"{attempts} attempt(s): {exc}"
                    ),
                    worker_failure=True,
                )
                return outcome, attempts, time.monotonic() - start
            time.sleep(policy.delay(job.job_id, attempts))
        # The documented supervision boundary (worker-process copy).
        except Exception as exc:  # noqa: BLE001  # repro-lint: ignore[RL007]
            outcome = Outcome(
                status="error",
                is_optimal=None,
                semantics=job.semantics,
                method="none",
                reason=f"worker failed: {type(exc).__name__}: {exc}",
                worker_failure=True,
            )
            return outcome, attempts, time.monotonic() - start
