"""`RepairService`: parallel, cached, observable batch repair checking.

The front-end the rest of the repo talks to.  A batch of
:class:`~repro.service.jobs.RepairJob` goes in; a
:class:`~repro.service.jobs.BatchReport` comes out, with one
:class:`~repro.service.jobs.JobResult` per job **in submission order**.

Pipeline per batch:

1. **Schedule** — jobs are ordered by descending ``priority`` (ties by
   submission order).
2. **Cache** — each job's canonical fingerprint is looked up in the LRU
   result cache; hits (including duplicates *within* the batch) never
   reach a worker.
3. **Execute** — misses run on a ``concurrent.futures`` pool
   (``"thread"``, ``"process"``, or in-line ``"serial"``), through the
   degradation policy of :mod:`repro.service.policy`: tractable
   questions use the paper's polynomial checkers, coNP-hard questions
   use the budgeted improvement search and report ``degraded`` /
   ``timeout`` instead of hanging.
4. **Retry** — a worker raising
   :class:`~repro.exceptions.TransientWorkerError` (or ``OSError``) is
   retried with capped exponential backoff, up to
   ``ServiceConfig.max_retries`` times; permanent failures become
   ``status="error"`` results, never exceptions out of the batch.
5. **Observe** — counters, per-algorithm latency histograms, and a
   structured event log accumulate in a
   :class:`~repro.service.metrics.MetricsRegistry`.

Determinism contract: for any fixed batch and ``node_budget``, the
``verdict()`` of every result is identical across worker counts,
executor kinds, and cache temperatures (property-tested in
``tests/properties/test_service_properties.py``).
"""

from __future__ import annotations

import time
from concurrent.futures import (
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    TimeoutError as FutureTimeoutError,
)
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.classification import classification_cache_info
from repro.core.instance import Instance
from repro.core.priority import PrioritizingInstance
from repro.exceptions import TransientWorkerError, UsageError
from repro.service.cache import LRUCache
from repro.service.fingerprint import fingerprint_check_request
from repro.service.jobs import BatchReport, JobResult, RepairJob
from repro.service.metrics import MetricsRegistry
from repro.service.policy import Outcome, execute_check

__all__ = ["ServiceConfig", "RepairService"]

#: Exceptions the retry loop treats as transient worker failures.
TRANSIENT_EXCEPTIONS = (TransientWorkerError, OSError)

#: Statuses whose outcomes are deterministic and therefore cacheable.
#: ``timeout`` depends on the wall clock and ``error`` may reflect a
#: worker failure, so neither is ever cached.
_CACHEABLE_STATUSES = frozenset({"ok", "degraded"})


def _default_runner(job: RepairJob, node_budget, timeout) -> Outcome:
    """Execute one job through the degradation policy (worker side)."""
    return execute_check(
        job.prioritizing,
        job.candidate,
        semantics=job.semantics,
        method=job.method,
        node_budget=node_budget,
        timeout=timeout,
    )


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs for a :class:`RepairService`.

    Attributes
    ----------
    workers:
        Pool size for ``"thread"`` / ``"process"`` executors.
    executor:
        ``"serial"`` (run in the calling thread; the reference
        behaviour), ``"thread"`` (default; shares the in-process caches,
        overlaps well with cache hits), or ``"process"`` (true
        parallelism for CPU-bound batches; jobs must be picklable and
        the runner is fixed to the default policy).
    cache_size:
        Result-cache capacity (0 disables result caching).
    default_timeout:
        Per-job wall-clock seconds when the job does not set one
        (None = no timeout).
    default_node_budget:
        Improvement-search node budget for coNP-hard jobs when the job
        does not set one (None = unbounded, not recommended for a
        service).
    max_retries:
        How many times a transiently-failing job is re-attempted.
    backoff_base / backoff_cap:
        Exponential backoff: attempt ``k`` sleeps
        ``min(backoff_base * 2**k, backoff_cap)`` seconds.
    """

    workers: int = 1
    executor: str = "thread"
    cache_size: int = 2048
    default_timeout: Optional[float] = None
    default_node_budget: Optional[int] = 100_000
    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 1.0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise UsageError(f"workers must be >= 1, got {self.workers}")
        if self.executor not in ("serial", "thread", "process"):
            raise UsageError(
                f"executor must be serial/thread/process, got {self.executor!r}"
            )
        if self.max_retries < 0:
            raise UsageError("max_retries must be >= 0")


class RepairService:
    """A batch repair-checking service over the paper's checkers.

    Parameters
    ----------
    config:
        A :class:`ServiceConfig` (defaults are sensible for tests and
        small batches).
    metrics / cache:
        Injectable for sharing across services or asserting in tests.
    runner:
        The per-job execution function ``(job, node_budget, timeout) ->
        Outcome``; tests inject flaky runners to exercise the retry
        path.  Ignored by the ``"process"`` executor (workers always run
        the default policy there, since a closure cannot be shipped).
    sleep:
        The backoff sleep function (injectable so retry tests run
        instantly).

    Examples
    --------
    >>> from repro.core import Fact, PriorityRelation, Schema
    >>> from repro.core.priority import PrioritizingInstance
    >>> from repro.service.jobs import RepairJob
    >>> schema = Schema.single_relation(["1 -> 2"], arity=2)
    >>> f, g = Fact("R", (1, "a")), Fact("R", (1, "b"))
    >>> pri = PrioritizingInstance(
    ...     schema, schema.instance([f, g]), PriorityRelation([(f, g)])
    ... )
    >>> service = RepairService(ServiceConfig(executor="serial"))
    >>> report = service.run_batch(
    ...     [RepairJob("j1", pri, schema.instance([f]))]
    ... )
    >>> report.results[0].status, report.results[0].is_optimal
    ('ok', True)
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        cache: Optional[LRUCache] = None,
        runner: Optional[Callable[..., Outcome]] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.config = config or ServiceConfig()
        self.metrics = metrics or MetricsRegistry()
        self.cache = cache if cache is not None else LRUCache(
            self.config.cache_size
        )
        self._runner = runner or _default_runner
        self._sleep = sleep

    # -- single-job convenience ----------------------------------------------------

    def check(
        self,
        prioritizing: PrioritizingInstance,
        candidate: Instance,
        semantics: str = "global",
        **job_fields,
    ) -> JobResult:
        """Check one candidate through the full service pipeline."""
        job = RepairJob(
            job_id="single",
            prioritizing=prioritizing,
            candidate=candidate,
            semantics=semantics,
            **job_fields,
        )
        return self.run_batch([job]).results[0]

    # -- batch execution ------------------------------------------------------------

    def run_batch(self, jobs: Sequence[RepairJob]) -> BatchReport:
        """Run a batch; results come back in submission order."""
        batch_start = time.monotonic()
        ordered = sorted(
            enumerate(jobs), key=lambda pair: (-pair[1].priority, pair[0])
        )
        results: Dict[int, JobResult] = {}
        pending: List[Tuple[int, RepairJob, str]] = []
        first_by_key: Dict[str, int] = {}
        duplicates: List[Tuple[int, RepairJob, str]] = []

        for position, job in ordered:
            key = self._cache_key(job)
            cached = self.cache.get(key)
            if cached is not None:
                self.metrics.counter("cache.hits").increment()
                results[position] = self._reissue(cached, job, key)
                continue
            if key in first_by_key:
                # An in-batch duplicate: resolved after the first
                # occurrence executes, without spending a worker on it.
                duplicates.append((position, job, key))
            else:
                self.metrics.counter("cache.misses").increment()
                first_by_key[key] = position
                pending.append((position, job, key))

        if pending:
            if self.config.executor == "serial" or self.config.workers == 1:
                for position, job, key in pending:
                    results[position] = self._finish(
                        job, key, *self._attempt_with_retry(job)
                    )
            else:
                self._run_pool(pending, results)

        # Within-batch duplicates reuse the first occurrence's result
        # (a cache hit in every sense that matters: no work was done).
        for position, job, key in duplicates:
            cached = self.cache.get(key)
            if cached is not None:
                self.metrics.counter("cache.hits").increment()
                results[position] = self._reissue(cached, job, key)
            else:
                first = results[first_by_key[key]]
                results[position] = self._reissue(
                    first.to_dict(), job, key, from_cache=first.status
                    in _CACHEABLE_STATUSES
                )

        ordered_results = [results[position] for position in range(len(jobs))]
        for result in ordered_results:
            self.metrics.counter(f"jobs.{result.status}").increment()
        self.metrics.record_event(
            "batch",
            jobs=len(jobs),
            duration=time.monotonic() - batch_start,
        )
        return BatchReport(
            results=ordered_results,
            metrics=self._metrics_snapshot(),
            cache_stats=self.cache.stats(),
        )

    # -- internals -------------------------------------------------------------------

    def _cache_key(self, job: RepairJob) -> str:
        return fingerprint_check_request(
            job.prioritizing,
            job.candidate,
            semantics=job.semantics,
            method=job.method,
            node_budget=self._budget_for(job),
        )

    def _budget_for(self, job: RepairJob) -> Optional[int]:
        if job.node_budget is not None:
            return job.node_budget
        return self.config.default_node_budget

    def _timeout_for(self, job: RepairJob) -> Optional[float]:
        if job.timeout is not None:
            return job.timeout
        return self.config.default_timeout

    def _reissue(
        self,
        cached: Dict,
        job: RepairJob,
        key: str,
        from_cache: bool = True,
    ) -> JobResult:
        return JobResult(
            job_id=job.job_id,
            status=cached["status"],
            is_optimal=cached["is_optimal"],
            semantics=cached["semantics"],
            method=cached["method"],
            reason=cached["reason"],
            cache_hit=from_cache,
            attempts=0,
            duration=0.0,
            fingerprint=key,
        )

    def _attempt_with_retry(self, job: RepairJob) -> Tuple[Outcome, int, float]:
        """Run one job with bounded retry; never raises.

        Returns ``(outcome, attempts, duration)``.
        """
        budget = self._budget_for(job)
        timeout = self._timeout_for(job)
        start = time.monotonic()
        attempts = 0
        while True:
            attempts += 1
            try:
                outcome = self._runner(job, budget, timeout)
                return outcome, attempts, time.monotonic() - start
            except TRANSIENT_EXCEPTIONS as exc:
                if attempts > self.config.max_retries:
                    outcome = Outcome(
                        status="error",
                        is_optimal=None,
                        semantics=job.semantics,
                        method="none",
                        reason=(
                            f"transient failure persisted after "
                            f"{attempts} attempt(s): {exc}"
                        ),
                    )
                    return outcome, attempts, time.monotonic() - start
                delay = min(
                    self.config.backoff_base * (2 ** (attempts - 1)),
                    self.config.backoff_cap,
                )
                self.metrics.counter("jobs.retries").increment()
                self.metrics.record_event(
                    "retry",
                    job_id=job.job_id,
                    attempt=attempts,
                    delay=delay,
                    error=str(exc),
                )
                self._sleep(delay)
            except Exception as exc:  # noqa: BLE001 - worker crash becomes a result
                outcome = Outcome(
                    status="error",
                    is_optimal=None,
                    semantics=job.semantics,
                    method="none",
                    reason=f"worker failed: {type(exc).__name__}: {exc}",
                )
                return outcome, attempts, time.monotonic() - start

    def _finish(
        self, job: RepairJob, key: str, outcome: Outcome, attempts: int,
        duration: float,
    ) -> JobResult:
        result = JobResult(
            job_id=job.job_id,
            status=outcome.status,
            is_optimal=outcome.is_optimal,
            semantics=outcome.semantics,
            method=outcome.method,
            reason=outcome.reason,
            cache_hit=False,
            attempts=attempts,
            duration=duration,
            fingerprint=key,
        )
        if outcome.status in _CACHEABLE_STATUSES:
            self.cache.put(key, result.to_dict())
        self.metrics.histogram(f"latency.{outcome.method}").observe(duration)
        if outcome.status == "degraded":
            self.metrics.counter("jobs.degraded_routed").increment()
        self.metrics.record_event(
            "job",
            job_id=job.job_id,
            status=outcome.status,
            method=outcome.method,
            duration=duration,
            attempts=attempts,
        )
        return result

    def _run_pool(
        self,
        pending: List[Tuple[int, RepairJob, str]],
        results: Dict[int, JobResult],
    ) -> None:
        if self.config.executor == "process":
            pool_cls = ProcessPoolExecutor
            submit_fn = _process_attempt
        else:
            pool_cls = ThreadPoolExecutor
            submit_fn = None  # bound method used below
        with pool_cls(max_workers=self.config.workers) as pool:
            futures: Dict[Future, Tuple[int, RepairJob, str]] = {}
            for position, job, key in pending:
                if submit_fn is None:
                    future = pool.submit(self._attempt_with_retry, job)
                else:
                    future = pool.submit(
                        submit_fn,
                        job,
                        self._budget_for(job),
                        self._timeout_for(job),
                        self.config.max_retries,
                        self.config.backoff_base,
                        self.config.backoff_cap,
                    )
                futures[future] = (position, job, key)
            for future, (position, job, key) in futures.items():
                timeout = self._timeout_for(job)
                try:
                    # The in-worker deadline is the primary timeout (it
                    # cancels the search cooperatively); this wait is a
                    # backstop with slack for queueing behind other jobs.
                    wait_for = (
                        None
                        if timeout is None
                        else timeout * (len(pending) + 1) + 1.0
                    )
                    outcome, attempts, duration = future.result(wait_for)
                except FutureTimeoutError:
                    self.metrics.counter("jobs.pool_timeouts").increment()
                    results[position] = self._finish(
                        job,
                        key,
                        Outcome(
                            status="timeout",
                            is_optimal=None,
                            semantics=job.semantics,
                            method="none",
                            reason="job exceeded its wall-clock timeout "
                            "(abandoned by the coordinator)",
                        ),
                        attempts=1,
                        duration=wait_for or 0.0,
                    )
                    continue
                except Exception as exc:  # pool-level failure (e.g. broken pool)
                    results[position] = self._finish(
                        job,
                        key,
                        Outcome(
                            status="error",
                            is_optimal=None,
                            semantics=job.semantics,
                            method="none",
                            reason=f"executor failed: {type(exc).__name__}: {exc}",
                        ),
                        attempts=1,
                        duration=0.0,
                    )
                    continue
                results[position] = self._finish(
                    job, key, outcome, attempts, duration
                )

    def _metrics_snapshot(self) -> Dict:
        snapshot = self.metrics.snapshot()
        info = classification_cache_info()
        snapshot["classification_cache"] = {
            name: {
                "hits": cache_info.hits,
                "misses": cache_info.misses,
                "size": cache_info.currsize,
            }
            for name, cache_info in info.items()
        }
        snapshot["result_cache"] = self.cache.stats()
        return snapshot


def _process_attempt(
    job: RepairJob,
    node_budget: Optional[int],
    timeout: Optional[float],
    max_retries: int,
    backoff_base: float,
    backoff_cap: float,
) -> Tuple[Outcome, int, float]:
    """The process-pool worker: default policy plus in-worker retry.

    Module-level (picklable); mirrors ``_attempt_with_retry`` without
    the injectable runner/sleep (closures cannot cross the process
    boundary).
    """
    start = time.monotonic()
    attempts = 0
    while True:
        attempts += 1
        try:
            outcome = _default_runner(job, node_budget, timeout)
            return outcome, attempts, time.monotonic() - start
        except TRANSIENT_EXCEPTIONS as exc:
            if attempts > max_retries:
                outcome = Outcome(
                    status="error",
                    is_optimal=None,
                    semantics=job.semantics,
                    method="none",
                    reason=(
                        f"transient failure persisted after "
                        f"{attempts} attempt(s): {exc}"
                    ),
                )
                return outcome, attempts, time.monotonic() - start
            time.sleep(min(backoff_base * (2 ** (attempts - 1)), backoff_cap))
        except Exception as exc:  # noqa: BLE001
            outcome = Outcome(
                status="error",
                is_optimal=None,
                semantics=job.semantics,
                method="none",
                reason=f"worker failed: {type(exc).__name__}: {exc}",
            )
            return outcome, attempts, time.monotonic() - start
