"""Execution policy: routing, degradation, and per-job outcomes.

:func:`execute_check` is the single function a worker runs for one job.
It reproduces the dispatcher's dichotomy-guided routing with one
deliberate difference: where :func:`~repro.core.checking.dispatcher.
check_globally_optimal` falls back to the *unbounded* brute force on the
coNP-hard side, the service routes hard questions to the **budgeted**
goal-directed improvement search and turns budget exhaustion into an
explicit ``degraded`` status (and deadline exhaustion into
``timeout``).  A service must answer in bounded time; "we could not
decide within the budget" is an answer, hanging is not.

Verdict compatibility: on every input where both finish, the budgeted
search and the dispatcher return the same ``is_optimal`` — the search is
complete and exact for every schema and both priority settings — so
batch results remain bit-identical to direct
:func:`check_globally_optimal` calls whenever the budget suffices.

Routing recap (mirrors the dispatcher):

* classical priorities — Theorem 3.1 tractable → polynomial checkers
  via the dispatcher; hard → budgeted search;
* ccp priorities — Theorem 7.1 tractable (primary-key or
  constant-attribute assignment) → polynomial ccp checkers; hard but
  conflict-only → classical routing; hard otherwise → budgeted search;
* ``pareto`` / ``completion`` semantics are PTIME for every schema, so
  they never degrade.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.compute import compute_optimal_repair, count_repairs_entailing
from repro.core.checking import (
    check_completion_optimal,
    check_globally_optimal,
    check_globally_optimal_search,
    check_pareto_optimal,
)
from repro.core.checking.dispatcher import _is_conflict_only
from repro.core.classification import classify_ccp_schema, classify_schema
from repro.core.instance import Instance
from repro.core.priority import PrioritizingInstance
from repro.cqa.queries import ConjunctiveQuery
from repro.exceptions import ReproError, SearchBudgetExceededError
from repro.io import instance_to_list

__all__ = [
    "Outcome",
    "ComputeOutcome",
    "needs_degradation",
    "execute_check",
    "execute_repair",
    "execute_count",
]

#: Method label reported when the degradation policy could not decide.
DEGRADED_METHOD = "improvement-search"


@dataclass(frozen=True)
class Outcome:
    """What executing one check produced (no scheduling metadata).

    ``worker_failure`` distinguishes infrastructure-level ``error``
    outcomes (a worker crashed, retries exhausted, the pool broke) from
    deterministic job errors (malformed input): only the former say
    anything about the health of the problem's workers, so only they
    feed the per-problem circuit breaker in
    :mod:`repro.service.resilience`.
    """

    status: str
    is_optimal: Optional[bool]
    semantics: str
    method: str
    reason: str = ""
    worker_failure: bool = False


@dataclass(frozen=True)
class ComputeOutcome:
    """What executing one compute job produced (no scheduling metadata).

    The compute analogue of :class:`Outcome`: ``payload`` carries the
    kind-specific answer (a serialized repair, or entailment counts),
    and ``worker_failure`` plays the same circuit-breaker role.
    """

    status: str
    semantics: str
    method: str
    payload: Dict[str, Any] = field(default_factory=dict)
    reason: str = ""
    worker_failure: bool = False


def needs_degradation(prioritizing: PrioritizingInstance) -> bool:
    """Whether globally-optimal checking for this input is coNP-hard.

    True exactly when the dispatcher's ``auto`` route would reach the
    unbounded brute force: a classically-hard schema, or a ccp-hard
    schema whose priority is not conflict-only.  Classification verdicts
    are memoized per schema, so this is cheap on shared-schema batches.
    """
    if not prioritizing.is_ccp:
        return not classify_schema(prioritizing.schema).is_tractable
    if classify_ccp_schema(prioritizing.schema).is_tractable:
        return False
    if _is_conflict_only(prioritizing):
        return not classify_schema(prioritizing.schema).is_tractable
    return True


def execute_check(
    prioritizing: PrioritizingInstance,
    candidate: Instance,
    semantics: str = "global",
    method: str = "auto",
    node_budget: Optional[int] = None,
    timeout: Optional[float] = None,
    core_backend: Optional[str] = None,
) -> Outcome:
    """Run one repair check under the service's degradation policy.

    Deterministic-by-construction outcomes (``ok``, ``degraded``,
    ``error``) depend only on the inputs and ``node_budget``; only
    ``timeout`` depends on the wall clock.  ``core_backend`` selects the
    core execution substrate (:mod:`repro.core.backend`) — it changes
    constant factors, never verdicts, and is deliberately excluded from
    job fingerprints so cache entries stay backend-invariant.
    """
    deadline = time.monotonic() + timeout if timeout is not None else None
    try:
        if semantics == "pareto":
            result = check_pareto_optimal(
                prioritizing, candidate, backend=core_backend
            )
        elif semantics == "completion":
            result = check_completion_optimal(
                prioritizing, candidate, backend=core_backend
            )
        elif semantics == "global":
            if method == "search" or (
                method == "auto" and needs_degradation(prioritizing)
            ):
                result = check_globally_optimal_search(
                    prioritizing,
                    candidate,
                    node_budget=node_budget,
                    deadline=deadline,
                    backend=core_backend,
                )
            else:
                result = check_globally_optimal(
                    prioritizing, candidate, method=method,
                    backend=core_backend,
                )
        else:
            return Outcome(
                status="error",
                is_optimal=None,
                semantics=semantics,
                method="none",
                reason=f"unknown semantics {semantics!r}",
            )
    except SearchBudgetExceededError as exc:
        status = "timeout" if exc.kind == "deadline" else "degraded"
        return Outcome(
            status=status,
            is_optimal=None,
            semantics=semantics,
            method=DEGRADED_METHOD,
            reason=str(exc),
        )
    except (ReproError, ValueError) as exc:
        # Malformed input (candidate outside the instance, bad method,
        # intractable-schema refusal...): a deterministic job error.
        return Outcome(
            status="error",
            is_optimal=None,
            semantics=semantics,
            method="none",
            reason=f"{type(exc).__name__}: {exc}",
        )
    return Outcome(
        status="ok",
        is_optimal=result.is_optimal,
        semantics=result.semantics,
        method=result.method,
        reason=result.reason,
    )


def execute_repair(
    prioritizing: PrioritizingInstance,
    semantics: str = "global",
    seed: int = 0,
    node_budget: Optional[int] = None,
    timeout: Optional[float] = None,
) -> ComputeOutcome:
    """Construct one optimal repair under the degradation policy.

    Mirrors :func:`execute_check`'s contract: classical priorities (and
    completion semantics) are answered exactly by the greedy
    construction; ccp global/pareto questions run the anytime
    improvement climb, which reports ``degraded`` with its best-so-far
    repair when the round budget runs out and ``timeout`` when the
    deadline does.  Malformed input is a deterministic ``error``.
    """
    deadline = time.monotonic() + timeout if timeout is not None else None
    try:
        computed = compute_optimal_repair(
            prioritizing,
            semantics=semantics,
            rng=random.Random(seed),
            node_budget=node_budget,
            deadline=deadline,
        )
    except (ReproError, ValueError) as exc:
        return ComputeOutcome(
            status="error",
            semantics=semantics,
            method="none",
            reason=f"{type(exc).__name__}: {exc}",
        )
    return ComputeOutcome(
        status=computed.status,
        semantics=computed.semantics,
        method=computed.method,
        payload={
            "repair": instance_to_list(computed.repair),
            "rounds": computed.rounds,
        },
        reason=computed.reason,
    )


def execute_count(
    query: ConjunctiveQuery,
    prioritizing: PrioritizingInstance,
    semantics: str = "global",
    max_repairs: Optional[int] = None,
) -> ComputeOutcome:
    """Count the preferred repairs entailing ``query``.

    Routes through :func:`repro.compute.count_repairs_entailing`: the
    per-block product decomposition answers ground-atom counts on
    classical single-key relations in polynomial time, everything else
    enumerates (capped by ``max_repairs``, reported as ``degraded``
    when the cap is hit).  Malformed input (an unknown relation, a bad
    semantics) is a deterministic ``error``.
    """
    try:
        count = count_repairs_entailing(
            query,
            prioritizing,
            semantics=semantics,
            max_repairs=max_repairs,
        )
    except (ReproError, ValueError) as exc:
        return ComputeOutcome(
            status="error",
            semantics=semantics,
            method="none",
            reason=f"{type(exc).__name__}: {exc}",
        )
    return ComputeOutcome(
        status=count.status,
        semantics=count.semantics,
        method=count.method,
        payload={
            "entailing": count.entailing,
            "total": count.total,
            "fraction": count.fraction,
            "exact": count.exact,
        },
        reason=count.reason,
    )
