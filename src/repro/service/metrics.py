"""Lightweight observability: counters, latency histograms, event log.

The service needs to answer "where does the time go?" without pulling in
an external metrics stack, so this module implements the three
primitives that cover the workload:

* :class:`Counter` — monotone counts (jobs by status, cache hits,
  retries);
* :class:`Gauge` — up/down levels (active connections, in-flight
  jobs), with a high-water mark so a snapshot taken after the load
  subsided still shows how busy the process got;
* :class:`LatencyHistogram` — fixed exponential buckets over seconds,
  one histogram per deciding algorithm.  ``CheckResult.method`` already
  names the algorithm that decided each question (``GRepCheck1FD``,
  ``GRepCheck2Keys``, the ccp checkers, ``brute-force``,
  ``improvement-search``), so attribution is free;
* a bounded structured *event log* — one dict per noteworthy event
  (job completed, retry scheduled, degradation applied), in order, for
  post-hoc debugging of a batch.

Everything lives in a :class:`MetricsRegistry`, is thread-safe, and
snapshots to plain JSON-ready dicts.

Examples
--------
>>> metrics = MetricsRegistry()
>>> metrics.counter("jobs.ok").increment()
>>> metrics.histogram("latency.GRepCheck1FD").observe(0.003)
>>> metrics.record_event("job", job_id="j1", status="ok")
>>> snapshot = metrics.snapshot()
>>> snapshot["counters"]["jobs.ok"]
1
>>> snapshot["events"][0]["job_id"]
'j1'
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import UsageError

__all__ = ["Counter", "Gauge", "LatencyHistogram", "MetricsRegistry"]

#: Default histogram bucket upper bounds, in seconds (exponential; the
#: final +inf bucket is implicit).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001,
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
)


class Counter:
    """A monotone counter."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def increment(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise UsageError("counters are monotone; cannot decrement")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        """The current count."""
        return self._value

    def __repr__(self) -> str:
        return f"Counter({self._value})"


class Gauge:
    """A level that moves both ways, with a high-water mark.

    Counters are monotone by contract, so quantities like "connections
    open right now" need their own primitive; the retained maximum lets
    dashboards report peak concurrency even from a post-drain snapshot.
    """

    __slots__ = ("_value", "_high_water", "_lock")

    def __init__(self) -> None:
        self._value = 0
        self._high_water = 0
        self._lock = threading.Lock()

    def increment(self, amount: int = 1) -> None:
        """Raise the level by ``amount`` (must be non-negative)."""
        if amount < 0:
            raise UsageError("increment takes a non-negative amount")
        with self._lock:
            self._value += amount
            self._high_water = max(self._high_water, self._value)

    def decrement(self, amount: int = 1) -> None:
        """Lower the level by ``amount`` (never below zero)."""
        if amount < 0:
            raise UsageError("decrement takes a non-negative amount")
        with self._lock:
            self._value = max(0, self._value - amount)

    @property
    def value(self) -> int:
        """The current level."""
        return self._value

    @property
    def high_water(self) -> int:
        """The highest level ever reached."""
        return self._high_water

    def snapshot(self) -> Dict[str, int]:
        """A JSON-ready ``{"value", "high_water"}`` pair."""
        with self._lock:
            return {"value": self._value, "high_water": self._high_water}

    def __repr__(self) -> str:
        return f"Gauge({self._value}, high_water={self._high_water})"


class LatencyHistogram:
    """A fixed-bucket latency histogram over seconds.

    Tracks per-bucket counts plus exact running sum/min/max, so the
    snapshot reports both the distribution shape and the true mean.
    """

    __slots__ = ("_buckets", "_counts", "_sum", "_min", "_max", "_lock")

    def __init__(self, buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self._buckets = tuple(sorted(buckets))
        self._counts = [0] * (len(self._buckets) + 1)  # +1: the +inf bucket
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        """Record one latency observation."""
        with self._lock:
            position = len(self._buckets)
            for index, bound in enumerate(self._buckets):
                if seconds <= bound:
                    position = index
                    break
            self._counts[position] += 1
            self._sum += seconds
            self._min = seconds if self._min is None else min(self._min, seconds)
            self._max = seconds if self._max is None else max(self._max, seconds)

    @property
    def count(self) -> int:
        """How many observations have been recorded."""
        return sum(self._counts)

    @property
    def mean(self) -> float:
        """The exact mean latency (0.0 with no observations)."""
        total = self.count
        return self._sum / total if total else 0.0

    def quantile(self, q: float) -> float:
        """An upper bound on the ``q``-quantile, from the bucket bounds.

        Returns the upper bound of the bucket containing the quantile
        (the recorded maximum for the overflow bucket).
        """
        if not 0.0 <= q <= 1.0:
            raise UsageError(f"quantile must be in [0, 1], got {q}")
        total = self.count
        if total == 0:
            return 0.0
        rank = q * total
        running = 0
        for index, bound in enumerate(self._buckets):
            running += self._counts[index]
            if running >= rank:
                return bound
        return self._max if self._max is not None else self._buckets[-1]

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready summary of the distribution."""
        with self._lock:
            return {
                "count": sum(self._counts),
                "sum": self._sum,
                "mean": self.mean,
                "min": self._min,
                "max": self._max,
                "p50": self.quantile(0.5),
                "p95": self.quantile(0.95),
                "buckets": {
                    f"le_{bound}": count
                    for bound, count in zip(self._buckets, self._counts)
                },
                "overflow": self._counts[-1],
            }


class MetricsRegistry:
    """Named counters and histograms plus a bounded structured event log.

    Counters and histograms are created on first use, so call sites
    never need registration boilerplate; the event log keeps the most
    recent ``event_capacity`` entries with a monotonically increasing
    sequence number and a monotonic-clock offset.
    """

    def __init__(self, event_capacity: int = 10000) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, LatencyHistogram] = {}
        self._events: List[Dict[str, Any]] = []
        self._event_capacity = event_capacity
        self._sequence = 0
        self._epoch = time.monotonic()
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter()
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        with self._lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge()
            return self._gauges[name]

    def histogram(self, name: str) -> LatencyHistogram:
        """The histogram called ``name`` (created on first use)."""
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = LatencyHistogram()
            return self._histograms[name]

    def record_event(self, kind: str, **fields: Any) -> None:
        """Append a structured event (oldest events drop on overflow)."""
        with self._lock:
            self._sequence += 1
            event = {
                "seq": self._sequence,
                "kind": kind,
                "elapsed": time.monotonic() - self._epoch,
            }
            event.update(fields)
            self._events.append(event)
            if len(self._events) > self._event_capacity:
                del self._events[: len(self._events) - self._event_capacity]

    @contextmanager
    def time(self, histogram_name: str):
        """Context manager observing the block's wall time."""
        start = time.monotonic()
        try:
            yield
        finally:
            self.histogram(histogram_name).observe(time.monotonic() - start)

    @property
    def events(self) -> List[Dict[str, Any]]:
        """A copy of the retained events, in order."""
        with self._lock:
            return list(self._events)

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-ready snapshot of every counter, histogram, and event."""
        with self._lock:
            counters = {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            }
            gauges = {
                name: gauge.snapshot()
                for name, gauge in sorted(self._gauges.items())
            }
            histograms = {
                name: histogram.snapshot()
                for name, histogram in sorted(self._histograms.items())
            }
            events = list(self._events)
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "events": events,
        }

    def render(self) -> str:
        """A short human-readable summary (the CLI prints this)."""
        snapshot = self.snapshot()
        lines = ["counters:"]
        for name, value in snapshot["counters"].items():
            lines.append(f"  {name:<32} {value}")
        if snapshot["gauges"]:
            lines.append("gauges (current / high water):")
            for name, data in snapshot["gauges"].items():
                lines.append(
                    f"  {name:<32} {data['value']} / {data['high_water']}"
                )
        if snapshot["histograms"]:
            lines.append("latency (seconds):")
            lines.append(
                f"  {'histogram':<32} {'count':>6} {'mean':>10} "
                f"{'p50':>8} {'p95':>8} {'max':>10}"
            )
            for name, data in snapshot["histograms"].items():
                maximum = data["max"] if data["max"] is not None else 0.0
                lines.append(
                    f"  {name:<32} {data['count']:>6} {data['mean']:>10.6f} "
                    f"{data['p50']:>8.4f} {data['p95']:>8.4f} {maximum:>10.6f}"
                )
        lines.append(f"events recorded: {len(snapshot['events'])}")
        return "\n".join(lines)
