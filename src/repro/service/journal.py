"""The crash-safe write-ahead result journal for ``repro serve-batch``.

Long hard-side batches are exactly the runs where a crash mid-batch
loses the most work, so every finished deterministic result is appended
to an on-disk journal *before* the batch continues.  The format is
line-oriented and self-verifying::

    <sha256-hex-of-payload> <payload-json>\\n

where the payload is ``{"fingerprint": <request fingerprint>,
"result": <JobResult.to_dict()>}`` with sorted keys.  Appends are
flushed and ``fsync``-ed one line at a time, so after a crash — clean
SIGINT or a hard ``kill -9`` — the journal holds every completed result
plus at most one torn final line, which the per-line checksum detects
and :func:`read_journal` skips.

Replay is keyed by the **canonical request fingerprint**
(:mod:`repro.service.fingerprint`), not by job id: a resumed run may
reorder, rename, or deduplicate jobs and still reuse every result whose
question was already answered.

Only deterministic statuses (``ok``, ``degraded`` — the same set the
result cache accepts) are journaled: a ``timeout`` or worker ``error``
from the interrupted run should be *recomputed* on resume, not
replayed.

Examples
--------
>>> import tempfile, pathlib
>>> from repro.service.jobs import JobResult
>>> path = pathlib.Path(tempfile.mkdtemp()) / "journal.jsonl"
>>> with JournalWriter(path) as journal:
...     _ = journal.append(JobResult(
...         job_id="j1", status="ok", is_optimal=True,
...         semantics="global", method="GRepCheck1FD", fingerprint="abc",
...     ))
>>> replayed, corrupt = read_journal(path)
>>> replayed["abc"]["status"], corrupt
('ok', 0)
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from repro.exceptions import JournalCorruptError, UsageError
from repro.service.jobs import JobResult

__all__ = ["JOURNALED_STATUSES", "JournalWriter", "read_journal"]

#: Statuses durable enough to replay: deterministic for fixed inputs
#: and budget (mirrors the result cache's cacheability rule).
JOURNALED_STATUSES = frozenset({"ok", "degraded"})


def _checksum(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class JournalWriter:
    """Appends fsync-durable, checksummed result lines to a journal.

    Opening is append-mode, so resuming a run keeps extending the same
    file.  Safe to use as a context manager; :meth:`close` is
    idempotent.  Appends are serialized under a lock, so one journal can
    back concurrent submitters (the async daemon journals from many
    executor threads at once) without interleaving lines.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle: Optional[Any] = open(  # noqa: SIM115 - long-lived handle
            self.path, "a", encoding="utf-8"
        )
        self.appended = 0
        self._lock = threading.Lock()
        self._heal_torn_tail()

    def _heal_torn_tail(self) -> None:
        """Start appends on a fresh line after a torn final line.

        A hard kill can leave the file ending mid-line (no newline).
        Appending straight onto that tail would corrupt the *new* record
        too, so seal the torn line with a newline first; the checksum
        check quarantines it on replay either way.
        """
        with open(self.path, "rb") as probe:
            probe.seek(0, os.SEEK_END)
            if probe.tell() == 0:
                return
            probe.seek(-1, os.SEEK_END)
            torn = probe.read(1) != b"\n"
        if torn:
            self._handle.write("\n")
            self._handle.flush()

    def append(self, result: JobResult) -> bool:
        """Durably append one result; returns whether it was journaled.

        Non-deterministic statuses and results without a fingerprint are
        skipped (returns False).  The line hits the disk (write + flush
        + ``os.fsync``) before this returns — a crash at any later point
        cannot lose it.
        """
        if result.status not in JOURNALED_STATUSES or not result.fingerprint:
            return False
        payload = json.dumps(
            {"fingerprint": result.fingerprint, "result": result.to_dict()},
            sort_keys=True,
        )
        with self._lock:
            if self._handle is None:
                raise UsageError("journal is closed")
            self._handle.write(f"{_checksum(payload)} {payload}\n")
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self.appended += 1
        return True

    def close(self) -> None:
        """Flush and close the journal (idempotent)."""
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
                os.fsync(self._handle.fileno())
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def read_journal(path: Union[str, Path]) -> Tuple[Dict[str, Dict], int]:
    """Replay a journal: ``(fingerprint -> result dict, skipped lines)``.

    Lines failing their checksum, failing to parse, or missing the
    expected shape are *skipped and counted*, not fatal: a hard kill
    legitimately tears the final line, and a resume must still replay
    everything before it.  Later lines win on duplicate fingerprints
    (they were computed later).  A missing file is an empty journal.
    """
    path = Path(path)
    if not path.exists():
        return {}, 0
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as exc:
        raise JournalCorruptError(f"cannot read journal {path}: {exc}") from exc
    replayed: Dict[str, Dict] = {}
    skipped = 0
    for line in text.splitlines():
        if not line.strip():
            continue
        checksum, separator, payload = line.partition(" ")
        if not separator or _checksum(payload) != checksum:
            skipped += 1
            continue
        try:
            document = json.loads(payload)
        except json.JSONDecodeError:
            skipped += 1
            continue
        if (
            not isinstance(document, dict)
            or not isinstance(document.get("fingerprint"), str)
            or not isinstance(document.get("result"), dict)
            or document["result"].get("status") not in JOURNALED_STATUSES
        ):
            skipped += 1
            continue
        replayed[document["fingerprint"]] = document["result"]
    return replayed, skipped
