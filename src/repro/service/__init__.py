"""The batch repair-checking service layer.

Everything the repo's entry points need to serve repair-checking
traffic at batch granularity:

* :class:`~repro.service.service.RepairService` — the front-end: a
  priority-ordered batch of jobs in, results + observability out, with
  a worker pool, per-job timeouts, bounded retry, an LRU result cache
  keyed by canonical fingerprints, and graceful degradation (budgeted
  improvement search) on the coNP-hard side of the dichotomies;
* :mod:`~repro.service.fingerprint` — canonical fingerprints of
  schemas, instances, priorities, and whole check requests;
* :mod:`~repro.service.cache` / :mod:`~repro.service.metrics` — the
  supporting LRU cache and counters/histograms/event-log registry;
* :mod:`~repro.service.batch_io` — JSON/CSV job files and JSONL
  results for the ``repro serve-batch`` CLI;
* :mod:`~repro.service.resilience` /
  :mod:`~repro.service.journal` /
  :mod:`~repro.service.faults` — the fault-tolerance layer: seeded
  retry jitter, the per-problem circuit breaker, supervised-pool
  bookkeeping, the crash-safe write-ahead result journal behind
  ``serve-batch --journal/--resume``, and the deterministic
  fault-injection harness that tests all of it;
* :mod:`~repro.service.store` — the persistent content-addressed
  result store (WAL-mode sqlite, checksummed rows, heal-on-open): the
  durable cache tier under the LRU, shared across worker processes and
  surviving their restarts.
"""

from repro.service.batch_io import (
    candidate_from_spec,
    load_batch_file,
    load_problem_from_csv_spec,
    write_metrics_json,
    write_results_jsonl,
)
from repro.service.cache import LRUCache
from repro.service.faults import (
    FaultPlan,
    FaultyRunner,
    FleetFaultPlan,
    SkewedClock,
    parse_fault_spec,
    parse_fleet_fault_spec,
)
from repro.service.fingerprint import (
    fingerprint_check_request,
    fingerprint_compute_request,
    fingerprint_instance,
    fingerprint_prioritizing,
    fingerprint_priority,
    fingerprint_schema,
)
from repro.service.jobs import (
    COMPUTE_KINDS,
    JOB_STATUSES,
    BatchReport,
    ComputeJob,
    ComputeResult,
    JobResult,
    RepairJob,
)
from repro.service.journal import (
    JOURNALED_STATUSES,
    JournalWriter,
    read_journal,
)
from repro.service.metrics import Counter, LatencyHistogram, MetricsRegistry
from repro.service.policy import (
    ComputeOutcome,
    Outcome,
    execute_check,
    execute_count,
    execute_repair,
    needs_degradation,
)
from repro.service.resilience import (
    CircuitBreaker,
    PoolSupervisor,
    RetryPolicy,
    unit_interval,
)
from repro.service.service import RepairService, ServiceConfig
from repro.service.store import STORED_STATUSES, SqliteStore

__all__ = [
    "RepairService",
    "ServiceConfig",
    "RepairJob",
    "JobResult",
    "ComputeJob",
    "ComputeResult",
    "BatchReport",
    "JOB_STATUSES",
    "COMPUTE_KINDS",
    "Outcome",
    "ComputeOutcome",
    "execute_check",
    "execute_count",
    "execute_repair",
    "needs_degradation",
    "LRUCache",
    "MetricsRegistry",
    "Counter",
    "LatencyHistogram",
    "fingerprint_schema",
    "fingerprint_instance",
    "fingerprint_priority",
    "fingerprint_prioritizing",
    "fingerprint_check_request",
    "fingerprint_compute_request",
    "load_batch_file",
    "load_problem_from_csv_spec",
    "candidate_from_spec",
    "write_results_jsonl",
    "write_metrics_json",
    "RetryPolicy",
    "CircuitBreaker",
    "PoolSupervisor",
    "unit_interval",
    "JournalWriter",
    "read_journal",
    "JOURNALED_STATUSES",
    "FaultPlan",
    "FaultyRunner",
    "FleetFaultPlan",
    "SkewedClock",
    "parse_fault_spec",
    "parse_fleet_fault_spec",
    "SqliteStore",
    "STORED_STATUSES",
]
