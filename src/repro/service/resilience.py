"""Fault-tolerance primitives for the batch service.

Three building blocks keep :meth:`~repro.service.service.RepairService.
run_batch` inside its "never exceptions out of the batch" contract even
when the infrastructure under it misbehaves:

* :class:`RetryPolicy` — the *one* implementation of the retry backoff
  schedule.  Full jitter (``uniform(0, min(backoff_base * 2**k,
  backoff_cap))``) decorrelates retry storms across workers, and the
  jitter is **seeded and deterministic**: the delay for ``(key,
  attempt)`` is a pure function of the policy's seed, so the serial
  retry loop and the in-worker process-pool copy produce bit-identical
  attempt/delay sequences (property-tested in
  ``tests/service/test_resilience.py``).
* :class:`CircuitBreaker` — a per-problem closed → open → half-open
  breaker over an **injectable monotonic clock**.  A problem whose jobs
  keep failing at the worker level is fast-failed as ``status="error"``
  instead of burning the full retry + backoff budget on every remaining
  job; after ``reset_seconds`` one half-open probe decides whether the
  problem has recovered.
* :class:`PoolSupervisor` — bookkeeping for the supervised executor:
  bounded pool-resurrection budget, restart metrics, and the per-job
  dispatch counter (``attempt_base``) that re-dispatched jobs carry so
  retry accounting and fault schedules survive a pool rebuild.

Determinism notes: nothing in this module reads the wall clock or the
global RNG.  Jitter and fault decisions hash ``(seed, key, attempt)``
through SHA-256, so they are identical across processes, platforms, and
``PYTHONHASHSEED``.
"""

from __future__ import annotations

import hashlib
import inspect
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.exceptions import UsageError

__all__ = [
    "unit_interval",
    "RetryPolicy",
    "BreakerState",
    "CircuitBreaker",
    "PoolSupervisor",
    "runner_accepts_attempt",
    "call_runner",
]


def unit_interval(seed: int, *parts: Any) -> float:
    """A deterministic sample from ``[0, 1)`` keyed by ``(seed, *parts)``.

    SHA-256 based: independent of ``PYTHONHASHSEED``, process, and
    platform, so every component that needs "randomness" (retry jitter,
    fault schedules) stays reproducible.
    """
    text = "|".join([str(seed), *(str(part) for part in parts)])
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


class RetryPolicy:
    """Deterministic full-jitter exponential backoff.

    The ``attempt``-th failure (1-based) of the job keyed ``key`` sleeps
    ``unit_interval(seed, key, attempt) * min(base * 2**(attempt-1),
    cap)`` seconds.  Full jitter keeps concurrent retries from
    synchronizing into waves, while seeding keeps every schedule
    reproducible — and identical between the coordinator-side retry loop
    and the process-pool worker copy.
    """

    __slots__ = ("base", "cap", "seed")

    def __init__(self, base: float, cap: float, seed: int = 0) -> None:
        if base < 0 or cap < 0:
            raise UsageError(
                f"backoff base/cap must be >= 0, got {base}/{cap}"
            )
        self.base = base
        self.cap = cap
        self.seed = seed

    def bound(self, attempt: int) -> float:
        """The un-jittered cap for the ``attempt``-th failure (1-based)."""
        return min(self.base * (2 ** (attempt - 1)), self.cap)

    def delay(self, key: str, attempt: int) -> float:
        """The jittered sleep after the ``attempt``-th failure of ``key``."""
        return self.bound(attempt) * unit_interval(self.seed, key, attempt)


#: Circuit-breaker states.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"


@dataclass
class BreakerState:
    """Mutable per-problem breaker bookkeeping."""

    state: str = CLOSED
    consecutive_failures: int = 0
    opened_at: float = 0.0


class CircuitBreaker:
    """A per-key closed → open → half-open circuit breaker.

    ``threshold`` consecutive *worker-level* failures on one key open
    the circuit: further :meth:`allow` calls return False (callers
    fast-fail the job) until ``reset_seconds`` have elapsed on the
    injected monotonic ``clock``, at which point exactly one probe is
    let through (half-open).  A successful probe closes the circuit; a
    failed one re-opens it and restarts the reset timer.

    ``threshold=0`` disables the breaker entirely (every ``allow`` is
    True, nothing is recorded).

    The clock is injectable so breaker behaviour is deterministic under
    test and under the chaos harness's skewed clocks; production uses
    ``time.monotonic``.
    """

    def __init__(
        self,
        threshold: int,
        reset_seconds: float,
        clock: Callable[[], float] = time.monotonic,
        metrics: Optional[Any] = None,
    ) -> None:
        if threshold < 0:
            raise UsageError(f"breaker threshold must be >= 0, got {threshold}")
        if reset_seconds < 0:
            raise UsageError(
                f"breaker reset_seconds must be >= 0, got {reset_seconds}"
            )
        self.threshold = threshold
        self.reset_seconds = reset_seconds
        self._clock = clock
        self._metrics = metrics
        self._states: Dict[str, BreakerState] = {}
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        """Whether the breaker is active (``threshold > 0``)."""
        return self.threshold > 0

    def _count(self, name: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(name).increment()

    def _event(self, kind: str, **fields: Any) -> None:
        if self._metrics is not None:
            self._metrics.record_event(kind, **fields)

    def state_of(self, key: str) -> str:
        """The current state for ``key`` (``closed`` if never seen)."""
        with self._lock:
            entry = self._states.get(key)
            return entry.state if entry is not None else CLOSED

    def allow(self, key: str) -> bool:
        """Whether a job for ``key`` may execute right now.

        Transitions open → half-open (admitting the single probe) when
        the reset timeout has elapsed.
        """
        if not self.enabled:
            return True
        with self._lock:
            entry = self._states.get(key)
            if entry is None or entry.state == CLOSED:
                return True
            if entry.state == OPEN:
                if self._clock() - entry.opened_at >= self.reset_seconds:
                    entry.state = HALF_OPEN
                    self._count("breaker.half_open")
                    self._event("breaker_half_open", key=key)
                    return True
                return False
            # HALF_OPEN: one probe is already in flight.
            return False

    def record(self, key: str, failure: bool) -> None:
        """Record one executed job's outcome for ``key``.

        Only *worker-level* failures should be recorded as failures;
        deterministic job errors (malformed input) say nothing about the
        health of the problem's workers.
        """
        if not self.enabled:
            return
        with self._lock:
            entry = self._states.setdefault(key, BreakerState())
            if not failure:
                if entry.state != CLOSED:
                    self._count("breaker.close")
                    self._event("breaker_close", key=key)
                entry.state = CLOSED
                entry.consecutive_failures = 0
                return
            entry.consecutive_failures += 1
            tripped = (
                entry.state == HALF_OPEN
                or entry.consecutive_failures >= self.threshold
            )
            if tripped and entry.state != OPEN:
                entry.state = OPEN
                entry.opened_at = self._clock()
                self._count("breaker.open")
                self._event(
                    "breaker_open",
                    key=key,
                    consecutive_failures=entry.consecutive_failures,
                )


class PoolSupervisor:
    """Restart accounting for the supervised pool executor.

    Tracks how many times the pool may still be rebuilt after a worker
    death, and emits the ``pool.restarts`` / ``pool.lost_jobs`` metrics
    the acceptance contract exposes.
    """

    def __init__(self, max_restarts: int, metrics: Optional[Any] = None) -> None:
        if max_restarts < 0:
            raise UsageError(
                f"max_pool_restarts must be >= 0, got {max_restarts}"
            )
        self.max_restarts = max_restarts
        self.restarts = 0
        self._metrics = metrics

    def can_restart(self) -> bool:
        """Whether the resurrection budget allows another rebuild."""
        return self.restarts < self.max_restarts

    def record_restart(self, lost_jobs: int) -> None:
        """Record one pool rebuild that re-dispatches ``lost_jobs`` jobs."""
        self.restarts += 1
        if self._metrics is not None:
            self._metrics.counter("pool.restarts").increment()
            self._metrics.counter("pool.lost_jobs").increment(lost_jobs)
            self._metrics.record_event(
                "pool_restart", restart=self.restarts, lost_jobs=lost_jobs
            )


def runner_accepts_attempt(runner: Callable[..., Any]) -> bool:
    """Whether ``runner`` takes the optional 4th ``attempt`` argument.

    The runner seam is historically ``(job, node_budget, timeout)``;
    fault-aware runners (the chaos harness) additionally receive the
    global 1-based attempt index so fault schedules stay keyed by
    ``(job_id, attempt)`` across retries *and* pool rebuilds.  Inspected
    once per service, not per call.
    """
    try:
        signature = inspect.signature(runner)
    except (TypeError, ValueError):  # builtins without signatures
        return False
    positional = 0
    for parameter in signature.parameters.values():
        if parameter.kind in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        ):
            positional += 1
        elif parameter.kind == inspect.Parameter.VAR_POSITIONAL:
            return True
    return positional >= 4


def call_runner(
    runner: Callable[..., Any],
    takes_attempt: bool,
    job: Any,
    node_budget: Optional[int],
    timeout: Optional[float],
    attempt: int,
) -> Any:
    """Invoke ``runner`` with or without the attempt index."""
    if takes_attempt:
        return runner(job, node_budget, timeout, attempt)
    return runner(job, node_budget, timeout)
