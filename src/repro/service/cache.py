"""A thread-safe LRU result cache keyed by canonical fingerprints.

The service's unit of reuse is one *check request* (prioritizing
instance + candidate + semantics + method + budget), keyed by
:func:`~repro.service.fingerprint.fingerprint_check_request`.  The cache
is a plain bounded LRU: batch traffic over shared schemas and
overlapping instances exhibits heavy repetition (the motivating
workloads re-check the same candidates while priorities are curated),
and recency is the right eviction signal for that shape.

Hit/miss/eviction counts are tracked on the cache itself so the metrics
snapshot can report reuse rates without wrapping every call site.

Examples
--------
>>> cache = LRUCache(capacity=2)
>>> cache.put("a", 1); cache.put("b", 2)
>>> cache.get("a")
1
>>> cache.put("c", 3)      # evicts "b", the least recently used
>>> cache.get("b") is None
True
>>> cache.stats()["evictions"]
1
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict

from repro.exceptions import UsageError

__all__ = ["LRUCache"]


class LRUCache:
    """A bounded, thread-safe, least-recently-used mapping.

    ``capacity=0`` disables storage entirely (every lookup misses);
    benchmarks use that to measure cold-path throughput.
    """

    def __init__(self, capacity: int = 2048) -> None:
        if capacity < 0:
            raise UsageError(f"capacity must be >= 0, got {capacity}")
        self._capacity = capacity
        self._data: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def capacity(self) -> int:
        """The maximum number of entries retained."""
        return self._capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def get(self, key: str, default: Any = None) -> Any:
        """The cached value (marking it most recently used), or
        ``default``; every call counts as a hit or a miss."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self._hits += 1
                return self._data[key]
            self._misses += 1
            return default

    def peek(self, key: str) -> bool:
        """Whether ``key`` is cached, without touching recency or stats."""
        with self._lock:
            return key in self._data

    def put(self, key: str, value: Any) -> None:
        """Insert (or refresh) ``key``, evicting the LRU entry on
        overflow."""
        if self._capacity == 0:
            return
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self._data[key] = value
                return
            self._data[key] = value
            if len(self._data) > self._capacity:
                self._data.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        with self._lock:
            self._data.clear()

    @property
    def hit_rate(self) -> float:
        """Hits over lookups, or 0.0 before the first lookup."""
        with self._lock:
            lookups = self._hits + self._misses
            return self._hits / lookups if lookups else 0.0

    def stats(self) -> Dict[str, Any]:
        """A snapshot of size and hit/miss/eviction counts."""
        with self._lock:
            lookups = self._hits + self._misses
            return {
                "capacity": self._capacity,
                "size": len(self._data),
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "hit_rate": self._hits / lookups if lookups else 0.0,
            }

    def __repr__(self) -> str:
        return (
            f"LRUCache({len(self)}/{self._capacity} entries, "
            f"{self._hits} hits, {self._misses} misses)"
        )
