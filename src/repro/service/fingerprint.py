"""Canonical fingerprints for schemas, instances, and check requests.

The batch service reuses results across jobs whenever two jobs ask the
same question; "the same question" is decided structurally, not by
object identity, so every cacheable object gets a *canonical
fingerprint*: a SHA-256 digest of a deterministic text rendering that is
independent of construction order, iteration order, and process (no
``hash()`` randomization, no ``id()``).

The renderings mirror the library's equality semantics:

* a :class:`~repro.core.signature.RelationSymbol` fingerprints by name
  and arity only — attribute *names* are cosmetic (``compare=False`` on
  the dataclass field) and must not split cache entries;
* a :class:`~repro.core.schema.Schema` adds its FDs, each as sorted
  attribute positions;
* an :class:`~repro.core.instance.Instance` renders its facts in sorted
  order with type-tagged values (so ``1`` and ``"1"`` — distinct facts —
  fingerprint differently);
* a :class:`~repro.core.priority.PrioritizingInstance` combines schema,
  instance, sorted priority edges, and the ccp flag.

Fingerprints of the immutable core objects are memoized (keyed on the
objects themselves, which hash structurally), so a batch of thousands of
jobs over one shared instance canonicalizes it once.

Examples
--------
>>> from repro.core import Schema
>>> a = Schema.single_relation(["1 -> 2"], arity=2)
>>> b = Schema.single_relation(["1 -> 2"], arity=2)
>>> fingerprint_schema(a) == fingerprint_schema(b)
True
>>> fingerprint_schema(a) == fingerprint_schema(
...     Schema.single_relation(["2 -> 1"], arity=2)
... )
False
"""

from __future__ import annotations

import hashlib
import json
from functools import lru_cache
from typing import Any, Optional

from repro.core.fact import Fact
from repro.core.instance import Instance
from repro.core.priority import PrioritizingInstance, PriorityRelation
from repro.core.schema import Schema
from repro.cqa.queries import ConjunctiveQuery, query_to_dict

__all__ = [
    "fingerprint_schema",
    "fingerprint_instance",
    "fingerprint_priority",
    "fingerprint_prioritizing",
    "fingerprint_check_request",
    "fingerprint_compute_request",
]


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _canonical_value(value: Any) -> str:
    """A type-tagged rendering of one fact constant.

    ``repr`` alone would conflate values whose reprs collide across
    types (``True`` vs ``1`` hash-compare equal but ``"1"`` vs ``1`` do
    not repr-collide; tagging makes the rendering injective for all the
    scalar types the IO layer supports, and deterministic for any value
    with a stable ``repr``).
    """
    return f"{type(value).__name__}:{value!r}"


def _canonical_fact(fact: Fact) -> str:
    values = ",".join(_canonical_value(value) for value in fact.values)
    return f"{fact.relation}({values})"


@lru_cache(maxsize=1024)
def fingerprint_schema(schema: Schema) -> str:
    """The canonical fingerprint of a schema (signature + FDs)."""
    relations = sorted(
        f"{relation.name}/{relation.arity}" for relation in schema.signature
    )
    fds = sorted(
        "{}:{}->{}".format(
            fd.relation,
            ",".join(map(str, sorted(fd.lhs))),
            ",".join(map(str, sorted(fd.rhs))),
        )
        for fd in schema.fds
    )
    return _digest("schema|" + ";".join(relations) + "|" + ";".join(fds))


@lru_cache(maxsize=8192)
def fingerprint_instance(instance: Instance) -> str:
    """The canonical fingerprint of an instance (its fact set)."""
    facts = sorted(_canonical_fact(fact) for fact in instance.facts)
    return _digest("instance|" + ";".join(facts))


@lru_cache(maxsize=8192)
def fingerprint_priority(priority: PriorityRelation) -> str:
    """The canonical fingerprint of a priority relation (its edge set)."""
    edges = sorted(
        _canonical_fact(better) + ">" + _canonical_fact(worse)
        for better, worse in priority.edges
    )
    return _digest("priority|" + ";".join(edges))


def fingerprint_prioritizing(prioritizing: PrioritizingInstance) -> str:
    """The canonical fingerprint of a prioritizing instance.

    Combines the schema, instance, and priority fingerprints with the
    ccp flag (the flag changes which dichotomy applies, so it must split
    cache entries even when the edges happen to be conflict-only).
    """
    return _digest(
        "prioritizing|"
        + fingerprint_schema(prioritizing.schema)
        + "|"
        + fingerprint_instance(prioritizing.instance)
        + "|"
        + fingerprint_priority(prioritizing.priority)
        + "|ccp=" + str(prioritizing.is_ccp)
    )


def fingerprint_check_request(
    prioritizing: PrioritizingInstance,
    candidate: Instance,
    semantics: str = "global",
    method: str = "auto",
    node_budget: Optional[int] = None,
) -> str:
    """The cache key of one repair-check request.

    Includes everything the answer depends on: the full prioritizing
    instance, the candidate, the semantics, the method, and the node
    budget (a budgeted run can return ``degraded`` where a larger budget
    returns an answer, so budgets must not share entries).
    """
    return _digest(
        "check|"
        + fingerprint_prioritizing(prioritizing)
        + "|"
        + fingerprint_instance(candidate)
        + f"|{semantics}|{method}|budget={node_budget}"
    )


def fingerprint_compute_request(
    prioritizing: PrioritizingInstance,
    kind: str,
    semantics: str = "global",
    seed: int = 0,
    node_budget: Optional[int] = None,
    query: Optional[ConjunctiveQuery] = None,
    max_repairs: Optional[int] = None,
) -> str:
    """The cache key of one compute request (repair or count).

    Includes everything the payload depends on: the seed drives the
    construction's tie-breaking (different seeds may legitimately build
    different optimal repairs), the node budget bounds the anytime
    climb, and the enumeration cap changes when a count degrades —
    none of them may share cache entries.  The query renders through
    its canonical wire form (term order is structural, so equal
    queries render identically).
    """
    query_rendering = (
        "none"
        if query is None
        else json.dumps(query_to_dict(query), sort_keys=True)
    )
    return _digest(
        "compute|"
        + fingerprint_prioritizing(prioritizing)
        + f"|{kind}|{semantics}|seed={seed}|budget={node_budget}"
        + f"|cap={max_repairs}|query={query_rendering}"
    )
