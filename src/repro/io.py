"""JSON (de)serialization for schemas, instances, and priorities.

A downstream user needs to persist cleaning problems — a schema, the
dirty instance, the priorities — and reload them bit-exactly.  The
format is plain JSON:

.. code-block:: json

    {
      "schema": {
        "relations": [
          {"name": "BookLoc", "arity": 3,
           "attribute_names": ["isbn", "genre", "lib"]}
        ],
        "fds": [{"relation": "BookLoc", "lhs": [1], "rhs": [2]}]
      },
      "instance": [
        {"relation": "BookLoc", "values": ["b1", "fiction", "lib1"]}
      ],
      "priority": [
        {"better": 0, "worse": 1}
      ],
      "ccp": false
    }

Priority edges refer to facts by their index in the ``"instance"``
array, keeping the file free of duplication.  Constants round-trip for
JSON-representable values (strings, ints, floats, bools, None); tuples
inside fact values are not supported by the format and are rejected at
save time.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.core.fact import Fact
from repro.core.fd import FD
from repro.core.instance import Instance
from repro.core.priority import PrioritizingInstance, PriorityRelation
from repro.core.schema import Schema
from repro.core.signature import RelationSymbol, Signature
from repro.exceptions import ReproError, UsageError
from repro.fsutil import atomic_write_text

__all__ = [
    "atomic_write_text",
    "parse_schema_spec",
    "schema_to_dict",
    "schema_from_dict",
    "instance_to_list",
    "instance_from_list",
    "prioritizing_to_dict",
    "prioritizing_from_dict",
    "save_prioritizing_instance",
    "load_prioritizing_instance",
    "save_schema",
    "load_schema",
]

_SCALARS = (str, int, float, bool, type(None))


def parse_schema_spec(spec: str) -> Schema:
    """Parse the textual schema syntax into a :class:`Schema`.

    This is the grammar shared by the CLI (``repro classify "R:2; 1 ->
    2"``), batch-job files, and the daemon's ``classify`` operation —
    it lives here rather than in :mod:`repro.cli` so the runtime layers
    (``service``, ``server``) never import the command-line front end.

    Examples
    --------
    >>> schema = parse_schema_spec("R:3; R: 1 -> 2; R: 2 -> 3")
    >>> sorted(schema.relation_names())
    ['R']
    """
    parts = [part.strip() for part in spec.split(";") if part.strip()]
    if not parts:
        raise UsageError("empty schema specification")
    relations = {}
    for decl in parts[0].split(","):
        name, _, arity_text = decl.partition(":")
        relations[name.strip()] = int(arity_text)
    fd_texts = parts[1:]
    if len(relations) == 1:
        only = next(iter(relations))
        fd_texts = [
            text if ":" in text else f"{only}: {text}" for text in fd_texts
        ]
    return Schema.parse(relations, fd_texts)


def schema_to_dict(schema: Schema) -> Dict[str, Any]:
    """Serialize a schema to a JSON-ready dict."""
    relations = []
    for relation in schema.signature:
        entry: Dict[str, Any] = {
            "name": relation.name,
            "arity": relation.arity,
        }
        if relation.attribute_names is not None:
            entry["attribute_names"] = list(relation.attribute_names)
        relations.append(entry)
    relations.sort(key=lambda e: e["name"])
    fds = sorted(
        (
            {
                "relation": fd.relation,
                "lhs": sorted(fd.lhs),
                "rhs": sorted(fd.rhs),
            }
            for fd in schema.fds
        ),
        key=str,
    )
    return {"relations": relations, "fds": fds}


def schema_from_dict(data: Dict[str, Any]) -> Schema:
    """Deserialize a schema from :func:`schema_to_dict` output."""
    try:
        relations = [
            RelationSymbol(
                entry["name"],
                entry["arity"],
                tuple(entry["attribute_names"])
                if "attribute_names" in entry
                else None,
            )
            for entry in data["relations"]
        ]
        fds = [
            FD(entry["relation"], entry["lhs"], entry["rhs"])
            for entry in data.get("fds", [])
        ]
    except (KeyError, TypeError) as exc:
        raise ReproError(f"malformed schema document: {exc}") from exc
    return Schema(Signature(relations), fds)


def _check_serializable(fact: Fact) -> None:
    for value in fact.values:
        if not isinstance(value, _SCALARS):
            raise ReproError(
                f"fact {fact} holds a non-JSON-scalar value "
                f"({type(value).__name__}); the JSON format supports "
                f"str/int/float/bool/None constants only"
            )


def instance_to_list(instance: Instance) -> List[Dict[str, Any]]:
    """Serialize an instance to a JSON-ready fact list (stable order)."""
    entries = []
    for fact in sorted(instance.facts, key=str):
        _check_serializable(fact)
        entries.append(
            {"relation": fact.relation, "values": list(fact.values)}
        )
    return entries


def instance_from_list(
    schema: Schema, entries: List[Dict[str, Any]]
) -> Instance:
    """Deserialize an instance from :func:`instance_to_list` output."""
    try:
        facts = [
            Fact(entry["relation"], tuple(entry["values"]))
            for entry in entries
        ]
    except (KeyError, TypeError) as exc:
        raise ReproError(f"malformed instance document: {exc}") from exc
    return Instance(schema.signature, facts)


def prioritizing_to_dict(
    prioritizing: PrioritizingInstance,
) -> Dict[str, Any]:
    """Serialize a prioritizing instance (schema + facts + priority)."""
    fact_entries = instance_to_list(prioritizing.instance)
    index_of = {
        Fact(entry["relation"], tuple(entry["values"])): position
        for position, entry in enumerate(fact_entries)
    }
    priority_entries = sorted(
        (
            {"better": index_of[better], "worse": index_of[worse]}
            for better, worse in prioritizing.priority.edges
        ),
        key=lambda e: (e["better"], e["worse"]),
    )
    return {
        "schema": schema_to_dict(prioritizing.schema),
        "instance": fact_entries,
        "priority": priority_entries,
        "ccp": prioritizing.is_ccp,
    }


def prioritizing_from_dict(data: Dict[str, Any]) -> PrioritizingInstance:
    """Deserialize a prioritizing instance; re-validates everything."""
    schema = schema_from_dict(data["schema"])
    instance = instance_from_list(schema, data["instance"])
    facts_in_order = [
        Fact(entry["relation"], tuple(entry["values"]))
        for entry in data["instance"]
    ]
    try:
        edges = [
            (facts_in_order[entry["better"]], facts_in_order[entry["worse"]])
            for entry in data.get("priority", [])
        ]
    except (IndexError, KeyError, TypeError) as exc:
        raise ReproError(f"malformed priority document: {exc}") from exc
    return PrioritizingInstance(
        schema,
        instance,
        PriorityRelation(edges),
        ccp=bool(data.get("ccp", False)),
    )


def save_prioritizing_instance(
    prioritizing: PrioritizingInstance, path: Union[str, Path]
) -> None:
    """Write a prioritizing instance to a JSON file."""
    document = prioritizing_to_dict(prioritizing)
    Path(path).write_text(json.dumps(document, indent=2, sort_keys=True))


def load_prioritizing_instance(
    path: Union[str, Path]
) -> PrioritizingInstance:
    """Read a prioritizing instance from a JSON file."""
    return prioritizing_from_dict(json.loads(Path(path).read_text()))


def save_schema(schema: Schema, path: Union[str, Path]) -> None:
    """Write a schema to a JSON file."""
    Path(path).write_text(
        json.dumps(schema_to_dict(schema), indent=2, sort_keys=True)
    )


def load_schema(path: Union[str, Path]) -> Schema:
    """Read a schema from a JSON file."""
    return schema_from_dict(json.loads(Path(path).read_text()))
