"""Schemas: a signature together with a set of functional dependencies.

A schema ``S = (R, Δ)`` (Section 2.2) is the fixed part of every problem
in the paper: complexity is measured *per schema* (data complexity), and
the dichotomy theorems classify schemas.  This module binds FDs to the
signature, validates them, and exposes the per-relation restriction
``Δ|R`` used throughout the paper (Proposition 3.5 reduces everything to
single-relation schemas).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Optional, Tuple

from repro.core.fd import FD
from repro.core.fdset import FDSet
from repro.core.instance import Instance
from repro.core.signature import RelationSymbol, Signature
from repro.exceptions import UnknownRelationError

__all__ = ["Schema"]


class Schema:
    """An immutable schema ``(signature, Δ)``.

    Examples
    --------
    The paper's running example (Example 2.2):

    >>> sig = Signature([
    ...     RelationSymbol("BookLoc", 3, ("isbn", "genre", "lib")),
    ...     RelationSymbol("LibLoc", 2, ("lib", "loc")),
    ... ])
    >>> schema = Schema(sig, [
    ...     FD("BookLoc", {1}, {2}),
    ...     FD("LibLoc", {1}, {2}),
    ...     FD("LibLoc", {2}, {1}),
    ... ])
    >>> len(schema.fds_for("BookLoc"))
    1
    """

    __slots__ = ("_signature", "_fds", "_by_relation")

    def __init__(self, signature: Signature, fds: Iterable[FD] = ()) -> None:
        fd_tuple = tuple(fds)
        for fd in fd_tuple:
            if fd.relation not in signature:
                raise UnknownRelationError(fd.relation)
            fd.validate_for_arity(signature.arity(fd.relation))
        self._signature = signature
        self._fds: FrozenSet[FD] = frozenset(fd_tuple)
        by_relation: Dict[str, FDSet] = {}
        for relation in signature:
            relation_fds = frozenset(
                fd for fd in self._fds if fd.relation == relation.name
            )
            by_relation[relation.name] = FDSet(
                relation.name, relation.arity, relation_fds
            )
        self._by_relation = by_relation

    # -- construction helpers -----------------------------------------------------

    @classmethod
    def single_relation(
        cls,
        fd_texts: Iterable[str],
        relation: str = "R",
        arity: Optional[int] = None,
        attribute_names: Optional[Tuple[str, ...]] = None,
    ) -> "Schema":
        """Build a one-relation schema from FD shorthand strings.

        If ``arity`` is omitted it is inferred as the largest attribute
        mentioned by any FD (and at least 1).

        Examples
        --------
        >>> schema = Schema.single_relation(["1 -> 2", "2 -> 1"], arity=2)
        >>> schema.relation_names() == frozenset({'R'})
        True
        """
        fds = [FD.parse(text, relation=relation) for text in fd_texts]
        if arity is None:
            mentioned = [p for fd in fds for p in fd.lhs | fd.rhs]
            arity = max(mentioned) if mentioned else 1
        signature = Signature.single(relation, arity, attribute_names)
        return cls(signature, fds)

    @classmethod
    def parse(
        cls,
        relations: Mapping[str, int],
        fd_texts: Iterable[str],
    ) -> "Schema":
        """Build a schema from ``{name: arity}`` plus FD shorthand strings.

        Examples
        --------
        >>> schema = Schema.parse(
        ...     {"R": 3, "S": 2},
        ...     ["R: 1 -> 2", "S: {} -> 1"],
        ... )
        >>> sorted(schema.relation_names())
        ['R', 'S']
        """
        signature = Signature(
            [RelationSymbol(name, arity) for name, arity in relations.items()]
        )
        fds = [FD.parse(text) for text in fd_texts]
        return cls(signature, fds)

    # -- accessors -------------------------------------------------------------------

    @property
    def signature(self) -> Signature:
        """The schema's signature."""
        return self._signature

    @property
    def fds(self) -> FrozenSet[FD]:
        """All FDs of the schema (the paper's Δ)."""
        return self._fds

    def relation_names(self) -> FrozenSet[str]:
        """The names of all relation symbols."""
        return self._signature.relation_names()

    def relation(self, name: str) -> RelationSymbol:
        """The relation symbol called ``name``."""
        return self._signature[name]

    def fds_for(self, name: str) -> FDSet:
        """The restriction ``Δ|R`` as an :class:`FDSet` (Section 2.2)."""
        try:
            return self._by_relation[name]
        except KeyError:
            raise UnknownRelationError(name) from None

    def per_relation(self) -> Iterator[Tuple[RelationSymbol, FDSet]]:
        """Iterate ``(R, Δ|R)`` pairs, the decomposition of Prop. 3.5."""
        for relation in self._signature:
            yield relation, self._by_relation[relation.name]

    def restrict(self, name: str) -> "Schema":
        """The single-relation schema ``({R}, Δ|R)`` of Proposition 3.5."""
        return Schema(self._signature.restrict(name), self.fds_for(name).fds)

    # -- semantics ----------------------------------------------------------------------

    def empty_instance(self) -> Instance:
        """The empty instance over this schema's signature."""
        return Instance(self._signature)

    def instance(self, facts) -> Instance:
        """An instance over this schema's signature holding ``facts``."""
        return Instance(self._signature, facts)

    def is_consistent(self, instance: Instance) -> bool:
        """Whether ``instance ⊨ Δ`` (no δ-conflict for any δ ∈ Δ).

        Uses hash-grouping per FD left-hand side, so the cost is linear in
        the instance for a fixed schema.
        """
        from repro.core.conflicts import has_conflict  # local import: avoid cycle

        return not has_conflict(self, instance)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Schema):
            return self._signature == other._signature and self._fds == other._fds
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._signature, self._fds))

    def __repr__(self) -> str:
        fd_text = ", ".join(sorted(str(fd) for fd in self._fds))
        return f"Schema({self._signature!r}, Δ={{{fd_text}}})"
