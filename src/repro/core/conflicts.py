"""Conflict detection, enumeration, and the conflict graph.

Because all constraints in the paper are functional dependencies,
inconsistency is always witnessed by a *pair* of facts (a δ-conflict,
Section 2.2).  Consequently:

* consistent subinstances are exactly the independent sets of the
  *conflict graph* (facts as vertices, δ-conflicts as edges), and
* repairs (maximal consistent subinstances) are its maximal independent
  sets.

This module provides a :class:`ConflictIndex` that hash-groups the facts
of an instance by each FD's left-hand side so that consistency checking is
linear and per-fact conflict lookup avoids a full quadratic scan, plus a
naive quadratic fallback used for ablation benchmarks.
"""

from __future__ import annotations

from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.core.fact import Fact
from repro.core.fd import FD
from repro.core.instance import Instance
from repro.core.schema import Schema

__all__ = [
    "ConflictIndex",
    "has_conflict",
    "iter_conflicts",
    "conflicting_pairs",
    "conflict_graph",
    "facts_conflicting_with",
    "naive_conflicting_pairs",
]

_Key = Tuple[FD, Tuple[object, ...]]


class ConflictIndex:
    """A per-FD hash index over the facts of an instance.

    For each FD ``δ = R: A → B`` the index groups the facts of ``R`` by
    their value on ``A``.  Two facts δ-conflict iff they share a group and
    differ on ``B``, so:

    * :meth:`is_consistent` checks every group in one pass,
    * :meth:`conflicts_of` looks only inside the groups of one fact,
    * :meth:`iter_conflicts` enumerates conflicts group by group.

    An index built once over the full instance ``I`` also answers the
    same questions *restricted to any candidate subinstance* ``J ⊆ I``
    via membership filtering (:meth:`conflicts_of_in`,
    :meth:`conflicts_with_anything_in`, :meth:`is_consistent_subset`) —
    conflicts are intra-``I`` pairs, so the conflicts of a fact inside
    ``J`` are exactly its conflicts inside ``I`` that belong to ``J``.
    The checking algorithms probe many candidates against one instance;
    reusing a single index this way removes the per-candidate rebuild
    that used to dominate their runtime.

    Examples
    --------
    >>> schema = Schema.single_relation(["1 -> 2"], arity=2)
    >>> inst = schema.instance([Fact("R", (1, "a")), Fact("R", (1, "b"))])
    >>> index = ConflictIndex(schema, inst)
    >>> index.is_consistent()
    False
    >>> index.is_consistent_subset({Fact("R", (1, "a"))})
    True
    """

    __slots__ = ("_schema", "_instance", "_groups", "_adjacency")

    def __init__(self, schema: Schema, instance: Instance) -> None:
        self._schema = schema
        self._instance = instance
        self._adjacency: Optional[Dict[Fact, FrozenSet[Fact]]] = None
        groups: Dict[_Key, List[Fact]] = {}
        for relation, fdset in schema.per_relation():
            facts = instance.relation(relation.name)
            if not facts:
                continue
            for fd in fdset:
                if fd.is_trivial():
                    continue
                lhs_sorted = fd.lhs_sorted
                for fact in facts:
                    key = (fd, fact.project(lhs_sorted))
                    groups.setdefault(key, []).append(fact)
        self._groups = groups

    @property
    def instance(self) -> Instance:
        """The indexed instance."""
        return self._instance

    @property
    def schema(self) -> Schema:
        """The schema whose FDs drive the index."""
        return self._schema

    def is_consistent(self) -> bool:
        """Whether the instance satisfies every FD."""
        for (fd, _), group in self._groups.items():
            if len(group) < 2:
                continue
            rhs_values = {fact.project(fd.rhs_sorted) for fact in group}
            if len(rhs_values) > 1:
                return False
        return True

    def is_consistent_subset(self, members: AbstractSet[Fact]) -> bool:
        """Whether the subinstance ``members ⊆ I`` satisfies every FD.

        Filters each group down to ``members`` and checks its RHS values
        are uniform — no per-candidate index build needed.
        """
        for (fd, _), group in self._groups.items():
            if len(group) < 2:
                continue
            rhs_sorted = fd.rhs_sorted
            seen = None
            for fact in group:
                if fact not in members:
                    continue
                value = fact.project(rhs_sorted)
                if seen is None:
                    seen = value
                elif value != seen:
                    return False
        return True

    def iter_conflicts(self) -> Iterator[Tuple[FD, Fact, Fact]]:
        """Yield ``(δ, f, g)`` for every δ-conflict ``{f, g}`` once.

        Within a group, facts are subgrouped by their RHS value; every
        cross-subgroup pair is a conflict.
        """
        for (fd, _), group in self._groups.items():
            if len(group) < 2:
                continue
            by_rhs: Dict[Tuple[object, ...], List[Fact]] = {}
            for fact in group:
                by_rhs.setdefault(fact.project(fd.rhs_sorted), []).append(fact)
            if len(by_rhs) < 2:
                continue
            subgroups = list(by_rhs.values())
            for i, left_group in enumerate(subgroups):
                for right_group in subgroups[i + 1 :]:
                    for f in left_group:
                        for g in right_group:
                            yield fd, f, g

    def conflicts_of(self, fact: Fact) -> FrozenSet[Fact]:
        """All facts of the instance conflicting with ``fact``.

        ``fact`` itself need not belong to the instance; this is exactly
        what the checking algorithms need when they probe whether adding a
        fact ``g ∈ I \\ J`` to ``J`` would break consistency — they build
        an index over ``J`` and ask for the conflicts of ``g``.
        """
        result: Set[Fact] = set()
        fdset = self._schema.fds_for(fact.relation)
        for fd in fdset:
            if fd.is_trivial():
                continue
            key = (fd, fact.project(fd.lhs_sorted))
            rhs_sorted = fd.rhs_sorted
            for candidate in self._groups.get(key, ()):
                if candidate != fact and candidate.disagrees_with(
                    fact, rhs_sorted
                ):
                    result.add(candidate)
        return frozenset(result)

    def conflicts_of_in(
        self, fact: Fact, members: AbstractSet[Fact]
    ) -> FrozenSet[Fact]:
        """The conflicts of ``fact`` that belong to ``members ⊆ I``.

        This is :meth:`conflicts_of` computed against the subinstance
        ``members`` of the indexed instance, answered by membership
        filtering instead of building a fresh index over the candidate.
        """
        result: Set[Fact] = set()
        fdset = self._schema.fds_for(fact.relation)
        for fd in fdset:
            if fd.is_trivial():
                continue
            key = (fd, fact.project(fd.lhs_sorted))
            rhs_sorted = fd.rhs_sorted
            for candidate in self._groups.get(key, ()):
                if (
                    candidate in members
                    and candidate != fact
                    and candidate.disagrees_with(fact, rhs_sorted)
                ):
                    result.add(candidate)
        return frozenset(result)

    def conflicts_with_anything(self, fact: Fact) -> bool:
        """Whether ``fact`` conflicts with at least one indexed fact."""
        fdset = self._schema.fds_for(fact.relation)
        for fd in fdset:
            if fd.is_trivial():
                continue
            key = (fd, fact.project(fd.lhs_sorted))
            rhs_sorted = fd.rhs_sorted
            for candidate in self._groups.get(key, ()):
                if candidate != fact and candidate.disagrees_with(
                    fact, rhs_sorted
                ):
                    return True
        return False

    def conflicts_with_anything_in(
        self, fact: Fact, members: AbstractSet[Fact]
    ) -> bool:
        """Whether ``fact`` conflicts with at least one fact of
        ``members ⊆ I`` (the maximality probe of the pre-checks)."""
        fdset = self._schema.fds_for(fact.relation)
        for fd in fdset:
            if fd.is_trivial():
                continue
            key = (fd, fact.project(fd.lhs_sorted))
            rhs_sorted = fd.rhs_sorted
            for candidate in self._groups.get(key, ()):
                if (
                    candidate in members
                    and candidate != fact
                    and candidate.disagrees_with(fact, rhs_sorted)
                ):
                    return True
        return False

    def adjacency(self) -> Dict[Fact, FrozenSet[Fact]]:
        """The conflict graph over the indexed instance, computed once.

        Same contract as :func:`conflict_graph` (isolated facts map to
        an empty set); cached on the index because the completion
        checkers and repair enumerators walk it repeatedly.
        """
        adjacency = self._adjacency
        if adjacency is None:
            neighbours: Dict[Fact, Set[Fact]] = {
                fact: set() for fact in self._instance
            }
            for _, f, g in self.iter_conflicts():
                neighbours[f].add(g)
                neighbours[g].add(f)
            adjacency = {
                fact: frozenset(neigh) for fact, neigh in neighbours.items()
            }
            self._adjacency = adjacency
        return adjacency


def has_conflict(schema: Schema, instance: Instance) -> bool:
    """Whether ``instance`` violates any FD of ``schema``."""
    return not ConflictIndex(schema, instance).is_consistent()


def iter_conflicts(
    schema: Schema, instance: Instance
) -> Iterator[Tuple[FD, Fact, Fact]]:
    """Yield every ``(δ, f, g)`` conflict of the instance."""
    return ConflictIndex(schema, instance).iter_conflicts()


def conflicting_pairs(
    schema: Schema, instance: Instance
) -> FrozenSet[FrozenSet[Fact]]:
    """The set of conflicting fact pairs ``{f, g}`` (FD labels dropped).

    A pair conflicting under several FDs appears once.
    """
    return frozenset(
        frozenset({f, g}) for _, f, g in iter_conflicts(schema, instance)
    )


def conflict_graph(
    schema: Schema, instance: Instance
) -> Dict[Fact, FrozenSet[Fact]]:
    """The conflict graph as an adjacency map over *all* facts.

    Isolated facts (conflicting with nothing) map to an empty set, so the
    mapping's key set is exactly the instance.
    """
    return ConflictIndex(schema, instance).adjacency()


def facts_conflicting_with(
    schema: Schema, instance: Instance, fact: Fact
) -> FrozenSet[Fact]:
    """All facts of ``instance`` that conflict with ``fact``.

    Convenience wrapper building a one-shot index; code on a hot path
    should build a :class:`ConflictIndex` once and reuse it.
    """
    return ConflictIndex(schema, instance).conflicts_of(fact)


def naive_conflicting_pairs(
    schema: Schema, instance: Instance
) -> FrozenSet[FrozenSet[Fact]]:
    """Quadratic pairwise conflict scan; ablation baseline for the index."""
    facts_by_relation: Dict[str, List[Fact]] = {}
    for fact in instance:
        facts_by_relation.setdefault(fact.relation, []).append(fact)
    pairs: Set[FrozenSet[Fact]] = set()
    for relation_name, facts in facts_by_relation.items():
        fds = [
            fd for fd in schema.fds_for(relation_name) if not fd.is_trivial()
        ]
        for i, f in enumerate(facts):
            for g in facts[i + 1 :]:
                if any(fd.is_conflict(f, g) for fd in fds):
                    pairs.add(frozenset({f, g}))
    return frozenset(pairs)
