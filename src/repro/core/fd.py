"""Functional dependencies ``R : A → B`` over attribute positions.

An FD (Section 2.2) names a relation symbol and two sets of attribute
positions.  The convenience parser :meth:`FD.parse` accepts the paper's
shorthand forms (``"R: 1 -> 2"``, ``"R: {1,2} -> 3"``, ``"R: {} -> 1"``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Union

from repro.exceptions import InvalidFDError

__all__ = ["FD", "AttributeSet", "attr_set"]

AttributeSet = FrozenSet[int]


def attr_set(attributes: Union[int, Iterable[int]]) -> AttributeSet:
    """Normalize an int or iterable of ints into a frozen attribute set.

    Examples
    --------
    >>> attr_set(3) == frozenset({3})
    True
    >>> attr_set([1, 2, 2]) == frozenset({1, 2})
    True
    """
    if isinstance(attributes, int):
        return frozenset({attributes})
    return frozenset(attributes)


_FD_PATTERN = re.compile(
    r"""^\s*
        (?:(?P<relation>\w+)\s*:)?\s*
        (?P<lhs>\{[^}]*\}|[\d\s,]*)\s*
        (?:->|→)\s*
        (?P<rhs>\{[^}]*\}|[\d\s,]+)\s*$""",
    re.VERBOSE,
)


def _parse_attr_list(text: str) -> AttributeSet:
    text = text.strip()
    if text.startswith("{") and text.endswith("}"):
        text = text[1:-1]
    if not text.strip():
        return frozenset()
    try:
        return frozenset(int(part) for part in text.split(","))
    except ValueError as exc:
        raise InvalidFDError(f"cannot parse attribute list: {text!r}") from exc


@dataclass(frozen=True)
class FD:
    """A functional dependency ``relation : lhs → rhs``.

    Attributes are 1-based positions.  ``lhs`` may be empty (the paper's
    *constant-attribute constraints* ``∅ → B`` of Section 7.1), and so may
    ``rhs`` (yielding a trivial FD such as the ``S: ∅ → ∅`` of
    Example 3.3).

    The derived attributes ``lhs_sorted``, ``rhs_sorted`` and
    ``span_sorted`` (``lhs ∪ rhs``) hold the same positions as strictly
    increasing tuples, in the trusted form :meth:`Fact.project` consumes
    without re-sorting; they carry no extra information and do not
    participate in equality or hashing.

    Examples
    --------
    >>> fd = FD("R", {1}, {2, 3})
    >>> fd.is_trivial()
    False
    >>> fd.is_key(arity=3)
    False
    >>> FD("R", {1}, {1, 2, 3}).is_key(arity=3)
    True
    """

    relation: str
    lhs: AttributeSet
    rhs: AttributeSet

    def __init__(
        self,
        relation: str,
        lhs: Union[int, Iterable[int]],
        rhs: Union[int, Iterable[int]],
    ) -> None:
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "lhs", attr_set(lhs))
        object.__setattr__(self, "rhs", attr_set(rhs))
        self.__post_init__()

    def __post_init__(self) -> None:
        if not self.relation:
            raise InvalidFDError("an FD must name a relation symbol")
        for position in self.lhs | self.rhs:
            if position < 1:
                raise InvalidFDError(
                    f"FD over {self.relation!r}: attribute positions are "
                    f"1-based, got {position}"
                )
        # Sorted-tuple forms of the attribute sets, precomputed once so
        # the projection hot paths (conflict indexing, block grouping,
        # swap graphs) never re-run sorted(set(...)) per fact.  Plain
        # attributes rather than dataclass fields: equality, hashing and
        # repr stay determined by (relation, lhs, rhs) alone.
        object.__setattr__(self, "lhs_sorted", tuple(sorted(self.lhs)))
        object.__setattr__(self, "rhs_sorted", tuple(sorted(self.rhs)))
        object.__setattr__(
            self, "span_sorted", tuple(sorted(self.lhs | self.rhs))
        )

    @classmethod
    def parse(cls, text: str, relation: str = "") -> "FD":
        """Parse the paper's shorthand, e.g. ``"BookLoc: 1 -> 2"``.

        If the text omits the relation prefix, ``relation`` must be given.

        Examples
        --------
        >>> FD.parse("R: {1,2} -> 3")
        FD(relation='R', lhs=frozenset({1, 2}), rhs=frozenset({3}))
        >>> FD.parse("{} -> 1", relation="S").lhs
        frozenset()
        """
        match = _FD_PATTERN.match(text)
        if match is None:
            raise InvalidFDError(f"cannot parse FD: {text!r}")
        relation_name = match.group("relation") or relation
        if not relation_name:
            raise InvalidFDError(
                f"FD {text!r} names no relation and none was supplied"
            )
        return cls(
            relation_name,
            _parse_attr_list(match.group("lhs")),
            _parse_attr_list(match.group("rhs")),
        )

    # -- classification predicates (Section 2.2 / 7.1) -------------------------

    def is_trivial(self) -> bool:
        """Whether ``rhs ⊆ lhs`` (satisfied by every instance)."""
        return self.rhs <= self.lhs

    def is_key(self, arity: int) -> bool:
        """Whether this FD is a key constraint: ``rhs = ⟦R⟧``."""
        return self.rhs == frozenset(range(1, arity + 1))

    def is_constant_attribute(self) -> bool:
        """Whether this FD has the form ``∅ → B`` (Section 7.1)."""
        return not self.lhs

    def as_key(self, arity: int) -> "FD":
        """The key constraint ``lhs → ⟦R⟧`` with this FD's left-hand side."""
        return FD(self.relation, self.lhs, frozenset(range(1, arity + 1)))

    def validate_for_arity(self, arity: int) -> None:
        """Raise :class:`InvalidFDError` if any attribute exceeds ``arity``."""
        out_of_range = {p for p in self.lhs | self.rhs if p > arity}
        if out_of_range:
            raise InvalidFDError(
                f"FD {self}: attributes {sorted(out_of_range)} exceed "
                f"arity {arity} of relation {self.relation!r}"
            )

    # -- semantics --------------------------------------------------------------

    def is_conflict(self, fact1, fact2) -> bool:
        """Whether ``{fact1, fact2}`` is a δ-conflict for this FD.

        Per Section 2.2: the two facts belong to this FD's relation, agree
        on every attribute of ``lhs``, and disagree on at least one
        attribute of ``rhs``.
        """
        if fact1.relation != self.relation or fact2.relation != self.relation:
            return False
        return fact1.agrees_with(
            fact2, self.lhs_sorted
        ) and fact1.disagrees_with(fact2, self.rhs_sorted)

    def __str__(self) -> str:
        def fmt(attrs: AttributeSet) -> str:
            if not attrs:
                return "{}"
            if len(attrs) == 1:
                return str(next(iter(attrs)))
            return "{" + ",".join(str(a) for a in sorted(attrs)) + "}"

        return f"{self.relation}: {fmt(self.lhs)} -> {fmt(self.rhs)}"
