"""Core backend selection: object-per-fact vs columnar bitset.

The checking algorithms exist in two executions of the same paper
pseudocode:

* the **object** backend — ``Fact``/``frozenset`` algebra over the
  shared :class:`~repro.core.conflicts.ConflictIndex` (the PR-2 fast
  paths, and before them the retained ``*_literal`` baselines);
* the **bitset** backend — facts interned to dense integer ids
  (:class:`~repro.core.interning.FactInterner`) with conflicts, blocks,
  and priorities compiled to id-space arrays and stdlib ``int``
  bitmasks (:mod:`repro.core.bitset_index`).

Both decide every check identically (the oracle conformance suite
asserts zero divergence case by case); they differ only in data layout
and therefore in constant factors — the bitset backend wins by a large
margin once instances reach the 10^4–10^5-fact regime, while the object
backend has no interning step and stays marginally cheaper on the tiny
instances the property tests generate.

Selection, in precedence order:

1. an explicit ``backend=`` argument on a checker call;
2. the ``REPRO_CORE_BACKEND`` environment variable
   (``object`` | ``bitset`` | ``auto``), read at call time so it
   reaches daemon and process-pool workers through their inherited
   environment;
3. ``auto`` (the default): bitset when the instance has at least
   :data:`DEFAULT_BITSET_THRESHOLD` facts (overridable via
   ``REPRO_CORE_BITSET_THRESHOLD``), object below it.
"""

from __future__ import annotations

import os
from typing import Optional

from repro.exceptions import UsageError

__all__ = [
    "BACKEND_ENV",
    "THRESHOLD_ENV",
    "BACKEND_OBJECT",
    "BACKEND_BITSET",
    "BACKEND_AUTO",
    "DEFAULT_BITSET_THRESHOLD",
    "normalize_backend",
    "bitset_threshold",
    "resolve_backend",
]

BACKEND_ENV = "REPRO_CORE_BACKEND"
THRESHOLD_ENV = "REPRO_CORE_BITSET_THRESHOLD"

BACKEND_OBJECT = "object"
BACKEND_BITSET = "bitset"
BACKEND_AUTO = "auto"

_VALID = (BACKEND_OBJECT, BACKEND_BITSET, BACKEND_AUTO)

#: Below this many facts ``auto`` stays on the object backend: the
#: interner + layout build only amortizes across the large tier, and
#: keeping small instances on the object path leaves the historical
#: benchmark sizes (≤320 facts) and the property-test instances
#: bit-for-bit on their PR-2 code paths.
DEFAULT_BITSET_THRESHOLD = 1024


def normalize_backend(value: str) -> str:
    """Validate a backend name, returning it lower-cased.

    Raises
    ------
    UsageError
        If ``value`` is not ``object``, ``bitset``, or ``auto``.
    """
    lowered = value.strip().lower()
    if lowered not in _VALID:
        raise UsageError(
            f"unknown core backend {value!r}; expected one of "
            f"{', '.join(_VALID)}"
        )
    return lowered


def bitset_threshold() -> int:
    """The ``auto``-mode size threshold, honouring the env override."""
    raw = os.environ.get(THRESHOLD_ENV)
    if raw is None:
        return DEFAULT_BITSET_THRESHOLD
    try:
        return int(raw)
    except ValueError:
        raise UsageError(
            f"{THRESHOLD_ENV} must be an integer, got {raw!r}"
        ) from None


def resolve_backend(n_facts: int, override: Optional[str] = None) -> str:
    """The concrete backend (``object`` or ``bitset``) for one check.

    ``override`` is the checker's ``backend=`` argument; when None the
    ``REPRO_CORE_BACKEND`` environment variable applies, and when that
    is unset (or says ``auto``) the size threshold decides.
    """
    choice = override if override is not None else os.environ.get(BACKEND_ENV)
    if choice is None:
        choice = BACKEND_AUTO
    else:
        choice = normalize_backend(choice)
    if choice != BACKEND_AUTO:
        return choice
    if n_facts >= bitset_threshold():
        return BACKEND_BITSET
    return BACKEND_OBJECT
