"""Core data model and algorithms for preferred repairs.

Submodules
----------
``signature``, ``fact``, ``instance``
    The relational substrate (Section 2.1 of the paper).
``fd``, ``fdset``, ``schema``
    Functional-dependency theory and schemas (Section 2.2).
``conflicts``
    δ-conflict detection, indexes, the conflict graph.
``priority``
    Priority relations and prioritizing instances (Sections 2.3 and 7).
``improvements``, ``repairs``
    Definition 2.4 and classical subset repairs.
``checking``
    The repair-checking algorithms (Sections 3, 4, and 7).
``classification``
    The dichotomy classifiers (Theorems 3.1/6.1 and 7.1/7.6).
``backend``, ``interning``, ``bitset_index``
    The columnar bitset execution backend: backend selection, dense
    fact ids, and the id-space conflict/block/priority substrate.
"""

from repro.core.backend import (
    BACKEND_AUTO,
    BACKEND_BITSET,
    BACKEND_OBJECT,
    resolve_backend,
)
from repro.core.bitset_index import BitsetConflictIndex, BitsetCore
from repro.core.fact import Fact
from repro.core.fd import FD
from repro.core.fdset import FDSet
from repro.core.instance import Instance
from repro.core.interning import FactInterner
from repro.core.priority import PrioritizingInstance, PriorityRelation
from repro.core.schema import Schema
from repro.core.signature import RelationSymbol, Signature

__all__ = [
    "Fact",
    "FD",
    "FDSet",
    "Instance",
    "PrioritizingInstance",
    "PriorityRelation",
    "Schema",
    "RelationSymbol",
    "Signature",
    "FactInterner",
    "BitsetConflictIndex",
    "BitsetCore",
    "BACKEND_AUTO",
    "BACKEND_BITSET",
    "BACKEND_OBJECT",
    "resolve_backend",
]
