"""The dichotomy classifiers (Theorems 3.1/6.1 and 7.1/7.6).

Given a schema, decide — in polynomial time in the size of the schema —
which side of each dichotomy it falls on.

Classical setting (Theorem 3.1)
    Globally-optimal repair checking is in PTIME iff for every relation
    symbol ``R``, the restriction ``Δ|R`` is equivalent to (a) a single
    FD or (b) a set of two key constraints; otherwise it is
    coNP-complete.  The polynomial test (Section 6) rests on Lemma 6.2:
    candidate left-hand sides can be drawn from the FDs of ``Δ|R``
    themselves, and each candidate is validated with the
    Maier–Mendelzon–Sagiv implication test (Theorem 6.3).

CCP setting (Theorem 7.1)
    Under cross-conflict priorities, checking is in PTIME iff ``Δ`` is a
    *primary-key assignment* (every ``Δ|R`` equivalent to a single key
    constraint) or a *constant-attribute assignment* (every ``Δ|R``
    equivalent to a single ``∅ → B``); otherwise coNP-complete.  Note the
    "every relation the same way" quantification: a schema mixing a key
    relation with a constant-attribute relation is hard (Section 7.1's
    discussion of Example 3.3 variants).

Each verdict carries *witnesses* — the equivalent single FD or pair of
keys — which the dispatching checkers then hand to the matching
polynomial-time algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from functools import lru_cache
from itertools import combinations
from typing import Dict, List, Optional, Tuple

from repro.core.fd import FD, AttributeSet
from repro.core.fdset import FDSet
from repro.core.schema import Schema

from repro.exceptions import MissingEntryError
__all__ = [
    "RelationClass",
    "RelationVerdict",
    "ClassificationVerdict",
    "CcpRelationVerdict",
    "CcpVerdict",
    "equivalent_single_fd",
    "equivalent_single_key",
    "equivalent_two_keys",
    "equivalent_constant_attribute",
    "classify_relation",
    "classify_schema",
    "classify_ccp_schema",
    "classification_cache_info",
    "clear_classification_caches",
]


class RelationClass(Enum):
    """How ``Δ|R`` is classified by Theorem 3.1's condition."""

    SINGLE_FD = "single-fd"
    TWO_KEYS = "two-keys"
    HARD = "hard"


# -- per-relation equivalence tests (Section 6) --------------------------------


def equivalent_single_fd(fdset: FDSet) -> Optional[FD]:
    """An FD ``A → B`` such that ``Δ|R ≡ {A → B}``, or None.

    Implements the first test of Section 6.  By Lemma 6.2(1), if ``Δ|R``
    is equivalent to a nontrivial ``A → B`` then some FD of ``Δ|R`` has
    left-hand side exactly ``A``; so it suffices to try, for each
    left-hand side ``A`` occurring in ``Δ|R``, the saturated candidate
    ``A → closure(A)`` (which ``Δ|R`` implies by construction) and check
    the converse implication.  An all-trivial ``Δ|R`` is equivalent to
    the trivial FD ``∅ → ∅``.
    """
    if fdset.is_trivial():
        return FD(fdset.relation, frozenset(), frozenset())
    for lhs in sorted(fdset.left_hand_sides(), key=sorted):
        candidate = FD(fdset.relation, lhs, fdset.closure(lhs))
        if FDSet(fdset.relation, fdset.arity, [candidate]).implies_all(fdset):
            return candidate
    return None


def equivalent_single_key(fdset: FDSet) -> Optional[FD]:
    """A key ``A → ⟦R⟧`` such that ``Δ|R ≡ {A → ⟦R⟧}``, or None.

    Candidates are the left-hand sides of ``Δ|R`` (Lemma 6.2) plus the
    trivial key ``⟦R⟧ → ⟦R⟧`` covering the all-trivial case.
    """
    all_attributes = fdset.all_attributes()
    candidates: List[AttributeSet] = sorted(
        fdset.left_hand_sides(), key=sorted
    )
    candidates.append(all_attributes)
    for lhs in candidates:
        if fdset.closure(lhs) != all_attributes:
            continue
        candidate = FD(fdset.relation, lhs, all_attributes)
        if FDSet(fdset.relation, fdset.arity, [candidate]).implies_all(fdset):
            return candidate
    return None


def equivalent_two_keys(fdset: FDSet) -> Optional[Tuple[FD, FD]]:
    """Keys ``A1 → ⟦R⟧, A2 → ⟦R⟧`` with ``Δ|R ≡ {both}``, or None.

    Implements the second test of Section 6.  When one key contains the
    other, the pair degenerates to a single key, handled by
    :func:`equivalent_single_key` (the returned pair then repeats the
    single key).  Otherwise, by Lemma 6.2(2) both left-hand sides occur
    in ``Δ|R``, so all pairs of occurring left-hand sides are tried.
    """
    single = equivalent_single_key(fdset)
    if single is not None:
        return (single, single)
    all_attributes = fdset.all_attributes()
    lhs_list = sorted(fdset.left_hand_sides(), key=sorted)
    for lhs1, lhs2 in combinations(lhs_list, 2):
        if lhs1 <= lhs2 or lhs2 <= lhs1:
            continue  # comparable pair degenerates to the single-key case
        if fdset.closure(lhs1) != all_attributes:
            continue
        if fdset.closure(lhs2) != all_attributes:
            continue
        key1 = FD(fdset.relation, lhs1, all_attributes)
        key2 = FD(fdset.relation, lhs2, all_attributes)
        pair = FDSet(fdset.relation, fdset.arity, [key1, key2])
        if pair.implies_all(fdset):
            return (key1, key2)
    return None


def equivalent_constant_attribute(fdset: FDSet) -> Optional[FD]:
    """An FD ``∅ → B`` such that ``Δ|R ≡ {∅ → B}``, or None (Section 7.1)."""
    if fdset.is_equivalent_to_constant_attribute():
        return FD(fdset.relation, frozenset(), fdset.constant_attributes())
    return None


# -- verdicts --------------------------------------------------------------------


@dataclass(frozen=True)
class RelationVerdict:
    """The Theorem 3.1 classification of one relation symbol.

    Attributes
    ----------
    relation:
        The relation symbol's name.
    kind:
        Which clause of the theorem applies (or HARD).
    witnesses:
        The equivalent single FD (one entry) or two keys (two entries);
        empty for hard relations.
    """

    relation: str
    kind: RelationClass
    witnesses: Tuple[FD, ...] = ()

    @property
    def is_tractable(self) -> bool:
        """Whether globally-optimal repair checking is PTIME for this
        relation's single-relation schema."""
        return self.kind is not RelationClass.HARD


@dataclass(frozen=True)
class ClassificationVerdict:
    """The Theorem 3.1 classification of a whole schema.

    By Proposition 3.5, the schema is tractable iff every relation is.
    """

    per_relation: Tuple[RelationVerdict, ...]

    @property
    def is_tractable(self) -> bool:
        """Whether globally-optimal repair checking is PTIME (Thm 3.1)."""
        return all(verdict.is_tractable for verdict in self.per_relation)

    @property
    def is_conp_complete(self) -> bool:
        """Whether the problem is coNP-complete (the other side)."""
        return not self.is_tractable

    @property
    def hard_relations(self) -> Tuple[str, ...]:
        """The relations whose ``Δ|R`` violates the tractability condition."""
        return tuple(
            verdict.relation
            for verdict in self.per_relation
            if not verdict.is_tractable
        )

    def for_relation(self, name: str) -> RelationVerdict:
        """The verdict for relation ``name``."""
        for verdict in self.per_relation:
            if verdict.relation == name:
                return verdict
        raise MissingEntryError(name)

    def describe(self) -> str:
        """A one-paragraph human-readable summary."""
        lines = []
        for verdict in self.per_relation:
            if verdict.kind is RelationClass.SINGLE_FD:
                detail = f"equivalent to single FD {verdict.witnesses[0]}"
            elif verdict.kind is RelationClass.TWO_KEYS:
                keys = " and ".join(str(w) for w in verdict.witnesses)
                detail = f"equivalent to keys {keys}"
            else:
                detail = "neither a single FD nor two keys"
            lines.append(f"  {verdict.relation}: {detail}")
        head = (
            "PTIME (Theorem 3.1 condition holds)"
            if self.is_tractable
            else "coNP-complete (Theorem 3.1 condition violated)"
        )
        return "\n".join(
            [f"globally-optimal repair checking: {head}"] + lines
        )


def classify_relation(fdset: FDSet) -> RelationVerdict:
    """Classify one relation per Theorem 3.1's condition.

    Tries the single-FD clause first (matching the paper's ordering in
    Examples 3.2/3.3), then the two-keys clause.
    """
    single = equivalent_single_fd(fdset)
    if single is not None:
        return RelationVerdict(
            fdset.relation, RelationClass.SINGLE_FD, (single,)
        )
    pair = equivalent_two_keys(fdset)
    if pair is not None:
        return RelationVerdict(fdset.relation, RelationClass.TWO_KEYS, pair)
    return RelationVerdict(fdset.relation, RelationClass.HARD)


@lru_cache(maxsize=4096)
def _classify_schema_cached(schema: Schema) -> ClassificationVerdict:
    verdicts = tuple(
        classify_relation(fdset) for _, fdset in schema.per_relation()
    )
    return ClassificationVerdict(verdicts)


def classify_schema(schema: Schema) -> ClassificationVerdict:
    """Classify a schema per Theorems 3.1 and 6.1.

    Runs in time polynomial in the size of the schema: for each relation,
    at most ``|Δ|R|`` (plus one) candidate left-hand sides and
    ``O(|Δ|R|²)`` candidate pairs are validated, each validation being a
    set of polynomial implication tests.

    Verdicts are memoized per schema (schemas are immutable and
    hashable), so repeated checking calls over a shared schema — the
    batch-service workload — classify once; see
    :func:`classification_cache_info`.

    Examples
    --------
    >>> classify_schema(Schema.single_relation(["1 -> 2", "2 -> 3"])).is_tractable
    False
    >>> classify_schema(Schema.single_relation(["1 -> 2", "2 -> 1"], arity=2)).is_tractable
    True
    """
    return _classify_schema_cached(schema)


# -- ccp classification (Theorem 7.1) ------------------------------------------------


@dataclass(frozen=True)
class CcpRelationVerdict:
    """Per-relation ingredients of the ccp classification."""

    relation: str
    key_witness: Optional[FD]
    constant_witness: Optional[FD]


@dataclass(frozen=True)
class CcpVerdict:
    """The Theorem 7.1 classification of a schema for ccp-instances.

    Attributes
    ----------
    per_relation:
        For every relation, the single-key witness and/or the
        constant-attribute witness (None where not equivalent).
    """

    per_relation: Tuple[CcpRelationVerdict, ...]

    @property
    def is_primary_key_assignment(self) -> bool:
        """Whether *every* ``Δ|R`` is equivalent to a single key."""
        return all(v.key_witness is not None for v in self.per_relation)

    @property
    def is_constant_attribute_assignment(self) -> bool:
        """Whether *every* ``Δ|R`` is equivalent to a single ``∅ → B``."""
        return all(v.constant_witness is not None for v in self.per_relation)

    @property
    def is_tractable(self) -> bool:
        """PTIME iff primary-key or constant-attribute assignment."""
        return (
            self.is_primary_key_assignment
            or self.is_constant_attribute_assignment
        )

    @property
    def is_conp_complete(self) -> bool:
        """coNP-complete in every other case."""
        return not self.is_tractable

    def describe(self) -> str:
        """A one-paragraph human-readable summary."""
        if self.is_primary_key_assignment:
            head = "PTIME: Δ is a primary-key assignment"
        elif self.is_constant_attribute_assignment:
            head = "PTIME: Δ is a constant-attribute assignment"
        else:
            head = (
                "coNP-complete: Δ is neither a primary-key nor a "
                "constant-attribute assignment"
            )
        lines = []
        for verdict in self.per_relation:
            parts = []
            if verdict.key_witness is not None:
                parts.append(f"key {verdict.key_witness}")
            if verdict.constant_witness is not None:
                parts.append(f"constant-attribute {verdict.constant_witness}")
            lines.append(
                f"  {verdict.relation}: "
                + (" / ".join(parts) if parts else "neither form")
            )
        return "\n".join(
            [f"ccp globally-optimal repair checking: {head}"] + lines
        )


@lru_cache(maxsize=4096)
def _classify_ccp_schema_cached(schema: Schema) -> CcpVerdict:
    verdicts = tuple(
        CcpRelationVerdict(
            relation.name,
            equivalent_single_key(fdset),
            equivalent_constant_attribute(fdset),
        )
        for relation, fdset in schema.per_relation()
    )
    return CcpVerdict(verdicts)


def classify_ccp_schema(schema: Schema) -> CcpVerdict:
    """Classify a schema per Theorems 7.1 and 7.6 (ccp setting).

    Memoized per schema, like :func:`classify_schema`.

    Examples
    --------
    >>> verdict = classify_ccp_schema(
    ...     Schema.parse({"R": 2, "S": 2}, ["R: 1 -> 2", "S: 2 -> 1"])
    ... )
    >>> verdict.is_primary_key_assignment
    True
    >>> classify_ccp_schema(
    ...     Schema.parse({"R": 2, "S": 2}, ["R: 1 -> 2", "S: {} -> 1"])
    ... ).is_tractable
    False
    """
    return _classify_ccp_schema_cached(schema)


def classification_cache_info() -> Dict[str, object]:
    """The ``cache_info()`` of both classifier memo tables.

    Returns ``{"classical": CacheInfo, "ccp": CacheInfo}`` — the
    service's metrics snapshot includes these so cache effectiveness on
    shared-schema traffic is observable.
    """
    return {
        "classical": _classify_schema_cached.cache_info(),
        "ccp": _classify_ccp_schema_cached.cache_info(),
    }


def clear_classification_caches() -> None:
    """Drop both classifier memo tables (tests and benchmarks use this
    to measure cold-cache behaviour)."""
    _classify_schema_cached.cache_clear()
    _classify_ccp_schema_cached.cache_clear()
