"""Facts: relation-symbol applications ``R(c1, ..., ck)``.

A fact pairs a relation name with a tuple of constants (Section 2.1).
Constants may be any hashable Python values; the library never interprets
them beyond equality comparison, mirroring the paper's uninterpreted
domain ``Const``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Iterable, Tuple

from repro.exceptions import AttributePositionError, SchemaError

__all__ = ["Fact", "facts_agreeing_on"]


@dataclass(frozen=True, order=True)
class Fact:
    """An immutable fact ``R(t)``.

    Parameters
    ----------
    relation:
        The name of the relation symbol.
    values:
        The tuple of constants; its width must equal the relation's arity
        (validated when the fact is added to an :class:`~repro.core.instance.Instance`
        bound to a signature).

    Attributes are addressed 1-based, as in the paper.

    Examples
    --------
    >>> f = Fact("BookLoc", ("b1", "fiction", "lib1"))
    >>> f[1]
    'b1'
    >>> f.project({1, 3})
    ('b1', 'lib1')
    """

    relation: str
    values: Tuple[Any, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.values, tuple):
            object.__setattr__(self, "values", tuple(self.values))
        if not self.values:
            raise SchemaError("a fact must have at least one value")

    @property
    def arity(self) -> int:
        """The number of values in this fact."""
        return len(self.values)

    def __getitem__(self, position: int) -> Any:
        """The value in attribute ``position`` (1-based, as in the paper)."""
        if not 1 <= position <= len(self.values):
            raise AttributePositionError(
                f"fact {self}: attribute {position} out of range 1..{len(self.values)}"
            )
        return self.values[position - 1]

    def project(self, attributes: Iterable[int]) -> Tuple[Any, ...]:
        """The values at ``attributes``, in increasing attribute order.

        This is the paper's ``f[A]`` notation (Section 4.2): the tuple of
        components of ``f`` in the positions of ``A`` in a fixed
        (ascending) order.

        When ``attributes`` is already a strictly increasing tuple (e.g.
        the precomputed ``lhs_sorted`` / ``rhs_sorted`` of an
        :class:`~repro.core.fd.FD`), it is trusted as-is and the
        normalizing ``sorted(set(...))`` pass is skipped; any other
        iterable is normalized first.  Projections are memoized per fact,
        keyed by the sorted position tuple, because the conflict index
        and the checkers project the same facts on the same attribute
        sets over and over.
        """
        if type(attributes) is tuple:
            positions = attributes
        else:
            positions = tuple(sorted(set(attributes)))
        try:
            cache = self._projections
        except AttributeError:
            cache = {}
            object.__setattr__(self, "_projections", cache)
        value = cache.get(positions)
        if value is None:
            values = self.values
            if positions and not 1 <= positions[0] <= positions[-1] <= len(values):
                raise AttributePositionError(
                    f"fact {self}: attributes {positions} out of range "
                    f"1..{len(values)}"
                )
            value = tuple(values[position - 1] for position in positions)
            cache[positions] = value
        return value

    def agrees_with(self, other: "Fact", attributes: Iterable[int]) -> bool:
        """Whether this fact and ``other`` have equal values on ``attributes``.

        Facts from different relations never agree (conflicts, and hence
        agreement checks, only ever apply within one relation).
        """
        if self.relation != other.relation:
            return False
        mine = self.values
        theirs = other.values
        for position in attributes:
            if position < 1:
                raise AttributePositionError(
                    f"fact {self}: attribute {position} out of range "
                    f"1..{len(mine)}"
                )
            if mine[position - 1] != theirs[position - 1]:
                return False
        return True

    def disagrees_with(self, other: "Fact", attributes: Iterable[int]) -> bool:
        """Whether the facts differ on at least one attribute in ``attributes``.

        Note this is *not* the negation of :meth:`agrees_with` for facts of
        different relations; both are False in that case, matching the
        paper's convention that conflicts are intra-relation.
        """
        if self.relation != other.relation:
            return False
        mine = self.values
        theirs = other.values
        for position in attributes:
            if position < 1:
                raise AttributePositionError(
                    f"fact {self}: attribute {position} out of range "
                    f"1..{len(mine)}"
                )
            if mine[position - 1] != theirs[position - 1]:
                return True
        return False

    def replace(self, position: int, value: Any) -> "Fact":
        """A copy of this fact with attribute ``position`` set to ``value``."""
        if not 1 <= position <= len(self.values):
            raise AttributePositionError(
                f"fact {self}: attribute {position} out of range 1..{len(self.values)}"
            )
        new_values = (
            self.values[: position - 1] + (value,) + self.values[position:]
        )
        return Fact(self.relation, new_values)

    def __str__(self) -> str:
        inner = ", ".join(repr(v) for v in self.values)
        return f"{self.relation}({inner})"


def facts_agreeing_on(
    facts: Iterable[Fact], reference: Fact, attributes: Iterable[int]
) -> FrozenSet[Fact]:
    """All facts in ``facts`` that agree with ``reference`` on ``attributes``.

    A convenience used by the block-swap operation ``J[f ↔ g]`` of
    Section 4.1.
    """
    positions = (
        attributes
        if type(attributes) is tuple
        else tuple(sorted(set(attributes)))
    )
    return frozenset(
        fact for fact in facts if fact.agrees_with(reference, positions)
    )
