"""The top-level globally-optimal repair checker.

:func:`check_globally_optimal` routes a repair-checking instance to the
right algorithm:

* **classical priorities** — classify the schema per Theorem 3.1; when
  tractable, decompose per relation (Proposition 3.5) and run
  ``GRepCheck1FD`` or ``GRepCheck2Keys`` on each part; when coNP-hard,
  fall back to the exponential brute force (or raise, if the caller
  disallowed it);
* **ccp priorities** — classify per Theorem 7.1; when the schema is a
  primary-key assignment use the ``G_{J,I\\J}`` cycle test, when a
  constant-attribute assignment enumerate partition repairs; otherwise,
  if the priority happens to relate only conflicting facts the instance
  is re-interpreted classically (the semantics of Definition 2.4 do not
  depend on the ccp flag), and failing that the brute force runs.

The returned :class:`CheckResult` names the algorithm that decided the
question, so experiments can assert not just answers but code paths.
"""

from __future__ import annotations

from typing import Optional

from repro.core.checking.brute_force import (
    check_globally_optimal_brute_force,
    check_globally_optimal_paranoid,
)
from repro.core.checking.ccp_constant_attribute import (
    check_ccp_constant_attribute,
)
from repro.core.checking.ccp_primary_key import check_ccp_primary_key
from repro.core.checking.result import CheckResult
from repro.core.checking.single_fd import check_single_fd
from repro.core.checking.two_keys import check_two_keys
from repro.core.classification import (
    RelationClass,
    classify_ccp_schema,
    classify_schema,
)
from repro.core.instance import Instance
from repro.core.priority import PrioritizingInstance
from repro.exceptions import (
    IntractableSchemaError,
    NotASubinstanceError,
    UsageError,
)

__all__ = ["check_globally_optimal"]


def check_globally_optimal(
    prioritizing: PrioritizingInstance,
    candidate: Instance,
    allow_brute_force: bool = True,
    method: str = "auto",
    backend: Optional[str] = None,
) -> CheckResult:
    """Decide whether ``candidate`` is a globally-optimal repair.

    Parameters
    ----------
    prioritizing:
        The (possibly ccp) prioritizing instance ``(I, ≻)``.
    candidate:
        The subinstance ``J`` to check.
    allow_brute_force:
        When the schema falls on the coNP-hard side of the applicable
        dichotomy, False makes the call raise
        :class:`IntractableSchemaError` instead of running the
        exponential search.
    method:
        ``"auto"`` (dichotomy-guided routing), ``"search"`` (the
        complete goal-directed improvement search — the practical
        checker for hard schemas), ``"brute-force"`` (repair
        enumeration), or ``"paranoid"`` (all-subsets search; tiny
        instances only).
    backend:
        The execution substrate for the tractable checkers and the
        improvement search (``object`` | ``bitset`` | ``auto``, see
        :mod:`repro.core.backend`); the enumeration methods and the
        ccp specializations ignore it.

    Examples
    --------
    >>> from repro.core import Schema, Fact, PriorityRelation
    >>> from repro.core import PrioritizingInstance
    >>> schema = Schema.single_relation(["1 -> 2"], arity=2)
    >>> f, g = Fact("R", (1, "a")), Fact("R", (1, "b"))
    >>> pri = PrioritizingInstance(
    ...     schema, schema.instance([f, g]), PriorityRelation([(f, g)])
    ... )
    >>> result = check_globally_optimal(pri, schema.instance([f]))
    >>> result.is_optimal, result.method
    (True, 'GRepCheck1FD')
    """
    if method not in ("auto", "search", "brute-force", "paranoid"):
        raise UsageError(f"unknown method {method!r}")

    # The candidate-⊆-instance precondition is a malformed input for
    # *every* method, so it is validated here, once, before dispatching
    # (the individual checkers re-validate defensively via precheck, but
    # hoisting keeps the four methods' error behaviour identical).
    extra = candidate.facts - prioritizing.instance.facts
    if extra:
        raise NotASubinstanceError(
            f"candidate repair contains {len(extra)} fact(s) outside the "
            f"instance, e.g. {next(iter(extra))}"
        )

    if method == "brute-force":
        return check_globally_optimal_brute_force(prioritizing, candidate)
    if method == "paranoid":
        return check_globally_optimal_paranoid(prioritizing, candidate)
    if method == "search":
        from repro.core.checking.improvement_search import (
            check_globally_optimal_search,
        )

        return check_globally_optimal_search(
            prioritizing, candidate, backend=backend
        )

    if prioritizing.is_ccp:
        return _dispatch_ccp(
            prioritizing, candidate, allow_brute_force, backend
        )
    return _dispatch_classical(
        prioritizing, candidate, allow_brute_force, backend
    )


def _dispatch_classical(
    prioritizing: PrioritizingInstance,
    candidate: Instance,
    allow_brute_force: bool,
    backend: Optional[str] = None,
) -> CheckResult:
    verdict = classify_schema(prioritizing.schema)
    if not verdict.is_tractable:
        if not allow_brute_force:
            raise IntractableSchemaError(
                "globally-optimal repair checking is coNP-complete for "
                f"this schema (hard relations: {verdict.hard_relations}); "
                "pass allow_brute_force=True to run the exponential search"
            )
        return check_globally_optimal_brute_force(prioritizing, candidate)

    # Proposition 3.5: the candidate is globally optimal iff each of its
    # per-relation restrictions is.
    for relation_verdict in verdict.per_relation:
        name = relation_verdict.relation
        restricted = prioritizing.restrict_to_relation(name)
        restricted_candidate = restricted.instance.subinstance(
            fact for fact in candidate.relation(name)
        )
        if relation_verdict.kind is RelationClass.SINGLE_FD:
            result = check_single_fd(
                restricted,
                restricted_candidate,
                relation_verdict.witnesses[0],
                backend=backend,
            )
        else:
            key1, key2 = relation_verdict.witnesses
            result = check_two_keys(
                restricted, restricted_candidate, key1, key2, backend=backend
            )
        if not result.is_optimal:
            return CheckResult(
                is_optimal=False,
                semantics="global",
                method=result.method,
                improvement=_lift_improvement(candidate, name, result),
                reason=f"relation {name}: {result.reason}",
            )
    methods = {
        "GRepCheck1FD"
        if v.kind is RelationClass.SINGLE_FD
        else "GRepCheck2Keys"
        for v in verdict.per_relation
    }
    method = methods.pop() if len(methods) == 1 else "per-relation"
    return CheckResult(is_optimal=True, semantics="global", method=method)


def _lift_improvement(
    candidate: Instance, relation_name: str, result: CheckResult
) -> Optional[Instance]:
    """Lift a per-relation improvement back to the full signature.

    Replaces the candidate's facts of ``relation_name`` with the
    restricted improvement's facts; by the argument behind Proposition
    3.5, the lifted instance is a global improvement of the candidate.
    """
    if result.improvement is None:
        return None
    kept = candidate.facts - candidate.relation(relation_name)
    # Both fact sets come from instances already validated against this
    # signature (the restriction shares its relation symbol), so the
    # trusted path applies.
    return Instance._from_validated(
        candidate.signature, kept | result.improvement.facts
    )


def _dispatch_ccp(
    prioritizing: PrioritizingInstance,
    candidate: Instance,
    allow_brute_force: bool,
    backend: Optional[str] = None,
) -> CheckResult:
    verdict = classify_ccp_schema(prioritizing.schema)
    if verdict.is_primary_key_assignment:
        return check_ccp_primary_key(prioritizing, candidate)
    if verdict.is_constant_attribute_assignment:
        return check_ccp_constant_attribute(prioritizing, candidate)

    # The schema is ccp-hard, but the concrete priority may still be
    # conflict-only, in which case the classical dichotomy applies (the
    # optimality semantics is identical; only the allowed inputs differ).
    if _is_conflict_only(prioritizing):
        # _is_conflict_only just established the classical invariant
        # edge by edge, so the trusted path applies; the conflict index
        # is over the same (schema, I) and is reused as-is.
        classical = PrioritizingInstance._from_validated(
            prioritizing.schema,
            prioritizing.instance,
            prioritizing.priority,
            ccp=False,
            conflict_index=prioritizing.conflict_index,
        )
        return _dispatch_classical(
            classical, candidate, allow_brute_force, backend
        )

    if not allow_brute_force:
        raise IntractableSchemaError(
            "ccp globally-optimal repair checking is coNP-complete for "
            "this schema (neither a primary-key nor a constant-attribute "
            "assignment); pass allow_brute_force=True to run the "
            "exponential search"
        )
    return check_globally_optimal_brute_force(prioritizing, candidate)


def _is_conflict_only(prioritizing: PrioritizingInstance) -> bool:
    """Whether every priority edge relates conflicting facts."""
    index = prioritizing.conflict_index
    return all(
        worse in index.conflicts_of(better)
        for better, worse in prioritizing.priority.edges
    )
