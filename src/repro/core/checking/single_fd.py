"""``GRepCheck1FD`` — globally-optimal repair checking under a single FD.

Implements Section 4.1 / Figure 2 of the paper, for a single-relation
schema whose FDs are equivalent to one FD ``A → B``.  The equivalence
matters: conflicting pairs (hence consistency of subinstances) are
identical between ``Δ|R`` and its single-FD witness, so the algorithm may
work entirely with the witness.

The algorithm's engine is the *block swap* ``J[f ↔ g]`` (Example 4.1):
for conflicting ``f ∈ J`` and ``g ∈ I \\ J`` (they agree on ``A``,
disagree on ``B``), remove from ``J`` every fact agreeing with ``f`` on
``A ∪ B`` and add every fact of ``I`` agreeing with ``g`` on ``A ∪ B``.
The result is always consistent, and Lemma 4.2 shows that if *any* global
improvement exists then some block swap is one — so testing every
conflicting pair decides optimality.

The literal paper loop tests every conflicting *pair* ``(f, g)``, but the
swap depends only on the pair of blocks (all facts of a block produce the
same swap), so :func:`check_single_fd` iterates over blocks; the
pair-level loop is kept as :func:`check_single_fd_literal` for the
fidelity tests and the ablation benchmark.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.backend import BACKEND_BITSET, resolve_backend
from repro.core.checking.result import CheckResult
from repro.core.checking.validation import (
    precheck,
    precheck_bitset,
    precheck_fresh,
)
from repro.core.fact import Fact
from repro.core.fd import FD
from repro.core.improvements import (
    is_global_improvement,
    is_global_improvement_sets,
)
from repro.core.instance import Instance
from repro.core.interning import iter_bits
from repro.core.priority import PrioritizingInstance

__all__ = ["check_single_fd", "check_single_fd_literal", "block_swap"]

_METHOD = "GRepCheck1FD"


def block_swap(
    instance: Instance,
    candidate: Instance,
    fd: FD,
    fact_in: Fact,
    fact_out: Fact,
) -> Instance:
    """The paper's ``J[f ↔ g]`` (Section 4.1).

    ``fact_in`` (the paper's ``f``) must belong to ``candidate``;
    ``fact_out`` (the paper's ``g``) agrees with it on ``fd.lhs`` and
    disagrees on ``fd.rhs``.  Removes from ``candidate`` all facts
    agreeing with ``fact_in`` on ``lhs ∪ rhs`` and adds all facts of
    ``instance`` agreeing with ``fact_out`` on ``lhs ∪ rhs``.
    """
    span = fd.span_sorted
    removed = [
        fact for fact in candidate if fact.agrees_with(fact_in, span)
    ]
    added = [
        fact for fact in instance if fact.agrees_with(fact_out, span)
    ]
    return candidate.replace_facts(removed, added)


def _blocks(
    instance: Instance, fd: FD
) -> Dict[Tuple, Dict[Tuple, List[Fact]]]:
    """Group the facts of ``instance`` by (lhs-value, rhs-value)."""
    lhs_sorted = fd.lhs_sorted
    rhs_sorted = fd.rhs_sorted
    grouped: Dict[Tuple, Dict[Tuple, List[Fact]]] = {}
    for fact in instance:
        lhs_value = fact.project(lhs_sorted)
        rhs_value = fact.project(rhs_sorted)
        grouped.setdefault(lhs_value, {}).setdefault(rhs_value, []).append(
            fact
        )
    return grouped


def _check_single_fd_bitset(
    prioritizing: PrioritizingInstance,
    candidate: Instance,
    fd: FD,
) -> CheckResult:
    """The block-swap scan of Figure 2 on the bitset backend.

    The block partition :func:`_blocks` rebuilds per call is exactly the
    precompiled :class:`~repro.core.bitset_index._FDLayout` of ``fd``,
    so the scan reduces to: per lhs-group with kept facts, per non-kept
    rhs block, test ``added``'s improver coverage of the kept mask with
    one ``improvers_local & added`` word-op per removed fact.  The swap
    instance is materialized only for the block that succeeds.
    """
    failure, view = precheck_bitset(prioritizing, candidate, "global", _METHOD)
    if failure is not None:
        return failure
    if fd.is_trivial():
        # No conflicts are possible, so the only repair is I itself and
        # precheck has already confirmed maximality (hence J = I).
        return CheckResult(is_optimal=True, semantics="global", method=_METHOD)
    core = prioritizing.bitset_core
    layout = core.layout_for(fd)
    improvers = core.priority.improvers_local(layout)
    kept, kept_rhs, _ = view.kept_for(layout)
    fact_of = core.interner.fact_of
    for group in range(layout.group_count):
        removed_mask = kept[group]
        if not removed_mask:
            continue
        members = layout.group_members[group]
        subs = layout.group_rhs_subs[group]
        if len(subs) < 2:
            continue
        kept_sub = kept_rhs[group]
        removed_ids = [members[local] for local in iter_bits(removed_mask)]
        for sub, added_mask in enumerate(subs):
            if sub == kept_sub:
                continue
            if all(
                improvers[fid] & added_mask for fid in removed_ids
            ):
                swap = candidate.replace_facts(
                    [fact_of(fid) for fid in removed_ids],
                    [
                        fact_of(members[local])
                        for local in iter_bits(added_mask)
                    ],
                )
                lhs_value = layout.group_lhs_values[group]
                rhs_value = layout.group_rhs_values[group][sub]
                return CheckResult(
                    is_optimal=False,
                    semantics="global",
                    method=_METHOD,
                    improvement=swap,
                    reason=(
                        f"the block swap at lhs value {lhs_value!r} to rhs "
                        f"value {rhs_value!r} is a global improvement"
                    ),
                )
    return CheckResult(is_optimal=True, semantics="global", method=_METHOD)


def check_single_fd(
    prioritizing: PrioritizingInstance,
    candidate: Instance,
    fd: FD,
    backend: Optional[str] = None,
) -> CheckResult:
    """``GRepCheck1FD`` at block granularity (Figure 2, optimized).

    Parameters
    ----------
    prioritizing:
        The classical prioritizing instance ``(I, ≻)`` over a
        single-relation schema.
    candidate:
        The subinstance ``J`` to check.
    fd:
        The single FD ``A → B`` that ``Δ|R`` is equivalent to (produced
        by :func:`repro.core.classification.equivalent_single_fd`).
    backend:
        The execution substrate (see :mod:`repro.core.backend`); both
        backends return identical verdicts.

    For each lhs-group containing candidate facts, and each rhs-value of
    that group other than the candidate's, the corresponding block swap
    is tested for being a global improvement.  The test runs directly on
    the ``(added, removed)`` fact sets of the swap — the facts entering
    a swap are always in a different rhs-block than the kept one, hence
    outside the consistent candidate, so the symmetric difference is
    known without building the swap instance; the witness ``Instance``
    is materialized only for the swap that succeeds.
    """
    if resolve_backend(len(prioritizing.instance), backend) == BACKEND_BITSET:
        return _check_single_fd_bitset(prioritizing, candidate, fd)
    failure = precheck(prioritizing, candidate, "global", _METHOD)
    if failure is not None:
        return failure
    if fd.is_trivial():
        # No conflicts are possible, so the only repair is I itself and
        # precheck has already confirmed maximality (hence J = I).
        return CheckResult(is_optimal=True, semantics="global", method=_METHOD)
    instance = prioritizing.instance
    priority = prioritizing.priority
    candidate_facts = candidate.facts
    for lhs_value, by_rhs in _blocks(instance, fd).items():
        kept_blocks = [
            (rhs_value, facts)
            for rhs_value, facts in by_rhs.items()
            if any(fact in candidate_facts for fact in facts)
        ]
        if not kept_blocks:
            continue
        # J is consistent, so exactly one rhs-block per lhs-group holds
        # candidate facts.
        (kept_rhs, kept_facts), = kept_blocks
        removed = [fact for fact in kept_facts if fact in candidate_facts]
        for rhs_value, added in by_rhs.items():
            if rhs_value == kept_rhs:
                continue
            if is_global_improvement_sets(added, removed, priority):
                swap = candidate.replace_facts(removed, added)
                return CheckResult(
                    is_optimal=False,
                    semantics="global",
                    method=_METHOD,
                    improvement=swap,
                    reason=(
                        f"the block swap at lhs value {lhs_value!r} to rhs "
                        f"value {rhs_value!r} is a global improvement"
                    ),
                )
    return CheckResult(is_optimal=True, semantics="global", method=_METHOD)


def check_single_fd_literal(
    prioritizing: PrioritizingInstance,
    candidate: Instance,
    fd: FD,
) -> CheckResult:
    """``GRepCheck1FD`` exactly as printed in Figure 2.

    Loops over all conflicting pairs ``f ∈ J``, ``g ∈ I \\ J`` and tests
    whether ``J[f ↔ g]`` is a global improvement of ``J``.  Kept for
    fidelity testing and for the block-vs-pair ablation benchmark; uses
    the per-call :func:`precheck_fresh` so its cost profile matches the
    pre-fast-path implementation end to end.
    """
    failure = precheck_fresh(
        prioritizing, candidate, "global", _METHOD + "-literal"
    )
    if failure is not None:
        return failure
    instance = prioritizing.instance
    priority = prioritizing.priority
    outsiders = instance.facts - candidate.facts
    for fact_in in candidate:
        for fact_out in outsiders:
            if not fd.is_conflict(  # repro-lint: ignore[RL009]
                fact_in, fact_out
            ):
                continue
            swap = block_swap(instance, candidate, fd, fact_in, fact_out)
            if is_global_improvement(swap, candidate, priority):
                return CheckResult(
                    is_optimal=False,
                    semantics="global",
                    method=_METHOD + "-literal",
                    improvement=swap,
                    reason=f"J[{fact_in} <-> {fact_out}] improves J",
                )
    return CheckResult(
        is_optimal=True, semantics="global", method=_METHOD + "-literal"
    )
