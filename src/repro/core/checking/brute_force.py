"""Brute-force globally-optimal repair checking (the coNP baseline).

Globally-optimal repair checking is in coNP for every schema (Staworko et
al., quoted in Section 3): a certificate for a "no" answer is a global
improvement.  The brute-force checker searches for that certificate by
enumerating *repairs* — which suffices by the following observation:

    If ``J'`` is any global improvement of a repair ``J``, extend ``J'``
    to a maximal consistent ``J''``.  Then ``J \\ J'' ⊆ J \\ J'`` and
    ``J'' \\ J ⊇ J' \\ J``, so the improvement condition carries over,
    and ``J'' ≠ J`` because ``J' \\ J ≠ ∅`` (a global improvement of a
    *maximal* ``J`` cannot be a strict subset).  Hence an improvement
    exists iff a maximal one does.

The argument does not use the conflicting-facts restriction, so the same
checker is the baseline for ccp-instances.

For hardened cross-validation, :func:`check_globally_optimal_paranoid`
scans *all* consistent subinstances instead (exponentially worse; used in
tests to validate the repair-restricted search itself).
"""

from __future__ import annotations

from itertools import combinations

from repro.core.checking.result import CheckResult
from repro.core.checking.validation import precheck
from repro.core.improvements import is_global_improvement
from repro.core.instance import Instance
from repro.core.priority import PrioritizingInstance
from repro.core.repairs import enumerate_repairs

__all__ = [
    "check_globally_optimal_brute_force",
    "check_globally_optimal_paranoid",
]


def check_globally_optimal_brute_force(
    prioritizing: PrioritizingInstance, candidate: Instance
) -> CheckResult:
    """Decide global optimality by enumerating all repairs.

    Exponential in the number of conflicts; correct for every schema and
    for both classical and ccp priorities.  This is the baseline every
    polynomial checker is validated against, and the only complete
    checker available on the coNP-hard side of the dichotomies.
    """
    failure = precheck(prioritizing, candidate, "global", "brute-force")
    if failure is not None:
        return failure
    priority = prioritizing.priority
    for repair in enumerate_repairs(prioritizing.schema, prioritizing.instance):
        if is_global_improvement(repair, candidate, priority):
            return CheckResult(
                is_optimal=False,
                semantics="global",
                method="brute-force",
                improvement=repair,
                reason="an improving repair exists",
            )
    return CheckResult(is_optimal=True, semantics="global", method="brute-force")


def check_globally_optimal_paranoid(
    prioritizing: PrioritizingInstance, candidate: Instance
) -> CheckResult:
    """Decide global optimality by scanning all consistent subinstances.

    Only usable for instances of roughly a dozen facts; exists to
    cross-validate :func:`check_globally_optimal_brute_force` (and, by
    transitivity, everything validated against it).
    """
    failure = precheck(prioritizing, candidate, "global", "paranoid")
    if failure is not None:
        return failure
    schema = prioritizing.schema
    instance = prioritizing.instance
    priority = prioritizing.priority
    facts = sorted(instance.facts, key=str)
    for size in range(len(facts) + 1):
        for subset in combinations(facts, size):
            other = instance.subinstance(subset)
            if not schema.is_consistent(other):
                continue
            if is_global_improvement(other, candidate, priority):
                return CheckResult(
                    is_optimal=False,
                    semantics="global",
                    method="paranoid",
                    improvement=other,
                    reason="an improving consistent subinstance exists",
                )
    return CheckResult(is_optimal=True, semantics="global", method="paranoid")
