"""Repair-checking algorithms for all three preference semantics.

Entry points
------------
:func:`check_globally_optimal`
    Dichotomy-guided globally-optimal checking (Sections 3, 4, 7).
:func:`check_pareto_optimal`
    Pareto-optimal checking, PTIME for every schema (Section 3).
:func:`check_completion_optimal`
    Completion-optimal checking, PTIME for every schema (Section 3).

Individual algorithms (``GRepCheck1FD``, ``GRepCheck2Keys``, the ccp
checkers, and the brute-force baselines) are exposed for direct use by
experiments and tests.
"""

from repro.core.checking.brute_force import (
    check_globally_optimal_brute_force,
    check_globally_optimal_paranoid,
)
from repro.core.checking.ccp_constant_attribute import (
    check_ccp_constant_attribute,
    consistent_partitions,
    enumerate_partition_repairs,
)
from repro.core.checking.ccp_primary_key import (
    CcpGraph,
    build_ccp_graph,
    check_ccp_primary_key,
)
from repro.core.checking.completion import (
    brute_force_completion_check,
    check_completion_optimal,
    enumerate_completion_optimal_repairs,
    greedy_completion_repair,
)
from repro.core.checking.dispatcher import check_globally_optimal
from repro.core.checking.improvement_search import (
    check_globally_optimal_search,
    find_global_improvement,
)
from repro.core.checking.pareto import (
    check_pareto_optimal,
    check_pareto_optimal_literal,
)
from repro.core.checking.result import CheckResult
from repro.core.checking.single_fd import (
    block_swap,
    check_single_fd,
    check_single_fd_literal,
)
from repro.core.checking.two_keys import (
    SwapGraph,
    build_swap_graph,
    check_two_keys,
    check_two_keys_literal,
)

__all__ = [
    "CheckResult",
    "check_globally_optimal",
    "check_pareto_optimal",
    "check_pareto_optimal_literal",
    "check_completion_optimal",
    "check_globally_optimal_brute_force",
    "check_globally_optimal_paranoid",
    "check_globally_optimal_search",
    "find_global_improvement",
    "check_single_fd",
    "check_single_fd_literal",
    "block_swap",
    "check_two_keys",
    "check_two_keys_literal",
    "build_swap_graph",
    "SwapGraph",
    "check_ccp_primary_key",
    "build_ccp_graph",
    "CcpGraph",
    "check_ccp_constant_attribute",
    "consistent_partitions",
    "enumerate_partition_repairs",
    "greedy_completion_repair",
    "enumerate_completion_optimal_repairs",
    "brute_force_completion_check",
]
