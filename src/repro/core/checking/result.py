"""The result type shared by all repair checkers.

Every checker answers the *repair-checking problem*: given a prioritizing
instance ``(I, ≻)`` and a subinstance ``J``, is ``J`` an optimal repair
under the requested semantics?  Beyond the boolean, checkers report which
algorithm ran and — whenever the answer is negative — a concrete
*witness*: the improving subinstance that disqualifies ``J``.  Witnesses
make the checkers self-certifying (tests re-validate every witness
against Definition 2.4) and are invaluable when using the library for
actual data cleaning.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.instance import Instance

__all__ = ["CheckResult"]


@dataclass(frozen=True)
class CheckResult:
    """Outcome of a repair-checking call.

    Attributes
    ----------
    is_optimal:
        Whether ``J`` is an optimal repair under the checker's semantics.
    semantics:
        ``"global"``, ``"pareto"``, or ``"completion"``.
    method:
        Which algorithm decided the question, e.g. ``"GRepCheck1FD"``,
        ``"GRepCheck2Keys"``, ``"ccp-primary-key"``, ``"brute-force"``.
    improvement:
        When ``is_optimal`` is False and the failure is an improvement
        (rather than ``J`` not being consistent), a concrete improving
        subinstance; None otherwise.
    reason:
        A short human-readable explanation.

    ``CheckResult`` is truthy exactly when ``is_optimal`` is True, so
    callers may write ``if check_globally_optimal(...):``.
    """

    is_optimal: bool
    semantics: str
    method: str
    improvement: Optional[Instance] = None
    reason: str = ""

    def __bool__(self) -> bool:
        return self.is_optimal

    def __str__(self) -> str:
        verdict = "optimal" if self.is_optimal else "not optimal"
        suffix = f" ({self.reason})" if self.reason else ""
        return f"[{self.semantics}/{self.method}] {verdict}{suffix}"
