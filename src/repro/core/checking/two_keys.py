"""``GRepCheck2Keys`` — globally-optimal repair checking under two keys.

Implements Section 4.2 / Figure 4 of the paper, for a single-relation
schema whose FDs are equivalent to two key constraints
``A1 → ⟦R⟧`` and ``A2 → ⟦R⟧``.

The algorithm (by Lemma 4.4) is:

1. if ``J`` has a Pareto improvement, answer "not optimal";
2. otherwise ``J`` is globally optimal iff both *swap graphs*
   ``G12_J`` and ``G21_J`` are acyclic.

``G12_J`` is the directed bipartite graph whose left side holds the
``A1``-projections of ``J``'s facts and whose right side holds their
``A2``-projections, with:

* a forward edge ``f[A1] → f[A2]`` for every ``f ∈ J``;
* a backward edge ``f'[A2] → f'[A1]`` for every ``f' ∈ I \\ J`` such that
  some ``f ∈ J`` has ``f[A2] = f'[A2]`` and ``f' ≻ f``.

``G21_J`` swaps the roles of ``A1`` and ``A2``.  A cycle alternates
forward (facts of ``J`` to evict) and backward (preferred replacement)
edges; the Lemma 4.4 proof turns it into a concrete global improvement
``(J \\ F) ∪ F'``, which this implementation reconstructs and returns as
the witness.  Figure 3 of the paper shows the two graphs for the running
example; :func:`build_swap_graph` is exposed so experiment E4 can
regenerate it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.backend import BACKEND_BITSET, resolve_backend
from repro.core.bitset_index import BitsetCandidate, BitsetCore, _FDLayout
from repro.core.checking.result import CheckResult
from repro.core.checking.validation import (
    precheck,
    precheck_bitset,
    precheck_fresh,
)
from repro.core.fact import Fact
from repro.core.fd import FD
from repro.core.improvements import (
    find_pareto_improvement,
    find_pareto_improvement_bitset,
    find_pareto_improvement_fresh,
)
from repro.core.instance import Instance
from repro.core.priority import PrioritizingInstance

__all__ = [
    "check_two_keys",
    "check_two_keys_literal",
    "build_swap_graph",
    "SwapGraph",
]

_METHOD = "GRepCheck2Keys"

# A node is ("L" | "R", projection-tuple); edges carry the fact that
# induced them so cycles can be turned back into improvements.
_Node = Tuple[str, Tuple]


@dataclass(frozen=True)
class SwapGraph:
    """One of the bipartite swap graphs ``G12_J`` / ``G21_J``.

    Attributes
    ----------
    first, second:
        The key left-hand sides playing the roles of ``A1`` and ``A2``
        (``G12`` uses ``(A1, A2)``; ``G21`` uses ``(A2, A1)``).
    edges:
        Adjacency: node → {successor node → witnessing fact}.  Forward
        (left-to-right) edges are witnessed by the ``J``-fact, backward
        edges by the improving fact of ``I \\ J``.
    """

    first: FrozenSet[int]
    second: FrozenSet[int]
    edges: Dict[_Node, Dict[_Node, Fact]]

    def find_cycle(self) -> Optional[List[_Node]]:
        """A simple directed cycle as a node list, or None if acyclic."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color: Dict[_Node, int] = {}
        parent: Dict[_Node, Optional[_Node]] = {}
        for root in self.edges:
            if color.get(root, WHITE) != WHITE:
                continue
            stack: List[Tuple[_Node, List[_Node]]] = [
                (root, list(self.edges.get(root, {})))
            ]
            color[root] = GRAY
            parent[root] = None
            while stack:
                node, pending = stack[-1]
                if pending:
                    child = pending.pop()
                    state = color.get(child, WHITE)
                    if state == GRAY:
                        cycle = [node]
                        walker = node
                        while walker != child:
                            walker = parent[walker]  # type: ignore[assignment]
                            cycle.append(walker)
                        cycle.reverse()
                        return cycle
                    if state == WHITE:
                        color[child] = GRAY
                        parent[child] = node
                        stack.append((child, list(self.edges.get(child, {}))))
                else:
                    color[node] = BLACK
                    stack.pop()
        return None

    def is_acyclic(self) -> bool:
        """Whether the graph has no directed cycle."""
        return self.find_cycle() is None

    def cycle_to_improvement(
        self, cycle: List[_Node], candidate: Instance
    ) -> Instance:
        """The global improvement ``(J \\ F) ∪ F'`` induced by ``cycle``.

        Follows the "if" direction of Lemma 4.4: forward edges on the
        cycle name the evicted facts ``F ⊆ J``, backward edges name the
        preferred replacements ``F' ⊆ I \\ J``.
        """
        removed: List[Fact] = []
        added: List[Fact] = []
        for position, node in enumerate(cycle):
            successor = cycle[(position + 1) % len(cycle)]
            witness = self.edges[node][successor]
            if node[0] == "L":
                removed.append(witness)
            else:
                added.append(witness)
        return candidate.replace_facts(removed, added)


def build_swap_graph(
    prioritizing: PrioritizingInstance,
    candidate: Instance,
    first: FrozenSet[int],
    second: FrozenSet[int],
) -> SwapGraph:
    """Build ``G12_J`` (or ``G21_J`` with the roles swapped).

    ``first`` and ``second`` are the two key left-hand sides; the left
    side of the graph carries ``first``-projections.
    """
    first_sorted = tuple(sorted(first))
    second_sorted = tuple(sorted(second))
    edges: Dict[_Node, Dict[_Node, Fact]] = {}
    # Forward edges: one per candidate fact.  Because `first` is a key
    # and the candidate is consistent, left nodes identify candidate
    # facts uniquely (and symmetrically for right nodes).
    second_value_to_fact: Dict[Tuple, Fact] = {}
    for fact in candidate:
        second_value = fact.project(second_sorted)
        left: _Node = ("L", fact.project(first_sorted))
        right: _Node = ("R", second_value)
        edges.setdefault(left, {})[right] = fact
        edges.setdefault(right, {})
        second_value_to_fact[second_value] = fact
    # Backward edges: outsiders preferred to the candidate fact sharing
    # their `second` projection.
    priority = prioritizing.priority
    for outsider in prioritizing.instance.facts - candidate.facts:
        second_value = outsider.project(second_sorted)
        blocked = second_value_to_fact.get(second_value)
        if blocked is None or not priority.prefers(outsider, blocked):
            continue
        right = ("R", second_value)
        left = ("L", outsider.project(first_sorted))
        edges.setdefault(right, {})[left] = outsider
        edges.setdefault(left, {})
    return SwapGraph(first=first, second=second, edges=edges)


def _build_swap_graph_bitset(
    core: BitsetCore,
    view: BitsetCandidate,
    lay_first: _FDLayout,
    lay_second: _FDLayout,
    first: FrozenSet[int],
    second: FrozenSet[int],
) -> SwapGraph:
    """The swap graph from the columnar layouts, no per-fact projection.

    Nodes carry *group indices* of the two key layouts instead of raw
    projection tuples (the layouts key groups by lhs value, so the
    graphs are isomorphic); the candidate fact blocking a given
    ``second``-group is an O(1) array read, because ``second`` is a key
    and a consistent candidate keeps at most one fact per key group.
    The backward-edge priority test is a local-mask bit probe.
    """
    edges: Dict[_Node, Dict[_Node, Fact]] = {}
    group_of1 = lay_first.group_of
    group_of2 = lay_second.group_of
    local_of2 = lay_second.local_of
    fact_of = core.interner.fact_of
    blocking_fact = [-1] * lay_second.group_count
    for fid in view.fids:
        group1 = group_of1[fid]
        group2 = group_of2[fid]
        if group1 < 0 or group2 < 0:
            continue
        left: _Node = ("L", (group1,))
        right: _Node = ("R", (group2,))
        edges.setdefault(left, {})[right] = fact_of(fid)
        edges.setdefault(right, {})
        blocking_fact[group2] = fid
    preferred2 = core.priority.preferred_local(lay_second)
    for fid in view.outsider_ids():
        group2 = group_of2[fid]
        if group2 < 0:
            continue
        blocked = blocking_fact[group2]
        if blocked < 0 or not preferred2[fid] >> local_of2[blocked] & 1:
            continue
        right = ("R", (group2,))
        left = ("L", (group_of1[fid],))
        edges.setdefault(right, {})[left] = fact_of(fid)
        edges.setdefault(left, {})
    return SwapGraph(first=first, second=second, edges=edges)


def check_two_keys(
    prioritizing: PrioritizingInstance,
    candidate: Instance,
    key1: FD,
    key2: FD,
    backend: Optional[str] = None,
) -> CheckResult:
    """``GRepCheck2Keys`` (Figure 4).

    Parameters
    ----------
    prioritizing:
        The classical prioritizing instance ``(I, ≻)`` over a
        single-relation schema.
    candidate:
        The subinstance ``J`` to check.
    key1, key2:
        The two key constraints ``Δ|R`` is equivalent to (produced by
        :func:`repro.core.classification.equivalent_two_keys`).
    backend:
        The execution substrate (see :mod:`repro.core.backend`); both
        backends return identical verdicts.
    """
    if resolve_backend(len(prioritizing.instance), backend) == BACKEND_BITSET:
        return _check_two_keys_bitset(prioritizing, candidate, key1, key2)
    failure = precheck(prioritizing, candidate, "global", _METHOD)
    if failure is not None:
        return failure
    pareto = find_pareto_improvement(prioritizing, candidate)
    if pareto is not None:
        return CheckResult(
            is_optimal=False,
            semantics="global",
            method=_METHOD,
            improvement=pareto,
            reason="a Pareto improvement exists",
        )
    for first, second, label in (
        (key1.lhs, key2.lhs, "G12"),
        (key2.lhs, key1.lhs, "G21"),
    ):
        graph = build_swap_graph(prioritizing, candidate, first, second)
        cycle = graph.find_cycle()
        if cycle is not None:
            improvement = graph.cycle_to_improvement(cycle, candidate)
            return CheckResult(
                is_optimal=False,
                semantics="global",
                method=_METHOD,
                improvement=improvement,
                reason=f"the swap graph {label} has a cycle (Lemma 4.4)",
            )
    return CheckResult(is_optimal=True, semantics="global", method=_METHOD)


def _check_two_keys_bitset(
    prioritizing: PrioritizingInstance,
    candidate: Instance,
    key1: FD,
    key2: FD,
) -> CheckResult:
    """``GRepCheck2Keys`` on the bitset backend (same three steps)."""
    failure, view = precheck_bitset(prioritizing, candidate, "global", _METHOD)
    if failure is not None:
        return failure
    pareto = find_pareto_improvement_bitset(prioritizing, candidate, view)
    if pareto is not None:
        return CheckResult(
            is_optimal=False,
            semantics="global",
            method=_METHOD,
            improvement=pareto,
            reason="a Pareto improvement exists",
        )
    core = prioritizing.bitset_core
    lay1 = core.layout_for(key1)
    lay2 = core.layout_for(key2)
    for lay_first, lay_second, first, second, label in (
        (lay1, lay2, key1.lhs, key2.lhs, "G12"),
        (lay2, lay1, key2.lhs, key1.lhs, "G21"),
    ):
        graph = _build_swap_graph_bitset(
            core, view, lay_first, lay_second, first, second
        )
        cycle = graph.find_cycle()
        if cycle is not None:
            improvement = graph.cycle_to_improvement(cycle, candidate)
            return CheckResult(
                is_optimal=False,
                semantics="global",
                method=_METHOD,
                improvement=improvement,
                reason=f"the swap graph {label} has a cycle (Lemma 4.4)",
            )
    return CheckResult(is_optimal=True, semantics="global", method=_METHOD)


def _build_swap_graph_fresh(
    prioritizing: PrioritizingInstance,
    candidate: Instance,
    first: FrozenSet[int],
    second: FrozenSet[int],
) -> SwapGraph:
    """Swap-graph construction with per-use projection, no caching.

    The pre-fast-path builder: every projection recomputes
    ``sorted(...)`` and slices the value tuple by hand, as
    ``Fact.project`` did before the per-fact cache.  Retained for the
    ablation benchmark so the measured baseline excludes the projection
    fast path as well.
    """

    def project(fact: Fact, attributes: FrozenSet[int]) -> Tuple:
        return tuple(fact.values[p - 1] for p in sorted(attributes))

    edges: Dict[_Node, Dict[_Node, Fact]] = {}
    second_value_to_fact: Dict[Tuple, Fact] = {}
    for fact in candidate:
        second_value = project(fact, second)
        left: _Node = ("L", project(fact, first))
        right: _Node = ("R", second_value)
        edges.setdefault(left, {})[right] = fact
        edges.setdefault(right, {})
        second_value_to_fact[second_value] = fact
    priority = prioritizing.priority
    for outsider in prioritizing.instance.facts - candidate.facts:
        second_value = project(outsider, second)
        blocked = second_value_to_fact.get(second_value)
        if blocked is None or not priority.prefers(outsider, blocked):
            continue
        right = ("R", second_value)
        left = ("L", project(outsider, first))
        edges.setdefault(right, {})[left] = outsider
        edges.setdefault(left, {})
    return SwapGraph(first=first, second=second, edges=edges)


def check_two_keys_literal(
    prioritizing: PrioritizingInstance,
    candidate: Instance,
    key1: FD,
    key2: FD,
) -> CheckResult:
    """``GRepCheck2Keys`` with the pre-fast-path cost profile.

    Semantically identical to :func:`check_two_keys` but rebuilds every
    index per call: :func:`precheck_fresh` for the repair pre-checks,
    :func:`~repro.core.improvements.find_pareto_improvement_fresh` for
    step 1, and a swap-graph builder that re-sorts and re-slices every
    projection.  Retained as the ablation baseline for the perf harness.
    """
    failure = precheck_fresh(
        prioritizing, candidate, "global", _METHOD + "-literal"
    )
    if failure is not None:
        return failure
    pareto = find_pareto_improvement_fresh(prioritizing, candidate)
    if pareto is not None:
        return CheckResult(
            is_optimal=False,
            semantics="global",
            method=_METHOD + "-literal",
            improvement=pareto,
            reason="a Pareto improvement exists",
        )
    for first, second, label in (
        (key1.lhs, key2.lhs, "G12"),
        (key2.lhs, key1.lhs, "G21"),
    ):
        graph = _build_swap_graph_fresh(prioritizing, candidate, first, second)
        cycle = graph.find_cycle()
        if cycle is not None:
            improvement = graph.cycle_to_improvement(cycle, candidate)
            return CheckResult(
                is_optimal=False,
                semantics="global",
                method=_METHOD + "-literal",
                improvement=improvement,
                reason=f"the swap graph {label} has a cycle (Lemma 4.4)",
            )
    return CheckResult(
        is_optimal=True, semantics="global", method=_METHOD + "-literal"
    )
