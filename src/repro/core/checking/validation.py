"""Shared pre-checks run by every repair checker.

All optimal-repair semantics agree on two necessary conditions:

1. ``J`` must be a *consistent* subinstance of ``I`` (an inconsistent
   ``J`` is not a repair of any kind);
2. ``J`` must be *maximal* — otherwise ``J ∪ {g}`` for any non-conflicting
   outsider ``g`` is a proper consistent superset, which is simultaneously
   a global and a Pareto improvement (the improvement conditions are
   vacuous when nothing is removed), so ``J`` is not optimal under any of
   the semantics.

:func:`precheck` factors this out and returns either a failing
:class:`~repro.core.checking.result.CheckResult` or None (all good),
letting each algorithm start from the paper's standing assumption that
``J`` is a repair.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.bitset_index import BitsetCandidate
from repro.core.checking.result import CheckResult
from repro.core.conflicts import ConflictIndex
from repro.core.instance import Instance
from repro.core.priority import PrioritizingInstance
from repro.exceptions import NotASubinstanceError

__all__ = ["precheck", "precheck_bitset", "precheck_fresh"]


def precheck(
    prioritizing: PrioritizingInstance,
    candidate: Instance,
    semantics: str,
    method: str,
) -> Optional[CheckResult]:
    """Run the subinstance / consistency / maximality pre-checks.

    Returns a negative :class:`CheckResult` when ``candidate`` fails one
    of them (with a witness improvement for the maximality failure), or
    None when ``candidate`` is a repair and the caller's algorithm should
    proceed.

    Raises
    ------
    NotASubinstanceError
        If ``candidate`` contains facts outside the instance; this is a
        malformed input rather than a "no" answer.
    """
    instance = prioritizing.instance
    members = candidate.facts
    extra = members - instance.facts
    if extra:
        raise NotASubinstanceError(
            f"candidate repair contains {len(extra)} fact(s) outside the "
            f"instance, e.g. {next(iter(extra))}"
        )
    # One shared index over I answers both pre-checks for every
    # candidate via membership filtering; nothing is rebuilt per call.
    index = prioritizing.conflict_index
    if not index.is_consistent_subset(members):
        return CheckResult(
            is_optimal=False,
            semantics=semantics,
            method=method,
            reason="candidate is not consistent, hence not a repair",
        )
    for outsider in instance.facts - members:
        if not index.conflicts_with_anything_in(outsider, members):
            return CheckResult(
                is_optimal=False,
                semantics=semantics,
                method=method,
                improvement=candidate.with_facts([outsider]),
                reason=(
                    f"candidate is not maximal: {outsider} can be added "
                    f"without breaking consistency"
                ),
            )
    return None


def precheck_bitset(
    prioritizing: PrioritizingInstance,
    candidate: Instance,
    semantics: str,
    method: str,
) -> Tuple[Optional[CheckResult], BitsetCandidate]:
    """The pre-checks of :func:`precheck`, run on the bitset backend.

    Returns ``(result, view)``: the same verdicts and reason strings as
    :func:`precheck` (None when the candidate is a repair), plus the
    :class:`~repro.core.bitset_index.BitsetCandidate` view so the caller
    reuses the per-layout kept masks the pre-checks already extracted.
    """
    core = prioritizing.bitset_core
    view = core.candidate(candidate.facts)
    if view.stray_facts:
        extra = view.stray_facts
        raise NotASubinstanceError(
            f"candidate repair contains {len(extra)} fact(s) outside the "
            f"instance, e.g. {extra[0]}"
        )
    layouts = core.layouts
    # Consistency: some group holding kept facts from two rhs blocks is
    # exactly an unresolved δ-conflict inside the candidate.
    for layout in layouts:
        if view.kept_for(layout)[2] is not None:
            return (
                CheckResult(
                    is_optimal=False,
                    semantics=semantics,
                    method=method,
                    reason="candidate is not consistent, hence not a repair",
                ),
                view,
            )
    # Maximality: an outsider is addable iff no layout places it in a
    # group whose kept facts sit in a different rhs block.  Everything
    # probed here is an O(1) array read per (outsider, FD).
    per_layout = [
        (layout.group_of, layout.rhs_of, view.kept_for(layout)[1])
        for layout in layouts
    ]
    fact_of = core.interner.fact_of
    for fid in view.outsider_ids():
        for group_of, rhs_of, kept_rhs in per_layout:
            group = group_of[fid]
            if group < 0:
                continue
            kept = kept_rhs[group]
            if kept >= 0 and kept != rhs_of[fid]:
                break
        else:
            outsider = fact_of(fid)
            return (
                CheckResult(
                    is_optimal=False,
                    semantics=semantics,
                    method=method,
                    improvement=candidate.with_facts([outsider]),
                    reason=(
                        f"candidate is not maximal: {outsider} can be added "
                        f"without breaking consistency"
                    ),
                ),
                view,
            )
    return None, view


def precheck_fresh(
    prioritizing: PrioritizingInstance,
    candidate: Instance,
    semantics: str,
    method: str,
) -> Optional[CheckResult]:
    """The pre-fast-path pre-checks, rebuilding indexes per call.

    Semantically identical to :func:`precheck` but builds a throwaway
    :class:`ConflictIndex` over the candidate (and another over ``I``
    for the maximality scan) on every invocation, exactly as the
    checkers did before the shared-index fast path.  Retained as the
    cost baseline the ``*_literal`` checkers and the perf harness
    (``benchmarks/bench_core_fastpaths.py``) measure against.
    """
    instance = prioritizing.instance
    members = candidate.facts
    extra = members - instance.facts
    if extra:
        raise NotASubinstanceError(
            f"candidate repair contains {len(extra)} fact(s) outside the "
            f"instance, e.g. {next(iter(extra))}"
        )
    candidate_index = ConflictIndex(  # repro-lint: ignore[RL009]
        prioritizing.schema, candidate
    )
    if not candidate_index.is_consistent():
        return CheckResult(
            is_optimal=False,
            semantics=semantics,
            method=method,
            reason="candidate is not consistent, hence not a repair",
        )
    instance_index = ConflictIndex(  # repro-lint: ignore[RL009]
        prioritizing.schema, instance
    )
    for outsider in instance.facts - members:
        if not any(
            conflicting in members
            for conflicting in instance_index.conflicts_of(outsider)
        ):
            return CheckResult(
                is_optimal=False,
                semantics=semantics,
                method=method,
                improvement=candidate.with_facts([outsider]),
                reason=(
                    f"candidate is not maximal: {outsider} can be added "
                    f"without breaking consistency"
                ),
            )
    return None
