"""Shared pre-checks run by every repair checker.

All optimal-repair semantics agree on two necessary conditions:

1. ``J`` must be a *consistent* subinstance of ``I`` (an inconsistent
   ``J`` is not a repair of any kind);
2. ``J`` must be *maximal* — otherwise ``J ∪ {g}`` for any non-conflicting
   outsider ``g`` is a proper consistent superset, which is simultaneously
   a global and a Pareto improvement (the improvement conditions are
   vacuous when nothing is removed), so ``J`` is not optimal under any of
   the semantics.

:func:`precheck` factors this out and returns either a failing
:class:`~repro.core.checking.result.CheckResult` or None (all good),
letting each algorithm start from the paper's standing assumption that
``J`` is a repair.
"""

from __future__ import annotations

from typing import Optional

from repro.core.checking.result import CheckResult
from repro.core.conflicts import ConflictIndex
from repro.core.instance import Instance
from repro.core.priority import PrioritizingInstance
from repro.exceptions import NotASubinstanceError

__all__ = ["precheck", "precheck_fresh"]


def precheck(
    prioritizing: PrioritizingInstance,
    candidate: Instance,
    semantics: str,
    method: str,
) -> Optional[CheckResult]:
    """Run the subinstance / consistency / maximality pre-checks.

    Returns a negative :class:`CheckResult` when ``candidate`` fails one
    of them (with a witness improvement for the maximality failure), or
    None when ``candidate`` is a repair and the caller's algorithm should
    proceed.

    Raises
    ------
    NotASubinstanceError
        If ``candidate`` contains facts outside the instance; this is a
        malformed input rather than a "no" answer.
    """
    instance = prioritizing.instance
    members = candidate.facts
    extra = members - instance.facts
    if extra:
        raise NotASubinstanceError(
            f"candidate repair contains {len(extra)} fact(s) outside the "
            f"instance, e.g. {next(iter(extra))}"
        )
    # One shared index over I answers both pre-checks for every
    # candidate via membership filtering; nothing is rebuilt per call.
    index = prioritizing.conflict_index
    if not index.is_consistent_subset(members):
        return CheckResult(
            is_optimal=False,
            semantics=semantics,
            method=method,
            reason="candidate is not consistent, hence not a repair",
        )
    for outsider in instance.facts - members:
        if not index.conflicts_with_anything_in(outsider, members):
            return CheckResult(
                is_optimal=False,
                semantics=semantics,
                method=method,
                improvement=candidate.with_facts([outsider]),
                reason=(
                    f"candidate is not maximal: {outsider} can be added "
                    f"without breaking consistency"
                ),
            )
    return None


def precheck_fresh(
    prioritizing: PrioritizingInstance,
    candidate: Instance,
    semantics: str,
    method: str,
) -> Optional[CheckResult]:
    """The pre-fast-path pre-checks, rebuilding indexes per call.

    Semantically identical to :func:`precheck` but builds a throwaway
    :class:`ConflictIndex` over the candidate (and another over ``I``
    for the maximality scan) on every invocation, exactly as the
    checkers did before the shared-index fast path.  Retained as the
    cost baseline the ``*_literal`` checkers and the perf harness
    (``benchmarks/bench_core_fastpaths.py``) measure against.
    """
    instance = prioritizing.instance
    members = candidate.facts
    extra = members - instance.facts
    if extra:
        raise NotASubinstanceError(
            f"candidate repair contains {len(extra)} fact(s) outside the "
            f"instance, e.g. {next(iter(extra))}"
        )
    candidate_index = ConflictIndex(prioritizing.schema, candidate)
    if not candidate_index.is_consistent():
        return CheckResult(
            is_optimal=False,
            semantics=semantics,
            method=method,
            reason="candidate is not consistent, hence not a repair",
        )
    instance_index = ConflictIndex(prioritizing.schema, instance)
    for outsider in instance.facts - members:
        if not any(
            conflicting in members
            for conflicting in instance_index.conflicts_of(outsider)
        ):
            return CheckResult(
                is_optimal=False,
                semantics=semantics,
                method=method,
                improvement=candidate.with_facts([outsider]),
                reason=(
                    f"candidate is not maximal: {outsider} can be added "
                    f"without breaking consistency"
                ),
            )
    return None
