"""A complete, goal-directed search for global improvements.

On the coNP-hard side of the dichotomies the library still has to answer
repair-checking queries; enumerating *all* repairs (the
:mod:`~repro.core.checking.brute_force` baseline) dies as soon as the
conflict graph has one large component, even when the actual witness
improvement is small.  This module implements a branch-and-propagate
search over *partial improvements* that is complete (it finds a global
improvement iff one exists) and, on structured instances such as the
Lemma 5.2 gadgets, explores only the certificate-shaped part of the
search space.

Search state
------------
``added``
    Facts of ``I \\ J`` committed to the improvement.
``removed``
    Facts of ``J`` evicted so far — exactly the facts of ``J``
    conflicting with ``added`` (eviction is never speculative: removing
    a fact without a conflicting addition only makes the improvement
    condition harder to satisfy, so minimal improvements never do it).
``pending``
    Evicted facts not yet dominated by an addition; the search branches
    on *which improver of a pending fact to add next*.

Completeness: let ``J*`` be a global improvement with added set ``A*``.
Seeding with any ``g ∈ A*`` and, at every branch, choosing the improver
that ``A*`` uses, keeps ``added ⊆ A*`` and ``pending`` inside the evicted
set of ``J*``; since every branch point enumerates all improvers, this
path exists in the tree, and it terminates with ``pending = ∅`` — at
which point ``(J \\ removed) ∪ added`` is itself a global improvement
(possibly smaller than ``J*``).  Visited ``added``-sets are memoized, so
the search also terminates on "no" instances (worst-case exponential, as
it must be unless P = NP).
"""

from __future__ import annotations

import time
from typing import Dict, FrozenSet, List, Optional, Set

from repro.core.backend import BACKEND_BITSET, resolve_backend
from repro.core.checking.result import CheckResult
from repro.core.checking.validation import precheck, precheck_bitset
from repro.core.fact import Fact
from repro.core.instance import Instance
from repro.core.interning import iter_bits, popcount
from repro.core.priority import PrioritizingInstance
from repro.exceptions import SearchBudgetExceededError

__all__ = ["find_global_improvement", "check_globally_optimal_search"]

_METHOD = "improvement-search"

#: How many search nodes to expand between wall-clock deadline checks.
_DEADLINE_STRIDE = 64


class _BudgetedSearch:
    """Node-budget and wall-clock charging shared by both searchers."""

    node_budget: Optional[int]
    deadline: Optional[float]
    nodes_explored: int

    def _charge_node(self) -> None:
        self.nodes_explored += 1
        if (
            self.node_budget is not None
            and self.nodes_explored > self.node_budget
        ):
            raise SearchBudgetExceededError(
                "nodes", self.nodes_explored, self.node_budget
            )
        if (
            self.deadline is not None
            and self.nodes_explored % _DEADLINE_STRIDE == 0
            and time.monotonic() > self.deadline
        ):
            raise SearchBudgetExceededError("deadline", self.nodes_explored)


class _Searcher(_BudgetedSearch):
    def __init__(
        self,
        prioritizing: PrioritizingInstance,
        candidate: Instance,
        node_budget: Optional[int] = None,
        deadline: Optional[float] = None,
    ):
        self.node_budget = node_budget
        self.deadline = deadline
        self.nodes_explored = 0
        self.priority = prioritizing.priority
        self.candidate_facts = candidate.facts
        self.outsiders = prioritizing.instance.facts - candidate.facts
        # One shared index over I answers both restricted views; nothing
        # is rebuilt per candidate or per search.
        index = prioritizing.conflict_index
        # Conflicts of each outsider inside the candidate, precomputed.
        self.evicts: Dict[Fact, FrozenSet[Fact]] = {
            outsider: index.conflicts_of_in(outsider, self.candidate_facts)
            for outsider in self.outsiders
        }
        # Conflicts among outsiders, for consistency of `added`.
        self.outsider_conflicts: Dict[Fact, FrozenSet[Fact]] = {
            outsider: index.conflicts_of_in(outsider, self.outsiders)
            for outsider in self.outsiders
        }
        self.visited: Set[FrozenSet[Fact]] = set()

    def improvers_outside(self, fact: Fact) -> FrozenSet[Fact]:
        return self.priority.improvers_of(fact) & self.outsiders

    def search(self) -> Optional[FrozenSet[Fact]]:
        """An added-set completing to a global improvement, or None."""
        for seed in sorted(self.outsiders, key=str):
            result = self._extend(frozenset({seed}))
            if result is not None:
                return result
        return None

    def _extend(self, added: FrozenSet[Fact]) -> Optional[FrozenSet[Fact]]:
        if added in self.visited:
            return None
        self.visited.add(added)
        self._charge_node()
        removed: Set[Fact] = set()
        for outsider in added:
            removed |= self.evicts[outsider]
        pending = [
            fact
            for fact in removed
            if not (self.priority.improvers_of(fact) & added)
        ]
        if not pending:
            return added
        # Branch on the improvers of one pending fact (any choice keeps
        # completeness; picking the most constrained one prunes best).
        target = min(
            pending, key=lambda fact: len(self.improvers_outside(fact))
        )
        for improver in sorted(self.improvers_outside(target), key=str):
            if improver in added:
                continue
            if self.outsider_conflicts[improver] & added:
                continue  # would make `added` inconsistent
            result = self._extend(added | {improver})
            if result is not None:
                return result
        return None


class _BitsetSearcher(_BudgetedSearch):
    """The same branch-and-propagate search over ``added`` bitmasks.

    State sets become masks: per-outsider evicted/conflicting masks are
    one ``&`` against the precomputed global conflict masks, the
    "already dominated" test is ``improvers[fid] & added``, and memoized
    states are plain ints.  Seed and improver order follow ascending
    ids, which is the object searcher's ``str`` order by construction of
    the interner.
    """

    def __init__(
        self,
        prioritizing: PrioritizingInstance,
        candidate: Instance,
        node_budget: Optional[int] = None,
        deadline: Optional[float] = None,
    ):
        self.node_budget = node_budget
        self.deadline = deadline
        self.nodes_explored = 0
        core = prioritizing.bitset_core
        self.core = core
        candidate_mask = core.candidate(candidate.facts).mask()
        self.candidate_mask = candidate_mask
        self.outsiders_mask = core.interner.full_mask & ~candidate_mask
        conflict_masks = core.index.conflict_masks()
        self.evicts: Dict[int, int] = {}
        self.outsider_conflicts: Dict[int, int] = {}
        for fid in iter_bits(self.outsiders_mask):
            self.evicts[fid] = conflict_masks[fid] & candidate_mask
            self.outsider_conflicts[fid] = (
                conflict_masks[fid] & self.outsiders_mask
            )
        self.improvers: List[int] = core.priority.improvers_masks()
        self.visited: Set[int] = set()

    def improvers_outside(self, fid: int) -> int:
        return self.improvers[fid] & self.outsiders_mask

    def search(self) -> Optional[int]:
        """An added-mask completing to a global improvement, or None."""
        for seed in iter_bits(self.outsiders_mask):
            result = self._extend(1 << seed)
            if result is not None:
                return result
        return None

    def _extend(self, added: int) -> Optional[int]:
        if added in self.visited:
            return None
        self.visited.add(added)
        self._charge_node()
        removed = 0
        for outsider in iter_bits(added):
            removed |= self.evicts[outsider]
        pending = [
            fid
            for fid in iter_bits(removed)
            if not self.improvers[fid] & added
        ]
        if not pending:
            return added
        target = min(
            pending, key=lambda fid: popcount(self.improvers_outside(fid))
        )
        for improver in iter_bits(self.improvers_outside(target)):
            bit = 1 << improver
            if added & bit:
                continue
            if self.outsider_conflicts[improver] & added:
                continue  # would make `added` inconsistent
            result = self._extend(added | bit)
            if result is not None:
                return result
        return None


def find_global_improvement(
    prioritizing: PrioritizingInstance,
    candidate: Instance,
    node_budget: Optional[int] = None,
    deadline: Optional[float] = None,
    backend: Optional[str] = None,
) -> Optional[Instance]:
    """A global improvement of the repair ``candidate``, or None.

    Assumes ``candidate`` is a repair (run
    :func:`~repro.core.checking.validation.precheck` first, or use
    :func:`check_globally_optimal_search`).  Complete for every schema
    and for both classical and ccp priorities.  ``backend`` picks the
    execution substrate (see :mod:`repro.core.backend`).

    ``node_budget`` bounds the number of search nodes expanded and
    ``deadline`` (a :func:`time.monotonic` timestamp) bounds wall-clock
    time; exhausting either raises
    :class:`~repro.exceptions.SearchBudgetExceededError`.  With both
    left at None the search is unbounded (and complete).
    """
    if resolve_backend(len(prioritizing.instance), backend) == BACKEND_BITSET:
        bit_searcher = _BitsetSearcher(
            prioritizing, candidate, node_budget, deadline
        )
        added_mask = bit_searcher.search()
        if added_mask is None:
            return None
        removed_mask = 0
        for outsider in iter_bits(added_mask):
            removed_mask |= bit_searcher.evicts[outsider]
        interner = bit_searcher.core.interner
        return candidate.replace_facts(
            interner.facts_of(removed_mask), interner.facts_of(added_mask)
        )
    searcher = _Searcher(prioritizing, candidate, node_budget, deadline)
    added = searcher.search()
    if added is None:
        return None
    removed: Set[Fact] = set()
    for outsider in added:
        removed |= searcher.evicts[outsider]
    return candidate.replace_facts(removed, added)


def check_globally_optimal_search(
    prioritizing: PrioritizingInstance,
    candidate: Instance,
    node_budget: Optional[int] = None,
    deadline: Optional[float] = None,
    backend: Optional[str] = None,
) -> CheckResult:
    """Globally-optimal repair checking via the improvement search.

    Exact on every schema.  Exponential in the worst case (the problem
    is coNP-complete on the hard schemas), but goal-directed: the search
    explores partial certificates instead of whole repairs, which makes
    it the practical checker for hard schemas whose improvements are
    small or highly structured.

    With a ``node_budget`` or ``deadline`` the search becomes the
    *budgeted* checker the batch service degrades to on the coNP-hard
    side: it either decides the question within the budget or raises
    :class:`~repro.exceptions.SearchBudgetExceededError` — it never
    silently returns a wrong answer.  Budget exhaustion is a
    deterministic function of the input and the budget (the deadline, of
    course, is not).
    """
    resolved = resolve_backend(len(prioritizing.instance), backend)
    if resolved == BACKEND_BITSET:
        failure, _ = precheck_bitset(prioritizing, candidate, "global", _METHOD)
    else:
        failure = precheck(prioritizing, candidate, "global", _METHOD)
    if failure is not None:
        return failure
    improvement = find_global_improvement(
        prioritizing, candidate, node_budget, deadline, backend=resolved
    )
    if improvement is not None:
        return CheckResult(
            is_optimal=False,
            semantics="global",
            method=_METHOD,
            improvement=improvement,
            reason="the certificate search found a global improvement",
        )
    return CheckResult(is_optimal=True, semantics="global", method=_METHOD)
