"""Pareto-optimal repair checking (polynomial for every schema).

Staworko, Chomicki and Marcinkowski observed — and the paper quotes in
Section 3 — that Pareto-optimal repair checking admits a polynomial-time
solution for *every* schema, in both the classical and the ccp setting.
The algorithm is the single-swap search of
:func:`repro.core.improvements.find_pareto_improvement`.
"""

from __future__ import annotations

from typing import Optional

from repro.core.backend import BACKEND_BITSET, resolve_backend
from repro.core.checking.result import CheckResult
from repro.core.checking.validation import (
    precheck,
    precheck_bitset,
    precheck_fresh,
)
from repro.core.improvements import (
    find_pareto_improvement,
    find_pareto_improvement_bitset,
    find_pareto_improvement_fresh,
)
from repro.core.instance import Instance
from repro.core.priority import PrioritizingInstance

__all__ = ["check_pareto_optimal", "check_pareto_optimal_literal"]

_METHOD = "single-swap"


def check_pareto_optimal(
    prioritizing: PrioritizingInstance,
    candidate: Instance,
    backend: Optional[str] = None,
) -> CheckResult:
    """Decide whether ``candidate`` is a Pareto-optimal repair.

    Works for every schema and for both classical and ccp priorities; the
    single-swap characterization does not rely on the conflicting-facts
    restriction.  ``backend`` picks the execution substrate (see
    :mod:`repro.core.backend`); both backends return identical verdicts.

    Examples
    --------
    >>> from repro.core import Schema, Fact, PriorityRelation
    >>> from repro.core import PrioritizingInstance
    >>> schema = Schema.single_relation(["1 -> 2"], arity=2)
    >>> f, g = Fact("R", (1, "a")), Fact("R", (1, "b"))
    >>> pri = PrioritizingInstance(
    ...     schema, schema.instance([f, g]), PriorityRelation([(f, g)])
    ... )
    >>> bool(check_pareto_optimal(pri, schema.instance([f])))
    True
    >>> bool(check_pareto_optimal(pri, schema.instance([g])))
    False
    """
    if resolve_backend(len(prioritizing.instance), backend) == BACKEND_BITSET:
        failure, view = precheck_bitset(
            prioritizing, candidate, "pareto", _METHOD
        )
        if failure is not None:
            return failure
        improvement = find_pareto_improvement_bitset(
            prioritizing, candidate, view
        )
    else:
        failure = precheck(prioritizing, candidate, "pareto", _METHOD)
        if failure is not None:
            return failure
        improvement = find_pareto_improvement(prioritizing, candidate)
    if improvement is not None:
        return CheckResult(
            is_optimal=False,
            semantics="pareto",
            method=_METHOD,
            improvement=improvement,
            reason="a single-swap Pareto improvement exists",
        )
    return CheckResult(is_optimal=True, semantics="pareto", method=_METHOD)


def check_pareto_optimal_literal(
    prioritizing: PrioritizingInstance, candidate: Instance
) -> CheckResult:
    """The pre-fast-path Pareto check, rebuilding indexes per call.

    Semantically identical to :func:`check_pareto_optimal` but uses
    :func:`precheck_fresh` and
    :func:`~repro.core.improvements.find_pareto_improvement_fresh`, both
    of which build throwaway conflict indexes on every invocation.
    Retained as the ablation baseline for the perf harness.
    """
    failure = precheck_fresh(
        prioritizing, candidate, "pareto", _METHOD + "-literal"
    )
    if failure is not None:
        return failure
    improvement = find_pareto_improvement_fresh(prioritizing, candidate)
    if improvement is not None:
        return CheckResult(
            is_optimal=False,
            semantics="pareto",
            method=_METHOD + "-literal",
            improvement=improvement,
            reason="a single-swap Pareto improvement exists",
        )
    return CheckResult(
        is_optimal=True, semantics="pareto", method=_METHOD + "-literal"
    )
