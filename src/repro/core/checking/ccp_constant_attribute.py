"""CCP globally-optimal checking for constant-attribute assignments.

Implements Section 7.2.2 of the paper: when every ``Δ|R`` is equivalent
to a single constant-attribute constraint ``∅ → B``, the repairs of an
instance have a very rigid shape.  A *consistent partition* of ``R^I`` is
a maximal set of ``R``-facts agreeing on ``⟦R.∅^Δ⟧`` (the attributes
determined by the empty set); a subinstance is a repair iff it consists
of exactly one consistent partition of each non-empty ``R^I``.

There are therefore at most ``∏_R |R^I|`` repairs — polynomially many for
a fixed schema (the degree is the number of relations, as the paper
notes).  The checker enumerates them all and tests each for being a
global improvement of the candidate (Proposition 7.5).
"""

from __future__ import annotations

from itertools import product
from typing import Dict, FrozenSet, Iterator, List, Tuple

from repro.core.checking.result import CheckResult
from repro.core.checking.validation import precheck
from repro.core.fact import Fact
from repro.core.improvements import is_global_improvement
from repro.core.instance import Instance
from repro.core.priority import PrioritizingInstance
from repro.core.schema import Schema

__all__ = [
    "check_ccp_constant_attribute",
    "consistent_partitions",
    "enumerate_partition_repairs",
]

_METHOD = "ccp-constant-attribute"


def consistent_partitions(
    schema: Schema, instance: Instance, relation_name: str
) -> List[FrozenSet[Fact]]:
    """The consistent partitions of ``R^I`` (Section 7.2.2).

    Facts are grouped by their projection onto ``⟦R.∅^Δ⟧``; each group is
    one maximal consistent subset of ``R^I``.
    """
    determined = tuple(
        sorted(schema.fds_for(relation_name).constant_attributes())
    )
    groups: Dict[Tuple, List[Fact]] = {}
    for fact in instance.relation(relation_name):
        groups.setdefault(fact.project(determined), []).append(fact)
    return [frozenset(group) for _, group in sorted(groups.items(), key=str)]


def enumerate_partition_repairs(
    schema: Schema, instance: Instance
) -> Iterator[Instance]:
    """All repairs of a constant-attribute-assignment instance.

    The cross product of consistent partitions over the non-empty
    relations; polynomially many for a fixed schema.
    """
    per_relation = [
        consistent_partitions(schema, instance, name)
        for name in sorted(instance.relation_names_used())
    ]
    for combination in product(*per_relation):
        chosen: FrozenSet[Fact] = frozenset().union(*combination) if combination else frozenset()
        yield instance.subinstance(chosen)


def check_ccp_constant_attribute(
    prioritizing: PrioritizingInstance, candidate: Instance
) -> CheckResult:
    """Globally-optimal checking for constant-attribute assignments
    (Proposition 7.5).

    Valid whenever every ``Δ|R`` is equivalent to a single ``∅ → B``;
    the dispatcher verifies that before routing here.  Enumerates the
    polynomially many repairs and tests each for improving on the
    candidate.
    """
    failure = precheck(prioritizing, candidate, "global", _METHOD)
    if failure is not None:
        return failure
    priority = prioritizing.priority
    for repair in enumerate_partition_repairs(
        prioritizing.schema, prioritizing.instance
    ):
        if is_global_improvement(repair, candidate, priority):
            return CheckResult(
                is_optimal=False,
                semantics="global",
                method=_METHOD,
                improvement=repair,
                reason="an improving partition-combination repair exists",
            )
    return CheckResult(is_optimal=True, semantics="global", method=_METHOD)
