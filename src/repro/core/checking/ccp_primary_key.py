"""CCP globally-optimal checking for primary-key assignments.

Implements Section 7.2.1 of the paper: when every ``Δ|R`` is equivalent
to a single key constraint, globally-optimal repair checking over
*cross-conflict* prioritizing instances reduces to acyclicity of the
directed bipartite graph ``G_{J, I\\J}`` (Lemma 7.3):

* one side holds the facts of ``J``, the other the facts of ``I \\ J``;
* ``f → g`` for ``f ∈ J``, ``g ∈ I \\ J`` whenever ``f`` and ``g``
  conflict;
* ``g → f`` whenever ``g ≻ f`` (which, in the ccp setting, needs no
  conflict between them).

``J`` has a global improvement iff the graph has a cycle; the "if"
direction of the lemma turns a simple cycle ``f1 → g1 → … → gk → f1``
into the improvement ``(J \\ {f1..fk}) ∪ {g1..gk}``, which this
implementation reconstructs as the witness.  Figure 6 of the paper shows
the graph for Example 7.2; :func:`build_ccp_graph` is exposed so
experiment E8 can regenerate it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.checking.result import CheckResult
from repro.core.checking.validation import precheck
from repro.core.fact import Fact
from repro.core.instance import Instance
from repro.core.priority import PrioritizingInstance

__all__ = ["check_ccp_primary_key", "build_ccp_graph", "CcpGraph"]

_METHOD = "ccp-primary-key"


@dataclass(frozen=True)
class CcpGraph:
    """The graph ``G_{J, I\\J}`` of Section 7.2.1.

    Nodes are facts; ``successors`` maps each fact to its out-neighbours.
    Facts of the candidate sit on one side, outsiders on the other, and
    edges alternate sides by construction.
    """

    candidate_facts: FrozenSet[Fact]
    outsider_facts: FrozenSet[Fact]
    successors: Dict[Fact, FrozenSet[Fact]]

    def find_cycle(self) -> Optional[List[Fact]]:
        """A simple directed cycle as a fact list, or None if acyclic."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color: Dict[Fact, int] = {}
        parent: Dict[Fact, Optional[Fact]] = {}
        for root in self.successors:
            if color.get(root, WHITE) != WHITE:
                continue
            stack: List[Tuple[Fact, List[Fact]]] = [
                (root, list(self.successors.get(root, frozenset())))
            ]
            color[root] = GRAY
            parent[root] = None
            while stack:
                node, pending = stack[-1]
                if pending:
                    child = pending.pop()
                    state = color.get(child, WHITE)
                    if state == GRAY:
                        cycle = [node]
                        walker = node
                        while walker != child:
                            walker = parent[walker]  # type: ignore[assignment]
                            cycle.append(walker)
                        cycle.reverse()
                        return cycle
                    if state == WHITE:
                        color[child] = GRAY
                        parent[child] = node
                        stack.append(
                            (child, list(self.successors.get(child, frozenset())))
                        )
                else:
                    color[node] = BLACK
                    stack.pop()
        return None

    def is_acyclic(self) -> bool:
        """Whether the graph has no directed cycle."""
        return self.find_cycle() is None


def build_ccp_graph(
    prioritizing: PrioritizingInstance, candidate: Instance
) -> CcpGraph:
    """Build ``G_{J, I\\J}`` for the given candidate repair."""
    instance = prioritizing.instance
    priority = prioritizing.priority
    outsiders = instance.facts - candidate.facts
    index = prioritizing.conflict_index
    successors: Dict[Fact, Set[Fact]] = {fact: set() for fact in instance}
    for outsider in outsiders:
        # Conflict edges f -> g run from the candidate side.
        for blocked in index.conflicts_of_in(outsider, candidate.facts):
            successors[blocked].add(outsider)
        # Priority edges g -> f run back; only edges into J matter.
        for dominated in priority.preferred_over(outsider):
            if dominated in candidate.facts:
                successors[outsider].add(dominated)
    return CcpGraph(
        candidate_facts=candidate.facts,
        outsider_facts=frozenset(outsiders),
        successors={f: frozenset(s) for f, s in successors.items()},
    )


def check_ccp_primary_key(
    prioritizing: PrioritizingInstance, candidate: Instance
) -> CheckResult:
    """Globally-optimal checking for primary-key assignments (Lemma 7.3).

    Valid whenever every ``Δ|R`` is equivalent to a single key
    constraint; the dispatcher verifies that via
    :func:`repro.core.classification.classify_ccp_schema` before routing
    here.  Works for classical priorities as well (they are a special
    case of ccp priorities).
    """
    failure = precheck(prioritizing, candidate, "global", _METHOD)
    if failure is not None:
        return failure
    graph = build_ccp_graph(prioritizing, candidate)
    cycle = graph.find_cycle()
    if cycle is not None:
        removed = [fact for fact in cycle if fact in candidate.facts]
        added = [fact for fact in cycle if fact not in candidate.facts]
        return CheckResult(
            is_optimal=False,
            semantics="global",
            method=_METHOD,
            improvement=candidate.replace_facts(removed, added),
            reason="the graph G_{J,I\\J} has a cycle (Lemma 7.3)",
        )
    return CheckResult(is_optimal=True, semantics="global", method=_METHOD)
