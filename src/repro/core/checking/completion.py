"""Completion-optimal repair checking and enumeration.

Staworko, Chomicki and Marcinkowski's third preference semantics, quoted
by the paper in Sections 1–3: a repair ``J`` is *completion-optimal* if
there is a completion ``≻'`` of the priority ``≻`` (an acyclic extension
that is total on conflicting pairs) such that ``J`` is globally-optimal
with respect to ``≻'``.  Completion-optimal repair checking is solvable
in polynomial time for every schema (their Corollary 4).

Their key characterization is operational: the completion-optimal repairs
are exactly the possible outputs of the *greedy* procedure that
repeatedly picks a remaining fact not dominated by any remaining fact
under the orientations **every** completion must contain — the raw
≻-edges plus the conflicting pairs whose orientation acyclicity forces
transitively (see :func:`_forced_dominators`) — commits it, and discards
the facts conflicting with it.  This module implements:

* :func:`check_completion_optimal` — the polynomial test, by a forced
  simulation of the greedy on ``J`` (correct because picking any eligible
  ``J``-fact never disables another: ``J`` is conflict-free, so a pick
  only ever *shrinks* the set of potential dominators);
* :func:`greedy_completion_repair` — one greedy run, yielding a
  completion-optimal repair;
* :func:`enumerate_completion_optimal_repairs` — all greedy outcomes
  (exponential; used for cross-validation on small instances);
* :func:`brute_force_completion_check` — the definitional test by
  enumeration of total completions (heavily exponential; tests only).

The classical (conflict-only) setting is assumed throughout, matching
Staworko et al.'s definitions; ccp instances are rejected.
"""

from __future__ import annotations

import random
from itertools import product
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.core.backend import BACKEND_BITSET, resolve_backend
from repro.core.checking.brute_force import check_globally_optimal_brute_force
from repro.core.checking.result import CheckResult
from repro.core.checking.validation import precheck, precheck_bitset
from repro.core.fact import Fact
from repro.core.instance import Instance
from repro.core.interning import iter_bits
from repro.core.priority import PrioritizingInstance, PriorityRelation
from repro.exceptions import CyclicPriorityError, InvalidPriorityError

__all__ = [
    "check_completion_optimal",
    "greedy_completion_repair",
    "enumerate_completion_optimal_repairs",
    "brute_force_completion_check",
]

_METHOD = "greedy-simulation"


def _forced_dominators(
    prioritizing: PrioritizingInstance,
) -> "dict[Fact, FrozenSet[Fact]]":
    """For each fact, the facts every completion must prefer to it.

    A completion ``≻'`` orients every conflicting pair while keeping the
    whole relation acyclic.  If ``g ≻⁺ f`` (a directed ≻-path, possibly
    through other facts) and ``g`` conflicts ``f``, then orienting
    ``f ≻' g`` would close the cycle ``f ≻' g ≻ ... ≻ f`` — so **every**
    completion has ``g ≻' f``.  Conversely, a conflicting pair with no
    connecting ≻-path can be oriented either way.  Raw edges alone miss
    the transitively forced orientations, which is exactly the trap the
    oracle conformance suite caught: domination during the greedy must
    use these forced dominators, not just ``priority.improvers_of``.

    Non-conflicting closure ancestors do *not* dominate: completions
    only add edges between conflicting facts, so they never become
    direct ≻'-edges.
    """
    adjacency: "dict[Fact, Set[Fact]]" = {}
    for better, worse in prioritizing.priority.edges:
        adjacency.setdefault(better, set()).add(worse)
    conflicts = prioritizing.conflict_index.adjacency()
    dominators: "dict[Fact, Set[Fact]]" = {
        fact: set() for fact in prioritizing.instance.facts
    }
    for ancestor in adjacency:
        # Forward DFS: every fact reachable from `ancestor` along ≻
        # edges that also conflicts with it is forced below it.
        stack = list(adjacency[ancestor])
        seen: Set[Fact] = set()
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            if node in conflicts[ancestor]:
                dominators[node].add(ancestor)
            stack.extend(adjacency.get(node, ()))
    return {fact: frozenset(doms) for fact, doms in dominators.items()}


def _forced_dominators_bitset(prioritizing: PrioritizingInstance) -> List[int]:
    """:func:`_forced_dominators` in id space: one mask per fact id.

    Same forced-orientation argument, run over the interned ids: per
    priority ancestor, a forward DFS over the successor lists collects
    the ≻-reachable set as a mask, and one ``&`` with the ancestor's
    global conflict mask selects the facts whose orientation acyclicity
    forces below it.
    """
    core = prioritizing.bitset_core
    n = len(core.interner)
    successors: Dict[int, List[int]] = {}
    for better, worse in core.priority.edge_ids:
        successors.setdefault(better, []).append(worse)
    conflict_masks = core.index.conflict_masks()
    dominators = [0] * n
    for ancestor, direct in successors.items():
        stack = list(direct)
        seen: Set[int] = set()
        reachable = 0
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            reachable |= 1 << node
            stack.extend(successors.get(node, ()))
        ancestor_bit = 1 << ancestor
        for node in iter_bits(reachable & conflict_masks[ancestor]):
            dominators[node] |= ancestor_bit
    return dominators


def _check_completion_optimal_bitset(
    prioritizing: PrioritizingInstance, candidate: Instance
) -> CheckResult:
    """The greedy simulation of :func:`check_completion_optimal` on masks.

    ``remaining`` is one global bitmask; a commit clears the picked bit
    and its conflict-mask neighbours in a single ``&=``, and eligibility
    is ``dominators[fid] & remaining == 0``.
    """
    failure, view = precheck_bitset(
        prioritizing, candidate, "completion", _METHOD
    )
    if failure is not None:
        return failure
    core = prioritizing.bitset_core
    conflict_masks = core.index.conflict_masks()
    dominators = _forced_dominators_bitset(prioritizing)
    fact_of = core.interner.fact_of
    remaining = core.interner.full_mask
    to_pick: List[int] = list(view.fids)
    while to_pick:
        pick = next(
            (fid for fid in to_pick if not dominators[fid] & remaining),
            None,
        )
        if pick is None:
            blocked = to_pick[0]
            dominator = next(iter_bits(dominators[blocked] & remaining))
            return CheckResult(
                is_optimal=False,
                semantics="completion",
                method=_METHOD,
                reason=(
                    f"no greedy run yields the candidate: "
                    f"{fact_of(blocked)} stays dominated by the "
                    f"un-discarded {fact_of(dominator)}"
                ),
            )
        to_pick.remove(pick)
        remaining &= ~((1 << pick) | conflict_masks[pick])
    return CheckResult(is_optimal=True, semantics="completion", method=_METHOD)


def _reject_ccp(prioritizing: PrioritizingInstance) -> None:
    if prioritizing.is_ccp:
        raise InvalidPriorityError(
            "completion-optimal semantics is defined for classical "
            "(conflict-only) priorities; got a ccp-instance"
        )


def check_completion_optimal(
    prioritizing: PrioritizingInstance,
    candidate: Instance,
    backend: Optional[str] = None,
) -> CheckResult:
    """Decide whether ``candidate`` is a completion-optimal repair.

    Polynomial for every schema: simulates the greedy procedure, at each
    step committing an arbitrary eligible fact of ``candidate``
    (eligible = not dominated by any remaining *forced dominator*, see
    :func:`_forced_dominators` — raw ≻-edges plus the orientations that
    acyclicity forces transitively).  The simulation is complete because
    eligibility is monotone under commits: the blocking set only ever
    shrinks as facts leave ``remaining``, and committing a
    ``candidate``-fact removes only its conflict neighbours, none of
    which belong to the conflict-free ``candidate``.

    Examples
    --------
    >>> from repro.core import Schema, Fact, PriorityRelation
    >>> from repro.core import PrioritizingInstance
    >>> schema = Schema.single_relation(["1 -> 2"], arity=2)
    >>> f, g = Fact("R", (1, "a")), Fact("R", (1, "b"))
    >>> pri = PrioritizingInstance(
    ...     schema, schema.instance([f, g]), PriorityRelation([(f, g)])
    ... )
    >>> bool(check_completion_optimal(pri, schema.instance([g])))
    False
    """
    _reject_ccp(prioritizing)
    if resolve_backend(len(prioritizing.instance), backend) == BACKEND_BITSET:
        return _check_completion_optimal_bitset(prioritizing, candidate)
    failure = precheck(prioritizing, candidate, "completion", _METHOD)
    if failure is not None:
        return failure
    adjacency = prioritizing.conflict_index.adjacency()
    dominators = _forced_dominators(prioritizing)
    remaining: Set[Fact] = set(prioritizing.instance.facts)
    to_pick: Set[Fact] = set(candidate.facts)
    while to_pick:
        pick = next(
            (
                fact
                for fact in to_pick
                if dominators[fact].isdisjoint(remaining)
            ),
            None,
        )
        if pick is None:
            blocked = next(iter(to_pick))
            dominator = next(iter(dominators[blocked] & remaining))
            return CheckResult(
                is_optimal=False,
                semantics="completion",
                method=_METHOD,
                reason=(
                    f"no greedy run yields the candidate: {blocked} stays "
                    f"dominated by the un-discarded {dominator}"
                ),
            )
        to_pick.discard(pick)
        remaining.discard(pick)
        remaining -= adjacency[pick]
    # With all of the candidate committed, maximality (checked by
    # precheck) guarantees every leftover fact conflicted with a commit,
    # so the greedy run ends exactly at the candidate.
    return CheckResult(is_optimal=True, semantics="completion", method=_METHOD)


def greedy_completion_repair(
    prioritizing: PrioritizingInstance,
    rng: Optional[random.Random] = None,
) -> Instance:
    """One greedy run: a (randomly chosen) completion-optimal repair."""
    _reject_ccp(prioritizing)
    rng = rng or random.Random(0)
    adjacency = prioritizing.conflict_index.adjacency()
    dominators = _forced_dominators(prioritizing)
    remaining: Set[Fact] = set(prioritizing.instance.facts)
    chosen: Set[Fact] = set()
    while remaining:
        eligible = [
            fact
            for fact in remaining
            if dominators[fact].isdisjoint(remaining)
        ]
        # An acyclic relation restricted to a non-empty finite set always
        # has a maximal element, so `eligible` is never empty.
        pick = rng.choice(sorted(eligible, key=str))
        chosen.add(pick)
        remaining.discard(pick)
        remaining -= adjacency[pick]
    return prioritizing.instance.subinstance(chosen)


def enumerate_completion_optimal_repairs(
    prioritizing: PrioritizingInstance,
) -> Iterator[Instance]:
    """All completion-optimal repairs, via exhaustive greedy branching.

    Exponential in general; intended for cross-validation on small
    instances.  Branches only on picks that change the reachable state
    (the committed *set* determines the state, so we memoize on it).
    """
    _reject_ccp(prioritizing)
    adjacency = prioritizing.conflict_index.adjacency()
    dominators = _forced_dominators(prioritizing)
    seen_states: Set[FrozenSet[Fact]] = set()
    results: Set[FrozenSet[Fact]] = set()

    def explore(remaining: FrozenSet[Fact], chosen: FrozenSet[Fact]) -> None:
        if chosen in seen_states:
            return
        seen_states.add(chosen)
        if not remaining:
            results.add(chosen)
            return
        eligible = [
            fact
            for fact in remaining
            if dominators[fact].isdisjoint(remaining)
        ]
        for pick in eligible:
            explore(
                remaining - {pick} - adjacency[pick], chosen | {pick}
            )

    explore(frozenset(prioritizing.instance.facts), frozenset())
    for facts in results:
        yield prioritizing.instance.subinstance(facts)


def _orientations_of_unordered_conflicts(
    prioritizing: PrioritizingInstance,
) -> Iterator[PriorityRelation]:
    """Every completion of ``≻``: acyclic extensions total on conflicts."""
    pairs = frozenset(
        frozenset({f, g})
        for _, f, g in prioritizing.conflict_index.iter_conflicts()
    )
    priority = prioritizing.priority
    unordered: List[Tuple[Fact, Fact]] = []
    for pair in sorted(pairs, key=str):
        f, g = sorted(pair, key=str)
        if not (priority.prefers(f, g) or priority.prefers(g, f)):
            unordered.append((f, g))
    base_edges = priority.edges
    for choices in product((0, 1), repeat=len(unordered)):
        oriented = set(base_edges)
        for (f, g), direction in zip(unordered, choices):
            oriented.add((f, g) if direction == 0 else (g, f))
        try:
            # The validating constructor is the point here: its cycle
            # scan is what filters the non-acyclic orientations out of
            # the completion enumeration.
            yield PriorityRelation(oriented)  # repro-lint: ignore[RL001]
        except CyclicPriorityError:
            continue


def brute_force_completion_check(
    prioritizing: PrioritizingInstance, candidate: Instance
) -> CheckResult:
    """The definitional completion-optimality test (tests only).

    Enumerates all completions of ``≻`` (acyclic orientations of the
    not-yet-ordered conflicting pairs) and asks whether ``candidate`` is
    globally-optimal under at least one of them.  Doubly exponential cost
    in the worst case — use only on tiny instances.
    """
    _reject_ccp(prioritizing)
    failure = precheck(prioritizing, candidate, "completion", "brute-force")
    if failure is not None:
        return failure
    for completion in _orientations_of_unordered_conflicts(prioritizing):
        # Every completion orients *conflicting* pairs of the already-
        # validated base priority, so the classical invariant holds by
        # construction and the shared conflict index carries over.
        completed = PrioritizingInstance._from_validated(
            prioritizing.schema,
            prioritizing.instance,
            completion,
            ccp=False,
            conflict_index=prioritizing.conflict_index,
        )
        if check_globally_optimal_brute_force(completed, candidate):
            return CheckResult(
                is_optimal=True, semantics="completion", method="brute-force"
            )
    return CheckResult(
        is_optimal=False,
        semantics="completion",
        method="brute-force",
        reason="no completion makes the candidate globally-optimal",
    )
