"""Counting and uniqueness of (preferred) repairs.

The paper's concluding remarks pose two follow-up problems: determining
the *number* of globally-optimal repairs, and characterizing when
exactly *one* exists (an unambiguous cleaning).  This module provides
the reference machinery for both:

* :func:`count_repairs_fast` — the number of classical repairs, with a
  polynomial shortcut for schemas whose every ``Δ|R`` is equivalent to
  a single FD (repairs factor into independent block choices: the count
  is the product, over FD-blocks, of the number of rhs-groups) and for
  constant-attribute assignments (product of partition counts), falling
  back to per-component maximal-independent-set enumeration otherwise;
* :func:`count_optimal_repairs` / :func:`optimal_repair_census` — how
  many repairs survive each preference semantics;
* :func:`has_unique_optimal_repair` and
  :func:`unique_optimal_repair` — the unambiguous-cleaning test, with
  early exit;
* :func:`is_cleaning_unambiguous_under_total_priority` — the sufficient
  condition that a *total* priority (a completion) pins the cleaning
  down to the single greedy outcome.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.checking import (
    check_completion_optimal,
    check_globally_optimal,
    check_pareto_optimal,
)
from repro.core.classification import equivalent_single_fd
from repro.core.instance import Instance
from repro.core.priority import PrioritizingInstance
from repro.core.repairs import _count_repairs_enumerative, enumerate_repairs
from repro.core.schema import Schema

from repro.exceptions import UsageError
__all__ = [
    "count_repairs_fast",
    "count_optimal_repairs",
    "optimal_repair_census",
    "has_unique_optimal_repair",
    "unique_optimal_repair",
    "is_cleaning_unambiguous_under_total_priority",
]


def _single_fd_block_count(
    schema: Schema, instance: Instance, relation_name: str
) -> Optional[int]:
    """Repair count of one relation when ``Δ|R`` ≡ a single FD, else None.

    Under a single FD ``A → B`` the conflict graph of ``R^I`` is a
    disjoint union of complete multipartite blocks (one per ``A``-value,
    parts = ``B``-values), whose maximal independent sets are exactly
    the per-block choices of one ``B``-value part.  The repair count is
    therefore the product of the parts-per-block counts — computable in
    linear time.
    """
    witness = equivalent_single_fd(schema.fds_for(relation_name))
    if witness is None:
        return None
    if witness.is_trivial():
        return 1
    lhs_sorted = witness.lhs_sorted
    rhs_sorted = witness.rhs_sorted
    groups: Dict[Tuple, set] = {}
    for fact in instance.relation(relation_name):
        groups.setdefault(fact.project(lhs_sorted), set()).add(
            fact.project(rhs_sorted)
        )
    count = 1
    for rhs_values in groups.values():
        count *= len(rhs_values)
    return count


def count_repairs_fast(schema: Schema, instance: Instance) -> int:
    """The number of repairs of ``instance``.

    Polynomial whenever every ``Δ|R`` is equivalent to a single FD
    (which covers the constant-attribute assignments of Section 7.2.2 —
    a ``∅ → B`` constraint *is* a single FD); otherwise falls back to
    per-component maximal-independent-set enumeration (exponential in
    the worst case).

    Examples
    --------
    >>> from repro.core import Fact
    >>> schema = Schema.single_relation(["1 -> 2"], arity=2)
    >>> inst = schema.instance(
    ...     [Fact("R", (1, "a")), Fact("R", (1, "b")), Fact("R", (2, "c"))]
    ... )
    >>> count_repairs_fast(schema, inst)
    2
    """
    total = 1
    fallback_relations: List[str] = []
    for relation in schema.signature:
        per_relation = _single_fd_block_count(
            schema, instance, relation.name
        )
        if per_relation is None:
            fallback_relations.append(relation.name)
        else:
            total *= per_relation
    for name in fallback_relations:
        restricted_schema = schema.restrict(name)
        restricted_instance = instance.restrict_to_relation(name)
        total *= _count_repairs_enumerative(
            restricted_schema, restricted_instance
        )
    return total


_CHECKERS = {
    "global": check_globally_optimal,
    "pareto": check_pareto_optimal,
    "completion": check_completion_optimal,
}


def _iter_optimal(
    prioritizing: PrioritizingInstance, semantics: str
) -> Iterator[Instance]:
    try:
        checker = _CHECKERS[semantics]
    except KeyError:
        raise UsageError(f"unknown semantics {semantics!r}") from None
    for repair in enumerate_repairs(
        prioritizing.schema, prioritizing.instance
    ):
        if checker(prioritizing, repair).is_optimal:
            yield repair


def count_optimal_repairs(
    prioritizing: PrioritizingInstance, semantics: str = "global"
) -> int:
    """How many repairs are optimal under ``semantics``.

    Exponential in general (the underlying enumeration is); the checks
    themselves are polynomial on the tractable side of the dichotomy.
    """
    return sum(1 for _ in _iter_optimal(prioritizing, semantics))


def optimal_repair_census(
    prioritizing: PrioritizingInstance,
) -> Dict[str, int]:
    """Counts for all semantics at once, sharing one enumeration pass.

    Returns ``{"all": ..., "pareto": ..., "global": ..., "completion":
    ...}``; the counts are monotone along the semantics chain.
    """
    census = {"all": 0, "pareto": 0, "global": 0, "completion": 0}
    for repair in enumerate_repairs(
        prioritizing.schema, prioritizing.instance
    ):
        census["all"] += 1
        if not check_pareto_optimal(prioritizing, repair).is_optimal:
            continue
        census["pareto"] += 1
        if not check_globally_optimal(prioritizing, repair).is_optimal:
            continue
        census["global"] += 1
        if prioritizing.is_ccp:
            continue  # completion semantics is classical-only
        if check_completion_optimal(prioritizing, repair).is_optimal:
            census["completion"] += 1
    return census


def has_unique_optimal_repair(
    prioritizing: PrioritizingInstance, semantics: str = "global"
) -> bool:
    """Whether exactly one repair is optimal under ``semantics``."""
    return unique_optimal_repair(prioritizing, semantics) is not None


def unique_optimal_repair(
    prioritizing: PrioritizingInstance, semantics: str = "global"
) -> Optional[Instance]:
    """The unique optimal repair if there is exactly one, else None.

    Early-exits after finding a second optimal repair.
    """
    found: Optional[Instance] = None
    for repair in _iter_optimal(prioritizing, semantics):
        if found is not None:
            return None
        found = repair
    return found


def is_cleaning_unambiguous_under_total_priority(
    prioritizing: PrioritizingInstance,
) -> bool:
    """A sufficient test: total priorities define unambiguous cleanings.

    If ``≻`` is total on conflicting pairs (a *completion*), the greedy
    procedure is deterministic up to irrelevant ordering — at every
    step the not-yet-discarded facts have a unique ≻-maximal choice per
    conflict component — so exactly one completion-optimal repair
    exists, and by the semantics chain it is also the unique
    globally-optimal one... *provided* global and completion coincide,
    which for total priorities they do: with a total priority, any
    global improvement yields a greedy deviation.

    The function returns True only when the priority is total on
    conflicts; callers needing the exact answer for partial priorities
    should use :func:`has_unique_optimal_repair` (exponential).
    """
    return prioritizing.priority.is_total_on_conflicts(
        prioritizing.schema, prioritizing.instance
    )
