"""Database instances as immutable sets of facts.

Following Section 2.1 of the paper, an instance over a signature is a
finite set of facts; ``J ⊆ I`` (subinstance) is plain set inclusion.  The
:class:`Instance` class is a thin immutable wrapper over a frozenset of
:class:`~repro.core.fact.Fact` objects that additionally knows its
signature, validates arities, and offers per-relation views.

Construction validates every fact against the signature exactly once.
Derived instances (set operations, :meth:`Instance.replace_facts`,
:meth:`Instance.subinstance`, per-relation restrictions) are built
through the trusted :meth:`Instance._from_validated` path, which skips
the O(|I|) re-validation scan for facts that are already known to
conform — the checking algorithms derive thousands of candidate
subinstances from one validated instance, and re-scanning each one
dominated their runtime.  The per-relation grouping is likewise built
lazily, on first use, so the short-lived instances on the checking hot
path never pay for it.

All repair-theoretic operations (conflicts, repairs, improvements) live in
their own modules and take instances as inputs; this module is purely the
data substrate.
"""

from __future__ import annotations

import heapq
from typing import (
    AbstractSet,
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.fact import Fact
from repro.core.signature import Signature
from repro.exceptions import ArityError, NotASubinstanceError, UnknownRelationError

__all__ = ["Instance"]


def _validate_facts(signature: Signature, facts: Iterable[Fact]) -> None:
    """Raise unless every fact names a known relation with the right arity."""
    for fact in facts:
        if fact.relation not in signature:
            raise UnknownRelationError(fact.relation)
        expected = signature.arity(fact.relation)
        if fact.arity != expected:
            raise ArityError(fact.relation, expected, fact.arity)


class Instance:
    """An immutable set of facts over a signature.

    Parameters
    ----------
    signature:
        The signature the facts must conform to.
    facts:
        Any iterable of :class:`Fact`; validated against the signature.

    Instances support the standard set protocol (`in`, `len`, iteration,
    `<=`, `|`, `-`, `&`) where binary operations require both operands to
    share a signature.

    Examples
    --------
    >>> sig = Signature.single("R", 2)
    >>> inst = Instance(sig, [Fact("R", (1, 2)), Fact("R", (1, 3))])
    >>> len(inst)
    2
    >>> Fact("R", (1, 2)) in inst
    True
    """

    __slots__ = ("_signature", "_facts", "_by_relation")

    def __init__(self, signature: Signature, facts: Iterable[Fact] = ()) -> None:
        fact_set = facts if isinstance(facts, frozenset) else frozenset(facts)
        _validate_facts(signature, fact_set)
        self._signature = signature
        self._facts: FrozenSet[Fact] = fact_set
        self._by_relation: Optional[Dict[str, FrozenSet[Fact]]] = None

    # -- construction helpers ------------------------------------------------

    @classmethod
    def _from_validated(
        cls, signature: Signature, facts: Iterable[Fact]
    ) -> "Instance":
        """Trusted constructor: ``facts`` are already signature-valid.

        Used internally for instances derived from validated ones (set
        operations, swaps, subinstances), where re-running the arity and
        relation-name scan would be pure overhead.  Callers must
        guarantee every fact already conforms to ``signature``.
        """
        instance = cls.__new__(cls)
        instance._signature = signature
        instance._facts = (
            facts if isinstance(facts, frozenset) else frozenset(facts)
        )
        instance._by_relation = None
        return instance

    @classmethod
    def from_tuples(
        cls,
        signature: Signature,
        tuples_by_relation: Mapping[str, Iterable[Sequence[Any]]],
    ) -> "Instance":
        """Build an instance from raw tuples grouped by relation name.

        Examples
        --------
        >>> sig = Signature.single("R", 2)
        >>> inst = Instance.from_tuples(sig, {"R": [(1, 2), (3, 4)]})
        >>> len(inst)
        2
        """
        facts = [
            Fact(name, tuple(row))
            for name, rows in tuples_by_relation.items()
            for row in rows
        ]
        return cls(signature, facts)

    def with_facts(self, facts: Iterable[Fact]) -> "Instance":
        """A new instance additionally containing ``facts``."""
        additions = frozenset(facts) - self._facts
        _validate_facts(self._signature, additions)
        return Instance._from_validated(
            self._signature, self._facts | additions
        )

    def without_facts(self, facts: Iterable[Fact]) -> "Instance":
        """A new instance with ``facts`` removed (missing facts ignored)."""
        return Instance._from_validated(
            self._signature, self._facts - frozenset(facts)
        )

    def replace_facts(
        self, removed: Iterable[Fact], added: Iterable[Fact]
    ) -> "Instance":
        """A new instance with ``removed`` taken out and ``added`` put in.

        Only genuinely new facts (``added`` minus the current fact set)
        are validated; the rest are already known to conform, which
        makes this the O(|removed| + |added|) swap primitive the
        checkers lean on.
        """
        added_set = added if isinstance(added, frozenset) else frozenset(added)
        new_facts = added_set - self._facts
        if new_facts:
            _validate_facts(self._signature, new_facts)
        return Instance._from_validated(
            self._signature, (self._facts - frozenset(removed)) | added_set
        )

    # -- set protocol ----------------------------------------------------------

    @property
    def signature(self) -> Signature:
        """The signature this instance conforms to."""
        return self._signature

    @property
    def facts(self) -> FrozenSet[Fact]:
        """The facts as a frozenset."""
        return self._facts

    def __contains__(self, fact: object) -> bool:
        return fact in self._facts

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._facts)

    def __len__(self) -> int:
        return len(self._facts)

    def __bool__(self) -> bool:
        return bool(self._facts)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Instance):
            return (
                self._signature == other._signature and self._facts == other._facts
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._signature, self._facts))

    def __le__(self, other: "Instance") -> bool:
        """Subinstance test ``J ⊆ I``."""
        return self._facts <= other._facts

    def __lt__(self, other: "Instance") -> bool:
        return self._facts < other._facts

    def __or__(self, other: "Instance") -> "Instance":
        if (
            self._signature is other._signature
            or self._signature == other._signature
        ):
            return Instance._from_validated(
                self._signature, self._facts | other._facts
            )
        return Instance(self._signature, self._facts | other._facts)

    def __sub__(self, other: "Instance") -> "Instance":
        return Instance._from_validated(
            self._signature, self._facts - other._facts
        )

    def __and__(self, other: "Instance") -> "Instance":
        return Instance._from_validated(
            self._signature, self._facts & other._facts
        )

    # -- views -----------------------------------------------------------------

    def _relation_map(self) -> Dict[str, FrozenSet[Fact]]:
        """The facts grouped by relation, built lazily on first use."""
        by_relation = self._by_relation
        if by_relation is None:
            grouped: Dict[str, Set[Fact]] = {}
            for fact in self._facts:
                grouped.setdefault(fact.relation, set()).add(fact)
            by_relation = {
                name: frozenset(group) for name, group in grouped.items()
            }
            self._by_relation = by_relation
        return by_relation

    def relation(self, name: str) -> FrozenSet[Fact]:
        """The facts of relation ``name`` (empty for unused relations)."""
        if name not in self._signature:
            raise UnknownRelationError(name)
        return self._relation_map().get(name, frozenset())

    def relation_names_used(self) -> FrozenSet[str]:
        """The relation names that actually hold at least one fact."""
        return frozenset(self._relation_map())

    def restrict_to_relation(self, name: str) -> "Instance":
        """The instance over the one-relation signature ``{name}``.

        This is the per-relation decomposition used by Proposition 3.5.
        """
        return Instance._from_validated(
            self._signature.restrict(name), self.relation(name)
        )

    def subinstance(self, facts: Iterable[Fact]) -> "Instance":
        """A subinstance with exactly ``facts``, validated to be ⊆ self."""
        chosen = frozenset(facts)
        extra = chosen - self._facts
        if extra:
            raise NotASubinstanceError(
                f"{len(extra)} fact(s) are not part of the instance, "
                f"e.g. {next(iter(extra))}"
            )
        return Instance._from_validated(self._signature, chosen)

    def active_domain(self) -> FrozenSet[Any]:
        """All constants appearing anywhere in the instance."""
        return frozenset(
            value for fact in self._facts for value in fact.values
        )

    def __repr__(self) -> str:
        preview = ", ".join(
            str(f) for f in heapq.nsmallest(6, self._facts, key=str)
        )
        suffix = ", ..." if len(self._facts) > 6 else ""
        return f"Instance({len(self._facts)} facts: {preview}{suffix})"
