"""Database instances as immutable sets of facts.

Following Section 2.1 of the paper, an instance over a signature is a
finite set of facts; ``J ⊆ I`` (subinstance) is plain set inclusion.  The
:class:`Instance` class is a thin immutable wrapper over a frozenset of
:class:`~repro.core.fact.Fact` objects that additionally knows its
signature, validates arities, and offers per-relation views.

All repair-theoretic operations (conflicts, repairs, improvements) live in
their own modules and take instances as inputs; this module is purely the
data substrate.
"""

from __future__ import annotations

from typing import (
    AbstractSet,
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.fact import Fact
from repro.core.signature import Signature
from repro.exceptions import ArityError, NotASubinstanceError, UnknownRelationError

__all__ = ["Instance"]


class Instance:
    """An immutable set of facts over a signature.

    Parameters
    ----------
    signature:
        The signature the facts must conform to.
    facts:
        Any iterable of :class:`Fact`; validated against the signature.

    Instances support the standard set protocol (`in`, `len`, iteration,
    `<=`, `|`, `-`, `&`) where binary operations require both operands to
    share a signature.

    Examples
    --------
    >>> sig = Signature.single("R", 2)
    >>> inst = Instance(sig, [Fact("R", (1, 2)), Fact("R", (1, 3))])
    >>> len(inst)
    2
    >>> Fact("R", (1, 2)) in inst
    True
    """

    __slots__ = ("_signature", "_facts", "_by_relation")

    def __init__(self, signature: Signature, facts: Iterable[Fact] = ()) -> None:
        validated = []
        for fact in facts:
            if fact.relation not in signature:
                raise UnknownRelationError(fact.relation)
            expected = signature.arity(fact.relation)
            if fact.arity != expected:
                raise ArityError(fact.relation, expected, fact.arity)
            validated.append(fact)
        self._signature = signature
        self._facts: FrozenSet[Fact] = frozenset(validated)
        by_relation: Dict[str, set] = {}
        for fact in self._facts:
            by_relation.setdefault(fact.relation, set()).add(fact)
        self._by_relation: Dict[str, FrozenSet[Fact]] = {
            name: frozenset(group) for name, group in by_relation.items()
        }

    # -- construction helpers ------------------------------------------------

    @classmethod
    def from_tuples(
        cls,
        signature: Signature,
        tuples_by_relation: Mapping[str, Iterable[Sequence[Any]]],
    ) -> "Instance":
        """Build an instance from raw tuples grouped by relation name.

        Examples
        --------
        >>> sig = Signature.single("R", 2)
        >>> inst = Instance.from_tuples(sig, {"R": [(1, 2), (3, 4)]})
        >>> len(inst)
        2
        """
        facts = [
            Fact(name, tuple(row))
            for name, rows in tuples_by_relation.items()
            for row in rows
        ]
        return cls(signature, facts)

    def with_facts(self, facts: Iterable[Fact]) -> "Instance":
        """A new instance additionally containing ``facts``."""
        return Instance(self._signature, self._facts | frozenset(facts))

    def without_facts(self, facts: Iterable[Fact]) -> "Instance":
        """A new instance with ``facts`` removed (missing facts ignored)."""
        return Instance(self._signature, self._facts - frozenset(facts))

    def replace_facts(
        self, removed: Iterable[Fact], added: Iterable[Fact]
    ) -> "Instance":
        """A new instance with ``removed`` taken out and ``added`` put in."""
        return Instance(
            self._signature, (self._facts - frozenset(removed)) | frozenset(added)
        )

    # -- set protocol ----------------------------------------------------------

    @property
    def signature(self) -> Signature:
        """The signature this instance conforms to."""
        return self._signature

    @property
    def facts(self) -> FrozenSet[Fact]:
        """The facts as a frozenset."""
        return self._facts

    def __contains__(self, fact: object) -> bool:
        return fact in self._facts

    def __iter__(self) -> Iterator[Fact]:
        return iter(self._facts)

    def __len__(self) -> int:
        return len(self._facts)

    def __bool__(self) -> bool:
        return bool(self._facts)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Instance):
            return (
                self._signature == other._signature and self._facts == other._facts
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._signature, self._facts))

    def __le__(self, other: "Instance") -> bool:
        """Subinstance test ``J ⊆ I``."""
        return self._facts <= other._facts

    def __lt__(self, other: "Instance") -> bool:
        return self._facts < other._facts

    def __or__(self, other: "Instance") -> "Instance":
        return Instance(self._signature, self._facts | other._facts)

    def __sub__(self, other: "Instance") -> "Instance":
        return Instance(self._signature, self._facts - other._facts)

    def __and__(self, other: "Instance") -> "Instance":
        return Instance(self._signature, self._facts & other._facts)

    # -- views -----------------------------------------------------------------

    def relation(self, name: str) -> FrozenSet[Fact]:
        """The facts of relation ``name`` (empty for unused relations)."""
        if name not in self._signature:
            raise UnknownRelationError(name)
        return self._by_relation.get(name, frozenset())

    def relation_names_used(self) -> FrozenSet[str]:
        """The relation names that actually hold at least one fact."""
        return frozenset(self._by_relation)

    def restrict_to_relation(self, name: str) -> "Instance":
        """The instance over the one-relation signature ``{name}``.

        This is the per-relation decomposition used by Proposition 3.5.
        """
        return Instance(self._signature.restrict(name), self.relation(name))

    def subinstance(self, facts: Iterable[Fact]) -> "Instance":
        """A subinstance with exactly ``facts``, validated to be ⊆ self."""
        chosen = frozenset(facts)
        extra = chosen - self._facts
        if extra:
            raise NotASubinstanceError(
                f"{len(extra)} fact(s) are not part of the instance, "
                f"e.g. {next(iter(extra))}"
            )
        return Instance(self._signature, chosen)

    def active_domain(self) -> FrozenSet[Any]:
        """All constants appearing anywhere in the instance."""
        return frozenset(
            value for fact in self._facts for value in fact.values
        )

    def __repr__(self) -> str:
        preview = ", ".join(str(f) for f in sorted(self._facts, key=str)[:6])
        suffix = ", ..." if len(self._facts) > 6 else ""
        return f"Instance({len(self._facts)} facts: {preview}{suffix})"
