"""Priority relations over the facts of an instance (Sections 2.3 and 7).

A *priority* ``≻`` on an instance ``I`` is an acyclic binary relation on
the facts of ``I``; ``f ≻ g`` reads "f has higher priority than g".  A
*prioritizing instance* is a pair ``(I, ≻)``.  In the classical setting
(Section 2.3), priorities are only allowed between *conflicting* facts; a
*ccp-instance* (cross-conflict-prioritizing, Section 7) drops that
restriction.

:class:`PriorityRelation` stores the edge set explicitly with successor /
predecessor adjacency, validates acyclicity on construction, and offers
the queries the checking algorithms need (`prefers`, `preferred_over`,
`improvers_of`).  :class:`PrioritizingInstance` bundles the instance, the
priority, and the schema, and validates the conflicting-facts restriction
unless ``ccp=True``.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.core.conflicts import ConflictIndex
from repro.core.fact import Fact
from repro.core.instance import Instance
from repro.core.schema import Schema
from repro.exceptions import (
    CrossConflictPriorityError,
    CyclicPriorityError,
    InvalidPriorityError,
    NotASubinstanceError,
)

__all__ = ["PriorityRelation", "PrioritizingInstance"]


class PriorityRelation:
    """An acyclic binary relation ``≻`` over facts.

    Parameters
    ----------
    edges:
        Pairs ``(f, g)`` meaning ``f ≻ g``.

    Raises
    ------
    CyclicPriorityError
        If the edges contain a directed cycle (including self-loops).

    Examples
    --------
    >>> f, g = Fact("R", (1, "a")), Fact("R", (1, "b"))
    >>> pri = PriorityRelation([(f, g)])
    >>> pri.prefers(f, g)
    True
    >>> pri.prefers(g, f)
    False
    """

    __slots__ = ("_edges", "_successors", "_predecessors")

    def __init__(self, edges: Iterable[Tuple[Fact, Fact]] = ()) -> None:
        edge_set: FrozenSet[Tuple[Fact, Fact]] = frozenset(edges)
        successors: Dict[Fact, Set[Fact]] = {}
        predecessors: Dict[Fact, Set[Fact]] = {}
        for better, worse in edge_set:
            successors.setdefault(better, set()).add(worse)
            predecessors.setdefault(worse, set()).add(better)
        self._edges = edge_set
        self._successors = {
            fact: frozenset(outs) for fact, outs in successors.items()
        }
        self._predecessors = {
            fact: frozenset(ins) for fact, ins in predecessors.items()
        }
        cycle = self._find_cycle()
        if cycle is not None:
            raise CyclicPriorityError(cycle)

    def _find_cycle(self) -> Optional[List[Fact]]:
        """An iterative DFS cycle finder; returns a witness cycle or None."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color: Dict[Fact, int] = {}
        parent: Dict[Fact, Optional[Fact]] = {}
        for root in self._successors:
            if color.get(root, WHITE) != WHITE:
                continue
            stack: List[Tuple[Fact, Iterator[Fact]]] = [
                (root, iter(self._successors.get(root, ())))
            ]
            color[root] = GRAY
            parent[root] = None
            while stack:
                node, children = stack[-1]
                advanced = False
                for child in children:
                    state = color.get(child, WHITE)
                    if state == GRAY:
                        # Found a back edge: reconstruct the cycle.
                        cycle = [node]
                        walker = node
                        while walker != child:
                            walker = parent[walker]  # type: ignore[assignment]
                            cycle.append(walker)
                        cycle.reverse()
                        return cycle
                    if state == WHITE:
                        color[child] = GRAY
                        parent[child] = node
                        stack.append(
                            (child, iter(self._successors.get(child, ())))
                        )
                        advanced = True
                        break
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
        return None

    # -- construction ------------------------------------------------------------

    @classmethod
    def empty(cls) -> "PriorityRelation":
        """The empty priority (every repair is then optimal under all
        semantics, recovering classical subset repairs)."""
        return cls()

    def with_edges(
        self, edges: Iterable[Tuple[Fact, Fact]]
    ) -> "PriorityRelation":
        """A new relation with ``edges`` added (re-validates acyclicity)."""
        return PriorityRelation(self._edges | frozenset(edges))

    def restrict_to(self, facts: Iterable[Fact]) -> "PriorityRelation":
        """The restriction of ``≻`` to pairs inside ``facts``.

        Used by the per-relation decomposition of Proposition 3.5.
        """
        keep = frozenset(facts)
        return PriorityRelation(
            (f, g) for f, g in self._edges if f in keep and g in keep
        )

    # -- queries ------------------------------------------------------------------

    @property
    def edges(self) -> FrozenSet[Tuple[Fact, Fact]]:
        """All ``(better, worse)`` pairs."""
        return self._edges

    def __len__(self) -> int:
        return len(self._edges)

    def __bool__(self) -> bool:
        return bool(self._edges)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PriorityRelation):
            return self._edges == other._edges
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._edges)

    def prefers(self, better: Fact, worse: Fact) -> bool:
        """Whether ``better ≻ worse``."""
        return (better, worse) in self._edges

    def preferred_over(self, fact: Fact) -> FrozenSet[Fact]:
        """All facts ``g`` with ``fact ≻ g``."""
        return self._successors.get(fact, frozenset())

    def improvers_of(self, fact: Fact) -> FrozenSet[Fact]:
        """All facts ``g`` with ``g ≻ fact``."""
        return self._predecessors.get(fact, frozenset())

    def facts_mentioned(self) -> FrozenSet[Fact]:
        """Every fact occurring in some edge."""
        return frozenset(self._successors) | frozenset(self._predecessors)

    def is_total_on_conflicts(
        self, schema: Schema, instance: Instance
    ) -> bool:
        """Whether every conflicting pair of ``instance`` is ≻-comparable.

        Total priorities are the *completions* of Staworko et al.'s
        completion-optimal semantics.
        """
        from repro.core.conflicts import iter_conflicts

        for _, f, g in iter_conflicts(schema, instance):
            if not (self.prefers(f, g) or self.prefers(g, f)):
                return False
        return True

    def __repr__(self) -> str:
        return f"PriorityRelation({len(self._edges)} edges)"


class PrioritizingInstance:
    """A (possibly inconsistent) instance paired with a priority relation.

    Parameters
    ----------
    schema:
        The schema fixing the FDs.
    instance:
        The instance ``I``.
    priority:
        The relation ``≻`` over the facts of ``I``.
    ccp:
        When False (the classical setting of Section 2.3), every priority
        edge must relate two *conflicting* facts of ``I``; when True (the
        ccp-instances of Section 7) only acyclicity and membership in
        ``I`` are required.

    Examples
    --------
    >>> schema = Schema.single_relation(["1 -> 2"], arity=2)
    >>> f, g = Fact("R", (1, "a")), Fact("R", (1, "b"))
    >>> inst = schema.instance([f, g])
    >>> pi = PrioritizingInstance(schema, inst, PriorityRelation([(f, g)]))
    >>> pi.priority.prefers(f, g)
    True
    """

    __slots__ = ("_schema", "_instance", "_priority", "_ccp")

    def __init__(
        self,
        schema: Schema,
        instance: Instance,
        priority: PriorityRelation,
        ccp: bool = False,
    ) -> None:
        mentioned = priority.facts_mentioned()
        missing = mentioned - instance.facts
        if missing:
            raise InvalidPriorityError(
                f"priority mentions {len(missing)} fact(s) outside the "
                f"instance, e.g. {next(iter(missing))}"
            )
        if not ccp:
            index = ConflictIndex(schema, instance)
            for better, worse in priority.edges:
                if worse not in index.conflicts_of(better):
                    raise CrossConflictPriorityError(
                        f"priority edge {better} > {worse} relates "
                        f"non-conflicting facts; pass ccp=True for the "
                        f"cross-conflict setting of Section 7"
                    )
        self._schema = schema
        self._instance = instance
        self._priority = priority
        self._ccp = ccp

    @property
    def schema(self) -> Schema:
        """The schema fixing the FDs."""
        return self._schema

    @property
    def instance(self) -> Instance:
        """The instance ``I``."""
        return self._instance

    @property
    def priority(self) -> PriorityRelation:
        """The priority relation ``≻``."""
        return self._priority

    @property
    def is_ccp(self) -> bool:
        """Whether this is a cross-conflict-prioritizing instance."""
        return self._ccp

    def subinstance(self, facts: Iterable[Fact]) -> Instance:
        """A validated subinstance of ``I`` (raises if facts ⊄ I)."""
        return self._instance.subinstance(facts)

    def restrict_to_relation(self, name: str) -> "PrioritizingInstance":
        """The per-relation restriction of Proposition 3.5.

        Only valid in the classical setting; ccp priorities may cross
        relations, making the decomposition unsound, so this raises for
        ccp instances.
        """
        if self._ccp:
            raise InvalidPriorityError(
                "per-relation decomposition (Prop. 3.5) is unsound for "
                "ccp-instances"
            )
        restricted_instance = self._instance.restrict_to_relation(name)
        return PrioritizingInstance(
            self._schema.restrict(name),
            restricted_instance,
            self._priority.restrict_to(restricted_instance.facts),
            ccp=False,
        )

    def __repr__(self) -> str:
        kind = "ccp" if self._ccp else "classical"
        return (
            f"PrioritizingInstance({len(self._instance)} facts, "
            f"{len(self._priority)} priority edges, {kind})"
        )
