"""Priority relations over the facts of an instance (Sections 2.3 and 7).

A *priority* ``≻`` on an instance ``I`` is an acyclic binary relation on
the facts of ``I``; ``f ≻ g`` reads "f has higher priority than g".  A
*prioritizing instance* is a pair ``(I, ≻)``.  In the classical setting
(Section 2.3), priorities are only allowed between *conflicting* facts; a
*ccp-instance* (cross-conflict-prioritizing, Section 7) drops that
restriction.

:class:`PriorityRelation` stores the edge set explicitly with successor /
predecessor adjacency, validates acyclicity on construction, and offers
the queries the checking algorithms need (`prefers`, `preferred_over`,
`improvers_of`).  :class:`PrioritizingInstance` bundles the instance, the
priority, and the schema, and validates the conflicting-facts restriction
unless ``ccp=True``.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.core.conflicts import ConflictIndex
from repro.core.fact import Fact
from repro.core.instance import Instance
from repro.core.schema import Schema
from repro.exceptions import (
    CrossConflictPriorityError,
    CyclicPriorityError,
    InvalidPriorityError,
    NotASubinstanceError,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.bitset_index import BitsetCore

__all__ = ["PriorityRelation", "PrioritizingInstance"]


class PriorityRelation:
    """An acyclic binary relation ``≻`` over facts.

    Parameters
    ----------
    edges:
        Pairs ``(f, g)`` meaning ``f ≻ g``.

    Raises
    ------
    CyclicPriorityError
        If the edges contain a directed cycle (including self-loops).

    Examples
    --------
    >>> f, g = Fact("R", (1, "a")), Fact("R", (1, "b"))
    >>> pri = PriorityRelation([(f, g)])
    >>> pri.prefers(f, g)
    True
    >>> pri.prefers(g, f)
    False
    """

    __slots__ = ("_edges", "_successors", "_predecessors")

    def __init__(self, edges: Iterable[Tuple[Fact, Fact]] = ()) -> None:
        self._init_adjacency(frozenset(edges))
        cycle = self._find_cycle()
        if cycle is not None:
            raise CyclicPriorityError(cycle)

    def _init_adjacency(
        self, edge_set: FrozenSet[Tuple[Fact, Fact]]
    ) -> None:
        successors: Dict[Fact, Set[Fact]] = {}
        predecessors: Dict[Fact, Set[Fact]] = {}
        for better, worse in edge_set:
            successors.setdefault(better, set()).add(worse)
            predecessors.setdefault(worse, set()).add(better)
        self._edges = edge_set
        self._successors = {
            fact: frozenset(outs) for fact, outs in successors.items()
        }
        self._predecessors = {
            fact: frozenset(ins) for fact, ins in predecessors.items()
        }

    @classmethod
    def _from_acyclic(
        cls, edges: Iterable[Tuple[Fact, Fact]]
    ) -> "PriorityRelation":
        """Trusted constructor: the caller guarantees ``edges`` is acyclic.

        Skips the DFS cycle scan; used where acyclicity is preserved by
        construction — restrictions of an acyclic relation (every
        subgraph of a DAG is a DAG) and edges emitted along a known
        topological order.
        """
        relation = cls.__new__(cls)
        relation._init_adjacency(frozenset(edges))
        return relation

    def _find_cycle(self) -> Optional[List[Fact]]:
        """An iterative DFS cycle finder; returns a witness cycle or None."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color: Dict[Fact, int] = {}
        parent: Dict[Fact, Optional[Fact]] = {}
        for root in self._successors:
            if color.get(root, WHITE) != WHITE:
                continue
            stack: List[Tuple[Fact, Iterator[Fact]]] = [
                (root, iter(self._successors.get(root, ())))
            ]
            color[root] = GRAY
            parent[root] = None
            while stack:
                node, children = stack[-1]
                advanced = False
                for child in children:
                    state = color.get(child, WHITE)
                    if state == GRAY:
                        # Found a back edge: reconstruct the cycle.
                        cycle = [node]
                        walker = node
                        while walker != child:
                            walker = parent[walker]  # type: ignore[assignment]
                            cycle.append(walker)
                        cycle.reverse()
                        return cycle
                    if state == WHITE:
                        color[child] = GRAY
                        parent[child] = node
                        stack.append(
                            (child, iter(self._successors.get(child, ())))
                        )
                        advanced = True
                        break
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
        return None

    # -- construction ------------------------------------------------------------

    @classmethod
    def empty(cls) -> "PriorityRelation":
        """The empty priority (every repair is then optimal under all
        semantics, recovering classical subset repairs)."""
        return cls()

    def with_edges(
        self,
        edges: Iterable[Tuple[Fact, Fact]],
        assume_acyclic: bool = False,
    ) -> "PriorityRelation":
        """A new relation with ``edges`` added.

        Re-validates acyclicity by default; pass ``assume_acyclic=True``
        to skip the scan when the combined relation is acyclic by
        construction (e.g. the added edges follow a topological order of
        the existing relation, as the workload generators guarantee).
        """
        combined = self._edges | frozenset(edges)
        if assume_acyclic:
            return PriorityRelation._from_acyclic(combined)
        return PriorityRelation(combined)

    def restrict_to(self, facts: Iterable[Fact]) -> "PriorityRelation":
        """The restriction of ``≻`` to pairs inside ``facts``.

        Used by the per-relation decomposition of Proposition 3.5.  A
        restriction of an acyclic relation is acyclic, so no cycle
        re-validation is needed.
        """
        keep = facts if isinstance(facts, frozenset) else frozenset(facts)
        return PriorityRelation._from_acyclic(
            (f, g) for f, g in self._edges if f in keep and g in keep
        )

    # -- queries ------------------------------------------------------------------

    @property
    def edges(self) -> FrozenSet[Tuple[Fact, Fact]]:
        """All ``(better, worse)`` pairs."""
        return self._edges

    def __len__(self) -> int:
        return len(self._edges)

    def __bool__(self) -> bool:
        return bool(self._edges)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PriorityRelation):
            return self._edges == other._edges
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._edges)

    def prefers(self, better: Fact, worse: Fact) -> bool:
        """Whether ``better ≻ worse``."""
        return (better, worse) in self._edges

    def preferred_over(self, fact: Fact) -> FrozenSet[Fact]:
        """All facts ``g`` with ``fact ≻ g``."""
        return self._successors.get(fact, frozenset())

    def improvers_of(self, fact: Fact) -> FrozenSet[Fact]:
        """All facts ``g`` with ``g ≻ fact``."""
        return self._predecessors.get(fact, frozenset())

    def facts_mentioned(self) -> FrozenSet[Fact]:
        """Every fact occurring in some edge."""
        return frozenset(self._successors) | frozenset(self._predecessors)

    def is_total_on_conflicts(
        self,
        schema: Schema,
        instance: Instance,
        index: Optional[ConflictIndex] = None,
    ) -> bool:
        """Whether every conflicting pair of ``instance`` is ≻-comparable.

        Total priorities are the *completions* of Staworko et al.'s
        completion-optimal semantics.  Pass a prebuilt ``index`` over
        ``instance`` (e.g. :attr:`PrioritizingInstance.conflict_index`)
        to avoid rebuilding one per call.
        """
        if index is None:
            index = ConflictIndex(schema, instance)
        edges = self._edges
        for _, f, g in index.iter_conflicts():
            if (f, g) not in edges and (g, f) not in edges:
                return False
        return True

    def __repr__(self) -> str:
        return f"PriorityRelation({len(self._edges)} edges)"


class PrioritizingInstance:
    """A (possibly inconsistent) instance paired with a priority relation.

    Parameters
    ----------
    schema:
        The schema fixing the FDs.
    instance:
        The instance ``I``.
    priority:
        The relation ``≻`` over the facts of ``I``.
    ccp:
        When False (the classical setting of Section 2.3), every priority
        edge must relate two *conflicting* facts of ``I``; when True (the
        ccp-instances of Section 7) only acyclicity and membership in
        ``I`` are required.

    Examples
    --------
    >>> schema = Schema.single_relation(["1 -> 2"], arity=2)
    >>> f, g = Fact("R", (1, "a")), Fact("R", (1, "b"))
    >>> inst = schema.instance([f, g])
    >>> pi = PrioritizingInstance(schema, inst, PriorityRelation([(f, g)]))
    >>> pi.priority.prefers(f, g)
    True
    """

    __slots__ = (
        "_schema",
        "_instance",
        "_priority",
        "_ccp",
        "_conflict_index",
        "_bitset_core",
    )

    def __init__(
        self,
        schema: Schema,
        instance: Instance,
        priority: PriorityRelation,
        ccp: bool = False,
    ) -> None:
        mentioned = priority.facts_mentioned()
        missing = mentioned - instance.facts
        if missing:
            raise InvalidPriorityError(
                f"priority mentions {len(missing)} fact(s) outside the "
                f"instance, e.g. {next(iter(missing))}"
            )
        index: Optional[ConflictIndex] = None
        if not ccp:
            index = ConflictIndex(schema, instance)
            for better, worse in priority.edges:
                if worse not in index.conflicts_of(better):
                    raise CrossConflictPriorityError(
                        f"priority edge {better} > {worse} relates "
                        f"non-conflicting facts; pass ccp=True for the "
                        f"cross-conflict setting of Section 7"
                    )
        self._schema = schema
        self._instance = instance
        self._priority = priority
        self._ccp = ccp
        # The index built for the classical-priority validation above is
        # kept (not discarded): every checker needs exactly this index
        # over I, and conflict_index hands it out.
        self._conflict_index = index
        self._bitset_core = None

    @classmethod
    def _from_validated(
        cls,
        schema: Schema,
        instance: Instance,
        priority: PriorityRelation,
        ccp: bool = False,
        conflict_index: Optional[ConflictIndex] = None,
    ) -> "PrioritizingInstance":
        """Trusted constructor: the caller guarantees the invariants.

        Skips the membership and conflicting-facts validation; used for
        restrictions of an already-validated prioritizing instance,
        where the invariants hold by construction.
        """
        prioritizing = cls.__new__(cls)
        prioritizing._schema = schema
        prioritizing._instance = instance
        prioritizing._priority = priority
        prioritizing._ccp = ccp
        prioritizing._conflict_index = conflict_index
        prioritizing._bitset_core = None
        return prioritizing

    @property
    def conflict_index(self) -> ConflictIndex:
        """A :class:`ConflictIndex` over the full instance ``I``, cached.

        Classical instances reuse the index their constructor built for
        the conflicting-facts validation; ccp instances (and trusted
        restrictions) build it lazily on first use.  All checkers share
        this one index — per-candidate questions go through its
        membership-filtered views.
        """
        index = self._conflict_index
        if index is None:
            index = ConflictIndex(self._schema, self._instance)
            self._conflict_index = index
        return index

    @property
    def bitset_core(self) -> "BitsetCore":
        """The columnar substrate of the bitset backend, cached.

        Lazily interns the instance's facts and compiles the per-FD
        block partitions and the priority to id space
        (:class:`~repro.core.bitset_index.BitsetCore`); built on the
        first bitset-backend check of this instance and shared by all
        subsequent ones.
        """
        core = self._bitset_core
        if core is None:
            from repro.core.bitset_index import BitsetCore

            core = BitsetCore(self._schema, self._instance, self._priority)
            self._bitset_core = core
        return core

    @property
    def schema(self) -> Schema:
        """The schema fixing the FDs."""
        return self._schema

    @property
    def instance(self) -> Instance:
        """The instance ``I``."""
        return self._instance

    @property
    def priority(self) -> PriorityRelation:
        """The priority relation ``≻``."""
        return self._priority

    @property
    def is_ccp(self) -> bool:
        """Whether this is a cross-conflict-prioritizing instance."""
        return self._ccp

    def subinstance(self, facts: Iterable[Fact]) -> Instance:
        """A validated subinstance of ``I`` (raises if facts ⊄ I)."""
        return self._instance.subinstance(facts)

    def restrict_to_relation(self, name: str) -> "PrioritizingInstance":
        """The per-relation restriction of Proposition 3.5.

        Only valid in the classical setting; ccp priorities may cross
        relations, making the decomposition unsound, so this raises for
        ccp instances.
        """
        if self._ccp:
            raise InvalidPriorityError(
                "per-relation decomposition (Prop. 3.5) is unsound for "
                "ccp-instances"
            )
        restricted_instance = self._instance.restrict_to_relation(name)
        # Conflicts are intra-relation, so the restricted priority's
        # edges still relate conflicting facts of the restricted
        # instance; all invariants hold by construction and the trusted
        # path skips re-validating them.
        return PrioritizingInstance._from_validated(
            self._schema.restrict(name),
            restricted_instance,
            self._priority.restrict_to(restricted_instance.facts),
            ccp=False,
        )

    def __repr__(self) -> str:
        kind = "ccp" if self._ccp else "classical"
        return (
            f"PrioritizingInstance({len(self._instance)} facts, "
            f"{len(self._priority)} priority edges, {kind})"
        )
