"""Global and Pareto improvements between consistent subinstances.

Implements Definition 2.4 of the paper.  Given consistent subinstances
``J`` and ``J'`` of an inconsistent prioritizing instance ``(I, ≻)``:

* ``J'`` is a **global improvement** of ``J`` if ``J' ≠ J`` and every fact
  ``f' ∈ J \\ J'`` has some ``f ∈ J' \\ J`` with ``f ≻ f'``;
* ``J'`` is a **Pareto improvement** of ``J`` if some ``f ∈ J' \\ J`` has
  ``f ≻ f'`` for *all* ``f' ∈ J \\ J'``.

Every Pareto improvement is a global improvement.  A consistent
subinstance is a globally-optimal (resp. Pareto-optimal) repair iff it has
no global (resp. Pareto) improvement.

The module also implements the key polynomial-time subroutine shared by
all the tractable checkers: :func:`find_pareto_improvement`, based on the
*single-swap characterization* — if any Pareto improvement exists, then
one of the form ``(J \\ C_g) ∪ {g}`` exists, where ``g ∈ I \\ J`` and
``C_g`` is the set of facts of ``J`` conflicting with ``g``.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Set

from repro.core.conflicts import ConflictIndex
from repro.core.instance import Instance
from repro.core.priority import PrioritizingInstance, PriorityRelation

__all__ = [
    "is_global_improvement",
    "is_pareto_improvement",
    "find_pareto_improvement",
    "has_pareto_improvement",
]


def is_global_improvement(
    candidate: Instance,
    current: Instance,
    priority: PriorityRelation,
) -> bool:
    """Whether ``candidate`` is a global improvement of ``current``.

    Both arguments are assumed to be consistent subinstances of the same
    instance; the function only evaluates the improvement condition of
    Definition 2.4 (callers that need consistency validation should check
    it themselves — the checking algorithms construct candidates that are
    consistent by construction, so re-validating here would double the
    cost for nothing).
    """
    if candidate.facts == current.facts:
        return False
    added = candidate.facts - current.facts
    removed = current.facts - candidate.facts
    for lost in removed:
        improvers = priority.improvers_of(lost)
        if improvers.isdisjoint(added):
            return False
    return True


def is_pareto_improvement(
    candidate: Instance,
    current: Instance,
    priority: PriorityRelation,
) -> bool:
    """Whether ``candidate`` is a Pareto improvement of ``current``.

    Requires a witness ``f ∈ candidate \\ current`` preferred to *every*
    fact of ``current \\ candidate``; when the latter set is empty the
    condition is vacuous, so any proper consistent superset is a Pareto
    improvement.
    """
    added = candidate.facts - current.facts
    removed = current.facts - candidate.facts
    if not added:
        return False
    if not removed:
        return True  # proper superset: vacuously Pareto-improving
    return any(
        removed <= priority.preferred_over(witness) for witness in added
    )


def find_pareto_improvement(
    prioritizing: PrioritizingInstance,
    repair_candidate: Instance,
) -> Optional[Instance]:
    """A Pareto improvement of ``repair_candidate``, or None if optimal.

    Uses the single-swap characterization.  For each fact
    ``g ∈ I \\ J`` let ``C_g`` be the facts of ``J`` conflicting with
    ``g``; then ``(J \\ C_g) ∪ {g}`` is consistent, and it is a Pareto
    improvement iff ``g ≻ f`` for every ``f ∈ C_g`` (vacuously when
    ``C_g = ∅``, i.e. when ``J`` is not maximal).

    *Completeness*: if ``J'`` is any Pareto improvement with witness
    ``f ∈ J' \\ J``, then every fact of ``J`` conflicting with ``f`` lies
    in ``J \\ J'`` (since ``J'`` is consistent and contains ``f``), hence
    is ≻-dominated by ``f``; so the single swap at ``f`` also works.
    This argument does not use the conflicting-facts restriction on ≻,
    so the routine is sound and complete for ccp-instances too.

    The check runs in ``O(|I| · cost(conflict lookup))`` — polynomial, as
    promised by Staworko et al. and quoted in Section 3 of the paper.
    """
    schema = prioritizing.schema
    instance = prioritizing.instance
    priority = prioritizing.priority
    index = ConflictIndex(schema, repair_candidate)
    for outsider in instance.facts - repair_candidate.facts:
        blockers = index.conflicts_of(outsider)
        if blockers <= priority.preferred_over(outsider):
            return repair_candidate.replace_facts(blockers, [outsider])
    return None


def has_pareto_improvement(
    prioritizing: PrioritizingInstance,
    repair_candidate: Instance,
) -> bool:
    """Whether ``repair_candidate`` has a Pareto improvement."""
    return find_pareto_improvement(prioritizing, repair_candidate) is not None
