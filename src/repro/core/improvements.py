"""Global and Pareto improvements between consistent subinstances.

Implements Definition 2.4 of the paper.  Given consistent subinstances
``J`` and ``J'`` of an inconsistent prioritizing instance ``(I, ≻)``:

* ``J'`` is a **global improvement** of ``J`` if ``J' ≠ J`` and every fact
  ``f' ∈ J \\ J'`` has some ``f ∈ J' \\ J`` with ``f ≻ f'``;
* ``J'`` is a **Pareto improvement** of ``J`` if some ``f ∈ J' \\ J`` has
  ``f ≻ f'`` for *all* ``f' ∈ J \\ J'``.

Every Pareto improvement is a global improvement.  A consistent
subinstance is a globally-optimal (resp. Pareto-optimal) repair iff it has
no global (resp. Pareto) improvement.

Both conditions depend only on the symmetric difference ``(added,
removed)`` between the two subinstances, so the module exposes them in
two forms: the :class:`Instance`-level predicates of Definition 2.4 and
the set-level :func:`is_global_improvement_sets` /
:func:`is_pareto_improvement_sets` the checkers use to evaluate
candidate swaps *without materializing a witness instance* — the full
``Instance`` is only built for the swap that actually succeeds.

The module also implements the key polynomial-time subroutine shared by
all the tractable checkers: :func:`find_pareto_improvement`, based on the
*single-swap characterization* — if any Pareto improvement exists, then
one of the form ``(J \\ C_g) ∪ {g}`` exists, where ``g ∈ I \\ J`` and
``C_g`` is the set of facts of ``J`` conflicting with ``g``.
"""

from __future__ import annotations

from typing import AbstractSet, Collection, Optional, Set

from repro.core.bitset_index import BitsetCandidate
from repro.core.conflicts import ConflictIndex
from repro.core.fact import Fact
from repro.core.instance import Instance
from repro.core.interning import iter_bits
from repro.core.priority import PrioritizingInstance, PriorityRelation

__all__ = [
    "is_global_improvement",
    "is_global_improvement_sets",
    "is_pareto_improvement",
    "is_pareto_improvement_sets",
    "find_pareto_improvement",
    "find_pareto_improvement_bitset",
    "find_pareto_improvement_fresh",
    "has_pareto_improvement",
]


def is_global_improvement_sets(
    added: Collection[Fact],
    removed: Collection[Fact],
    priority: PriorityRelation,
) -> bool:
    """The global-improvement condition on a symmetric difference.

    ``added`` is ``J' \\ J`` and ``removed`` is ``J \\ J'`` for a
    candidate ``J' = (J \\ removed) ∪ added``; both must be disjoint
    from each other for the test to mean what Definition 2.4 says.
    This is the allocation-free form the checkers evaluate per probed
    swap, materializing an :class:`Instance` only on success.
    """
    if not added and not removed:
        return False  # J' = J is never an improvement
    for lost in removed:
        if priority.improvers_of(lost).isdisjoint(added):
            return False
    return True


def is_global_improvement(
    candidate: Instance,
    current: Instance,
    priority: PriorityRelation,
) -> bool:
    """Whether ``candidate`` is a global improvement of ``current``.

    Both arguments are assumed to be consistent subinstances of the same
    instance; the function only evaluates the improvement condition of
    Definition 2.4 (callers that need consistency validation should check
    it themselves — the checking algorithms construct candidates that are
    consistent by construction, so re-validating here would double the
    cost for nothing).
    """
    added = candidate.facts - current.facts
    removed = current.facts - candidate.facts
    return is_global_improvement_sets(added, removed, priority)


def is_pareto_improvement_sets(
    added: AbstractSet[Fact],
    removed: AbstractSet[Fact],
    priority: PriorityRelation,
) -> bool:
    """The Pareto-improvement condition on a symmetric difference.

    Requires a witness in ``added`` preferred to every fact of
    ``removed``; vacuous when ``removed`` is empty, so any proper
    consistent superset Pareto-improves.
    """
    if not added:
        return False
    if not removed:
        return True  # proper superset: vacuously Pareto-improving
    return any(
        removed <= priority.preferred_over(witness) for witness in added
    )


def is_pareto_improvement(
    candidate: Instance,
    current: Instance,
    priority: PriorityRelation,
) -> bool:
    """Whether ``candidate`` is a Pareto improvement of ``current``.

    Requires a witness ``f ∈ candidate \\ current`` preferred to *every*
    fact of ``current \\ candidate``; when the latter set is empty the
    condition is vacuous, so any proper consistent superset is a Pareto
    improvement.
    """
    added = candidate.facts - current.facts
    removed = current.facts - candidate.facts
    return is_pareto_improvement_sets(added, removed, priority)


def find_pareto_improvement(
    prioritizing: PrioritizingInstance,
    repair_candidate: Instance,
    index: Optional[ConflictIndex] = None,
) -> Optional[Instance]:
    """A Pareto improvement of ``repair_candidate``, or None if optimal.

    Uses the single-swap characterization.  For each fact
    ``g ∈ I \\ J`` let ``C_g`` be the facts of ``J`` conflicting with
    ``g``; then ``(J \\ C_g) ∪ {g}`` is consistent, and it is a Pareto
    improvement iff ``g ≻ f`` for every ``f ∈ C_g`` (vacuously when
    ``C_g = ∅``, i.e. when ``J`` is not maximal).

    *Completeness*: if ``J'`` is any Pareto improvement with witness
    ``f ∈ J' \\ J``, then every fact of ``J`` conflicting with ``f`` lies
    in ``J \\ J'`` (since ``J'`` is consistent and contains ``f``), hence
    is ≻-dominated by ``f``; so the single swap at ``f`` also works.
    This argument does not use the conflicting-facts restriction on ≻,
    so the routine is sound and complete for ccp-instances too.

    ``C_g`` is answered by the shared :class:`ConflictIndex` over ``I``
    (``prioritizing.conflict_index``, or an explicitly passed ``index``)
    restricted to ``J`` by membership filtering — no per-candidate index
    build.  The check runs in ``O(|I| · cost(conflict lookup))`` —
    polynomial, as promised by Staworko et al. and quoted in Section 3
    of the paper.
    """
    instance = prioritizing.instance
    priority = prioritizing.priority
    if index is None:
        index = prioritizing.conflict_index
    members = repair_candidate.facts
    for outsider in instance.facts - members:
        blockers = index.conflicts_of_in(outsider, members)
        if blockers <= priority.preferred_over(outsider):
            return repair_candidate.replace_facts(blockers, (outsider,))
    return None


def find_pareto_improvement_bitset(
    prioritizing: PrioritizingInstance,
    repair_candidate: Instance,
    view: BitsetCandidate,
) -> Optional[Instance]:
    """The single-swap Pareto search on the bitset backend.

    Same characterization as :func:`find_pareto_improvement`, evaluated
    group-locally: a consistent candidate keeps at most one rhs block
    per (FD, lhs-group), so the blockers ``C_g`` of an outsider ``g``
    are, per FD, either the whole kept mask of ``g``'s group (kept rhs
    differs) or empty (same rhs / empty group), and the domination test
    ``C_g ⊆ ≻(g)`` decomposes into one small-int mask comparison per FD
    — ``kept & ~preferred == 0`` — with no per-outsider set building.
    The swap instance is materialized only for the succeeding outsider.
    """
    core = prioritizing.bitset_core
    priority = core.priority
    layouts = core.layouts
    per_layout = [
        (
            layout,
            layout.group_of,
            layout.rhs_of,
            view.kept_for(layout),
            priority.preferred_local(layout),
        )
        for layout in layouts
    ]
    fact_of = core.interner.fact_of
    for fid in view.outsider_ids():
        blocked = False
        for _, group_of, rhs_of, (kept, kept_rhs, _), preferred in per_layout:
            group = group_of[fid]
            if group < 0:
                continue
            rhs = kept_rhs[group]
            if rhs < 0 or rhs == rhs_of[fid]:
                continue
            if kept[group] & ~preferred[fid]:
                blocked = True
                break
        if blocked:
            continue
        # Every blocker is ≻-dominated by the outsider: materialize the
        # single swap (J \ C_g) ∪ {g}.
        blocker_ids: Set[int] = set()
        for layout, group_of, rhs_of, (kept, kept_rhs, _), _ in per_layout:
            group = group_of[fid]
            if group < 0:
                continue
            rhs = kept_rhs[group]
            if rhs < 0 or rhs == rhs_of[fid]:
                continue
            members = layout.group_members[group]
            blocker_ids.update(
                members[local] for local in iter_bits(kept[group])
            )
        return repair_candidate.replace_facts(
            [fact_of(blocker) for blocker in blocker_ids], (fact_of(fid),)
        )
    return None


def find_pareto_improvement_fresh(
    prioritizing: PrioritizingInstance,
    repair_candidate: Instance,
) -> Optional[Instance]:
    """Ablation baseline: the single-swap search with a per-call index.

    Semantically identical to :func:`find_pareto_improvement`, but
    rebuilds a :class:`ConflictIndex` over the candidate on every call —
    the pre-fast-path behaviour, retained so the perf-regression harness
    (``benchmarks/bench_core_fastpaths.py``) can measure what the shared
    index buys.
    """
    schema = prioritizing.schema
    instance = prioritizing.instance
    priority = prioritizing.priority
    index = ConflictIndex(schema, repair_candidate)
    for outsider in instance.facts - repair_candidate.facts:
        blockers = index.conflicts_of(outsider)
        if blockers <= priority.preferred_over(outsider):
            return repair_candidate.replace_facts(blockers, [outsider])
    return None


def has_pareto_improvement(
    prioritizing: PrioritizingInstance,
    repair_candidate: Instance,
) -> bool:
    """Whether ``repair_candidate`` has a Pareto improvement."""
    return find_pareto_improvement(prioritizing, repair_candidate) is not None
