"""Sets of functional dependencies over a single relation symbol.

This module implements the classical FD theory the paper relies on:

* **attribute closure** ``⟦R.A^Δ⟧`` (Section 2.2) via the standard
  fixed-point algorithm;
* **implication testing** (the paper's Theorem 6.3, due to Maier,
  Mendelzon and Sagiv): ``Δ ⊨ A → B`` iff ``B ⊆ closure(A)``;
* **equivalence** of FD sets (equal closures — tested by mutual
  implication);
* **minimal covers**, key discovery, and the classification predicates of
  Sections 2.2 and 7.1;
* the **determiner** notions of Section 5.2 (nontrivial, non-redundant,
  and minimal determiners) that drive the hardness case analysis.

All functions here are *per relation*: a :class:`FDSet` holds FDs over one
relation symbol with a known arity.  Cross-relation bookkeeping (``Δ|R``)
lives in :class:`repro.core.schema.Schema`.
"""

from __future__ import annotations

from itertools import chain, combinations
from typing import FrozenSet, Iterable, Iterator, List, Set, Tuple

from repro.core.fd import FD, AttributeSet, attr_set
from repro.exceptions import InvalidFDError

__all__ = ["FDSet"]


class FDSet:
    """An immutable set of FDs over one relation symbol of known arity.

    Parameters
    ----------
    relation:
        The relation symbol's name; every FD must be over it.
    arity:
        The relation's arity; every FD attribute must lie in ``1..arity``.
    fds:
        The functional dependencies.

    Examples
    --------
    >>> fds = FDSet("R", 3, [FD("R", {1}, {2}), FD("R", {2}, {3})])
    >>> sorted(fds.closure({1}))
    [1, 2, 3]
    >>> fds.implies(FD("R", {1}, {3}))
    True
    """

    __slots__ = ("_relation", "_arity", "_fds")

    def __init__(self, relation: str, arity: int, fds: Iterable[FD] = ()) -> None:
        if arity < 1:
            raise InvalidFDError(f"arity must be positive, got {arity}")
        fd_set: FrozenSet[FD] = frozenset(fds)
        for fd in fd_set:
            if fd.relation != relation:
                raise InvalidFDError(
                    f"FD {fd} does not belong to relation {relation!r}"
                )
            fd.validate_for_arity(arity)
        self._relation = relation
        self._arity = arity
        self._fds = fd_set

    # -- basic protocol --------------------------------------------------------

    @property
    def relation(self) -> str:
        """The relation symbol's name."""
        return self._relation

    @property
    def arity(self) -> int:
        """The relation's arity."""
        return self._arity

    @property
    def fds(self) -> FrozenSet[FD]:
        """The FDs as a frozenset."""
        return self._fds

    def all_attributes(self) -> AttributeSet:
        """The full attribute set ``⟦R⟧ = {1, ..., arity}``."""
        return frozenset(range(1, self._arity + 1))

    def __iter__(self) -> Iterator[FD]:
        return iter(self._fds)

    def __len__(self) -> int:
        return len(self._fds)

    def __bool__(self) -> bool:
        return bool(self._fds)

    def __contains__(self, fd: object) -> bool:
        return fd in self._fds

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FDSet):
            return (
                self._relation == other._relation
                and self._arity == other._arity
                and self._fds == other._fds
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._relation, self._arity, self._fds))

    def __repr__(self) -> str:
        inner = ", ".join(sorted(str(fd) for fd in self._fds))
        return f"FDSet({self._relation!r}/{self._arity}, {{{inner}}})"

    def with_fds(self, fds: Iterable[FD]) -> "FDSet":
        """A new FDSet with ``fds`` added."""
        return FDSet(self._relation, self._arity, self._fds | frozenset(fds))

    def without_fds(self, fds: Iterable[FD]) -> "FDSet":
        """A new FDSet with ``fds`` removed."""
        return FDSet(self._relation, self._arity, self._fds - frozenset(fds))

    # -- closure and implication (Theorem 6.3) ----------------------------------

    def closure(self, attributes) -> AttributeSet:
        """The attribute closure ``⟦R.A^Δ⟧`` (Section 2.2).

        The set of all attributes ``i`` such that ``A → i`` is in ``Δ+``,
        computed by the standard fixed-point algorithm in
        ``O(|Δ| · arity)`` passes.
        """
        closed: Set[int] = set(attr_set(attributes))
        changed = True
        while changed:
            changed = False
            for fd in self._fds:
                if fd.lhs <= closed and not fd.rhs <= closed:
                    closed |= fd.rhs
                    changed = True
        return frozenset(closed)

    def implies(self, fd: FD) -> bool:
        """Whether this set logically implies ``fd`` (``fd ∈ Δ+``).

        This is the polynomial-time implication test of Maier, Mendelzon
        and Sagiv (the paper's Theorem 6.3): ``Δ ⊨ A → B`` iff
        ``B ⊆ ⟦R.A^Δ⟧``.
        """
        if fd.relation != self._relation:
            return False
        return fd.rhs <= self.closure(fd.lhs)

    def implies_all(self, fds: Iterable[FD]) -> bool:
        """Whether every FD in ``fds`` is implied by this set."""
        return all(self.implies(fd) for fd in fds)

    def is_implied_by(self, other: "FDSet") -> bool:
        """Whether every FD of this set is implied by ``other``."""
        return other.implies_all(self._fds)

    def equivalent_to(self, other: "FDSet") -> bool:
        """Whether the two sets have equal closures (``Δ1+ = Δ2+``).

        Per Section 2.2 this is the same as having the same consistent
        instances.  Tested by mutual implication.
        """
        if self._relation != other._relation or self._arity != other._arity:
            return False
        return self.is_implied_by(other) and other.is_implied_by(self)

    def equivalent_to_fds(self, fds: Iterable[FD]) -> bool:
        """Whether this set is equivalent to the FD set ``fds``."""
        return self.equivalent_to(FDSet(self._relation, self._arity, fds))

    # -- keys -------------------------------------------------------------------

    def is_key(self, attributes) -> bool:
        """Whether ``attributes`` functionally determines all of ``⟦R⟧``."""
        return self.closure(attributes) == self.all_attributes()

    def is_minimal_key(self, attributes) -> bool:
        """Whether ``attributes`` is a key and no proper subset is."""
        attributes = attr_set(attributes)
        if not self.is_key(attributes):
            return False
        return not any(
            self.is_key(attributes - {attribute}) for attribute in attributes
        )

    def minimal_keys(self) -> FrozenSet[AttributeSet]:
        """All minimal keys, found by breadth-first search over subsets.

        Exponential in the arity in the worst case; arities in this
        library are tiny (schemas are fixed), so this is fine in practice.
        """
        found: List[AttributeSet] = []
        universe = sorted(self.all_attributes())
        for size in range(0, self._arity + 1):
            for candidate in combinations(universe, size):
                cand_set = frozenset(candidate)
                if any(key <= cand_set for key in found):
                    continue
                if self.is_key(cand_set):
                    found.append(cand_set)
        return frozenset(found)

    # -- normalization -----------------------------------------------------------

    def nontrivial_fds(self) -> FrozenSet[FD]:
        """The FDs in this set that are not trivial."""
        return frozenset(fd for fd in self._fds if not fd.is_trivial())

    def is_trivial(self) -> bool:
        """Whether every FD in this set is trivial (no conflicts possible)."""
        return not self.nontrivial_fds()

    def saturated_fds(self) -> FrozenSet[FD]:
        """Each FD ``A → B`` replaced by ``A → closure(A)``."""
        return frozenset(
            FD(self._relation, fd.lhs, self.closure(fd.lhs)) for fd in self._fds
        )

    def left_hand_sides(self) -> FrozenSet[AttributeSet]:
        """The distinct left-hand sides occurring in this set."""
        return frozenset(fd.lhs for fd in self._fds)

    def minimal_cover(self) -> "FDSet":
        """A minimal (canonical) cover: singleton RHS, reduced LHS, no
        redundant FDs.

        Not required for correctness anywhere, but useful for display and
        for ablation tests of the classifier.
        """
        # 1. Split right-hand sides into singletons and drop trivial FDs.
        split: Set[FD] = set()
        for fd in self._fds:
            for attribute in fd.rhs - fd.lhs:
                split.add(FD(self._relation, fd.lhs, {attribute}))
        # 2. Remove extraneous left-hand-side attributes.
        reduced: Set[FD] = set()
        for fd in split:
            lhs = set(fd.lhs)
            for attribute in sorted(fd.lhs):
                if len(lhs) <= 0:
                    break
                trimmed = frozenset(lhs - {attribute})
                if next(iter(fd.rhs)) in self.closure(trimmed):
                    lhs -= {attribute}
            reduced.add(FD(self._relation, frozenset(lhs), fd.rhs))
        # 3. Remove redundant FDs one at a time.
        remaining: Set[FD] = set(reduced)
        for fd in sorted(reduced, key=str):
            trial = FDSet(self._relation, self._arity, remaining - {fd})
            if trial.implies(fd):
                remaining.discard(fd)
        return FDSet(self._relation, self._arity, remaining)

    # -- Section 7.1 predicates ----------------------------------------------------

    def constant_attributes(self) -> AttributeSet:
        """The attributes determined by the empty set, ``⟦R.∅^Δ⟧``."""
        return self.closure(frozenset())

    def is_equivalent_to_constant_attribute(self) -> bool:
        """Whether this set is equivalent to a single ``∅ → B`` constraint.

        The candidate is ``∅ → closure(∅)``, which this set implies by
        construction, so only the converse direction needs testing.  An
        all-trivial set qualifies via the trivial constraint ``∅ → ∅``.
        """
        candidate = FDSet(
            self._relation,
            self._arity,
            [FD(self._relation, frozenset(), self.constant_attributes())],
        )
        return self.is_implied_by(candidate)

    # -- Section 5.2 determiners -----------------------------------------------------

    def is_nontrivial_determiner(self, attributes) -> bool:
        """Whether ``A ⊊ ⟦R.A^Δ⟧`` (A determines something outside itself)."""
        attributes = attr_set(attributes)
        return attributes < self.closure(attributes)

    def is_non_redundant_determiner(self, attributes) -> bool:
        """Section 5.2: no ``B ⊊ A`` has ``closure(A) \\ A ⊆ closure(B)``."""
        attributes = attr_set(attributes)
        gain = self.closure(attributes) - attributes
        if not gain:
            return False  # a non-redundant determiner is necessarily nontrivial
        return not any(
            gain <= self.closure(frozenset(subset))
            for subset in _proper_subsets(attributes)
        )

    def is_minimal_determiner(self, attributes) -> bool:
        """Section 5.2: nontrivial, and strictly contains no nontrivial
        determiner."""
        attributes = attr_set(attributes)
        if not self.is_nontrivial_determiner(attributes):
            return False
        return not any(
            self.is_nontrivial_determiner(frozenset(subset))
            for subset in _proper_subsets(attributes)
        )

    def nontrivial_determiners(self) -> FrozenSet[AttributeSet]:
        """All nontrivial determiners (exponential in arity; arity is tiny)."""
        universe = sorted(self.all_attributes())
        return frozenset(
            frozenset(subset)
            for subset in _all_subsets(universe)
            if self.is_nontrivial_determiner(frozenset(subset))
        )

    def minimal_determiners(self) -> FrozenSet[AttributeSet]:
        """All minimal determiners."""
        return frozenset(
            determiner
            for determiner in self.nontrivial_determiners()
            if self.is_minimal_determiner(determiner)
        )

    def non_redundant_determiners(self) -> FrozenSet[AttributeSet]:
        """All non-redundant determiners."""
        universe = sorted(self.all_attributes())
        return frozenset(
            frozenset(subset)
            for subset in _all_subsets(universe)
            if self.is_non_redundant_determiner(frozenset(subset))
        )


def _proper_subsets(attributes: AttributeSet) -> Iterator[Tuple[int, ...]]:
    """All proper subsets of ``attributes`` (as tuples), smallest first."""
    items = sorted(attributes)
    return chain.from_iterable(
        combinations(items, size) for size in range(len(items))
    )


def _all_subsets(items: List[int]) -> Iterator[Tuple[int, ...]]:
    """All subsets of ``items`` (as tuples), smallest first."""
    return chain.from_iterable(
        combinations(items, size) for size in range(len(items) + 1)
    )
