"""Subset repairs: maximal consistent subinstances.

Following Arenas, Bertossi and Chomicki (and Section 2.4 of the paper), a
*repair* of an inconsistent instance ``I`` is a maximal consistent
subinstance ``J ⊆ I``: no fact of ``I \\ J`` can be added to ``J`` without
breaking consistency.

Because all constraints are FDs, consistency is violated only by fact
*pairs*, so consistent subinstances are exactly the independent sets of
the conflict graph and repairs are its *maximal* independent sets.  This
module provides:

* :func:`is_consistent_subinstance` and :func:`is_repair` — the two
  validation predicates every checker starts from;
* :func:`enumerate_repairs` — exhaustive enumeration via per-component
  Bron–Kerbosch with pivoting (exponential in general; used by the
  brute-force baselines and on small instances);
* :func:`greedy_repair` — seeded greedy construction;
* :func:`naive_enumerate_repairs` — subset filtering, the ablation
  baseline for the enumeration benchmark.

Counting lives in :func:`repro.core.counting.count_repairs_fast`; the
enumerative counter kept here (:func:`_count_repairs_enumerative`) is
its internal fallback and ablation baseline, cross-checked against the
definitional :func:`repro.testing.oracle.oracle_count_repairs`.
"""

from __future__ import annotations

import random
from itertools import chain, combinations
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set

from repro.core.conflicts import ConflictIndex, conflict_graph
from repro.core.fact import Fact
from repro.core.instance import Instance
from repro.core.schema import Schema

__all__ = [
    "is_consistent_subinstance",
    "is_repair",
    "enumerate_repairs",
    "greedy_repair",
    "naive_enumerate_repairs",
]


def is_consistent_subinstance(
    schema: Schema, instance: Instance, candidate: Instance
) -> bool:
    """Whether ``candidate ⊆ instance`` and ``candidate ⊨ Δ``."""
    if not candidate.facts <= instance.facts:
        return False
    return schema.is_consistent(candidate)


def is_repair(schema: Schema, instance: Instance, candidate: Instance) -> bool:
    """Whether ``candidate`` is a repair of ``instance``.

    Checks (1) subinstance, (2) consistency, (3) maximality: every fact of
    ``I \\ J`` conflicts with some fact of ``J``.  Runs in time linear in
    ``|I|`` for a fixed schema thanks to the conflict index.
    """
    if not candidate.facts <= instance.facts:
        return False
    index = ConflictIndex(schema, candidate)
    if not index.is_consistent():
        return False
    return all(
        index.conflicts_with_anything(outsider)
        for outsider in instance.facts - candidate.facts
    )


def _maximal_independent_sets(
    vertices: List[Fact], adjacency: Dict[Fact, FrozenSet[Fact]]
) -> Iterator[FrozenSet[Fact]]:
    """Bron–Kerbosch with pivoting, phrased for independent sets.

    Maximal independent sets of a graph are maximal cliques of its
    complement; rather than materializing the complement we run BK using
    *non-neighbours* as the extension rule.
    """

    def non_neighbours(vertex: Fact, pool: Set[Fact]) -> Set[Fact]:
        return pool - adjacency[vertex] - {vertex}

    def expand(
        chosen: Set[Fact], candidates: Set[Fact], excluded: Set[Fact]
    ) -> Iterator[FrozenSet[Fact]]:
        if not candidates and not excluded:
            yield frozenset(chosen)
            return
        # Pivot: the vertex (from candidates ∪ excluded) with the most
        # non-neighbours inside candidates prunes the most branches.
        pivot = max(
            chain(candidates, excluded),
            key=lambda vertex: len(non_neighbours(vertex, candidates)),
        )
        for vertex in list(candidates - non_neighbours(pivot, candidates)):
            yield from expand(
                chosen | {vertex},
                non_neighbours(vertex, candidates),
                non_neighbours(vertex, excluded),
            )
            candidates.discard(vertex)
            excluded.add(vertex)

    yield from expand(set(), set(vertices), set())


def _conflict_components(
    adjacency: Dict[Fact, FrozenSet[Fact]]
) -> List[List[Fact]]:
    """Connected components of the conflict graph (singletons included)."""
    seen: Set[Fact] = set()
    components: List[List[Fact]] = []
    for start in adjacency:
        if start in seen:
            continue
        component: List[Fact] = []
        stack = [start]
        seen.add(start)
        while stack:
            node = stack.pop()
            component.append(node)
            for neighbour in adjacency[node]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
        components.append(component)
    return components


def enumerate_repairs(
    schema: Schema, instance: Instance
) -> Iterator[Instance]:
    """Yield every repair of ``instance``, each exactly once.

    Decomposes the conflict graph into connected components, enumerates
    the maximal independent sets of each component via Bron–Kerbosch with
    pivoting, and takes the cross product.  Isolated facts (conflicting
    with nothing) belong to every repair and never branch.

    The number of repairs can be exponential in ``|I|`` (e.g. ``n``
    disjoint conflicting pairs yield ``2^n`` repairs); callers on the
    tractable side of the dichotomy never need this function.
    """
    adjacency = conflict_graph(schema, instance)
    components = _conflict_components(adjacency)
    core: Set[Fact] = set()
    branching: List[List[FrozenSet[Fact]]] = []
    for component in components:
        if len(component) == 1 and not adjacency[component[0]]:
            core.add(component[0])
        else:
            branching.append(
                list(_maximal_independent_sets(component, adjacency))
            )

    def product(level: int, chosen: Set[Fact]) -> Iterator[Instance]:
        if level == len(branching):
            yield instance.subinstance(chosen)
            return
        for selection in branching[level]:
            yield from product(level + 1, chosen | selection)

    yield from product(0, set(core))


def _count_repairs_enumerative(schema: Schema, instance: Instance) -> int:
    """The number of repairs of ``instance`` (product over components).

    Exponential in the worst case; demoted from the public API in favour
    of :func:`repro.core.counting.count_repairs_fast`, which keeps this
    as its fallback for relations with no single-FD witness.
    """
    adjacency = conflict_graph(schema, instance)
    total = 1
    for component in _conflict_components(adjacency):
        if len(component) == 1 and not adjacency[component[0]]:
            continue
        total *= sum(
            1 for _ in _maximal_independent_sets(component, adjacency)
        )
    return total


def greedy_repair(
    schema: Schema,
    instance: Instance,
    rng: Optional[random.Random] = None,
    prefer: Optional[Iterable[Fact]] = None,
) -> Instance:
    """A repair built by greedy insertion.

    Facts are visited in a shuffled order (or with ``prefer`` facts
    first), each inserted if it conflicts with nothing inserted so far.
    The result is always a repair; distinct orders produce the various
    repairs.  With a priority-respecting order this produces
    completion-optimal repairs (see :mod:`repro.core.checking.completion`).
    """
    rng = rng or random.Random(0)
    order = list(instance.facts)
    order.sort(key=str)
    rng.shuffle(order)
    if prefer is not None:
        # Unordered `prefer` collections are canonicalized by sorting so
        # the output never depends on set iteration order (and hence on
        # PYTHONHASHSEED); sequences keep their caller-chosen order,
        # which the compute layer relies on for witness extension.
        if isinstance(prefer, (set, frozenset)):
            candidates = sorted(prefer, key=str)
        else:
            candidates = list(prefer)
        preferred = []
        taken: Set[Fact] = set()
        for fact in candidates:
            if fact in instance.facts and fact not in taken:
                preferred.append(fact)
                taken.add(fact)
        rest = [f for f in order if f not in taken]
        order = preferred + rest
    chosen: Set[Fact] = set()
    # Rebuilding a conflict index per insertion would be quadratic; keep
    # the chosen set and test conflicts against it with the full-instance
    # adjacency, which we compute once.
    adjacency = conflict_graph(schema, instance)
    for fact in order:
        if adjacency[fact].isdisjoint(chosen):
            chosen.add(fact)
    return instance.subinstance(chosen)


def naive_enumerate_repairs(
    schema: Schema, instance: Instance
) -> Iterator[Instance]:
    """Enumerate repairs by filtering all subsets; ablation baseline.

    Exponential with a terrible constant; only usable for ``|I| ≲ 15``.
    """
    facts = sorted(instance.facts, key=str)
    consistent_subsets: List[FrozenSet[Fact]] = []
    for size in range(len(facts) + 1):
        for subset in combinations(facts, size):
            subset_set = frozenset(subset)
            candidate = instance.subinstance(subset_set)
            if schema.is_consistent(candidate):
                consistent_subsets.append(subset_set)
    for subset_set in consistent_subsets:
        is_maximal = not any(
            subset_set < other for other in consistent_subsets
        )
        if is_maximal:
            yield instance.subinstance(subset_set)
