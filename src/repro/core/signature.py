"""Relational signatures: relation symbols with fixed arities.

The paper (Section 2.1) defines a signature as a finite set of relation
symbols, each with a designated positive arity.  Attributes are referred to
by *position*: the attributes of a relation symbol ``R`` are the indices
``1 .. arity(R)``, written ``⟦R⟧`` in the paper and exposed here as
:meth:`RelationSymbol.attributes`.

Attribute *names* (such as ``isbn`` in the running example) are purely
cosmetic in the formalism; we support them as optional documentation on
:class:`RelationSymbol` because they make examples and error messages far
more readable, but nothing in the algorithms depends on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Tuple

from repro.exceptions import SchemaError, UnknownRelationError

__all__ = ["RelationSymbol", "Signature"]


@dataclass(frozen=True)
class RelationSymbol:
    """A relation symbol with a fixed positive arity.

    Parameters
    ----------
    name:
        The symbol's name, e.g. ``"BookLoc"``.  Names are unique within a
        :class:`Signature`.
    arity:
        The number of attributes (columns); must be positive.
    attribute_names:
        Optional human-readable names for the attributes, e.g.
        ``("isbn", "genre", "lib")``.  If given, the tuple length must
        equal ``arity``.

    Examples
    --------
    >>> book_loc = RelationSymbol("BookLoc", 3, ("isbn", "genre", "lib"))
    >>> book_loc.attributes()
    frozenset({1, 2, 3})
    >>> book_loc.attribute_name(1)
    'isbn'
    """

    name: str
    arity: int
    attribute_names: Optional[Tuple[str, ...]] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("relation symbol name must be non-empty")
        if self.arity < 1:
            raise SchemaError(
                f"relation {self.name!r}: arity must be positive, got {self.arity}"
            )
        if self.attribute_names is not None:
            names = tuple(self.attribute_names)
            object.__setattr__(self, "attribute_names", names)
            if len(names) != self.arity:
                raise SchemaError(
                    f"relation {self.name!r}: got {len(names)} attribute names "
                    f"for arity {self.arity}"
                )

    def attributes(self) -> FrozenSet[int]:
        """The attribute positions ``{1, ..., arity}`` (the paper's ⟦R⟧)."""
        return frozenset(range(1, self.arity + 1))

    def attribute_name(self, position: int) -> str:
        """A printable name for attribute ``position`` (1-based).

        Falls back to ``"#<position>"`` when no names were declared.
        """
        if not 1 <= position <= self.arity:
            raise SchemaError(
                f"relation {self.name!r}: attribute {position} out of range "
                f"1..{self.arity}"
            )
        if self.attribute_names is None:
            return f"#{position}"
        return self.attribute_names[position - 1]

    def __str__(self) -> str:
        if self.attribute_names is not None:
            cols = ", ".join(self.attribute_names)
        else:
            cols = ", ".join(f"#{i}" for i in range(1, self.arity + 1))
        return f"{self.name}({cols})"


class Signature:
    """An immutable collection of uniquely-named relation symbols.

    Examples
    --------
    >>> sig = Signature([
    ...     RelationSymbol("BookLoc", 3, ("isbn", "genre", "lib")),
    ...     RelationSymbol("LibLoc", 2, ("lib", "loc")),
    ... ])
    >>> sorted(sig.relation_names())
    ['BookLoc', 'LibLoc']
    >>> sig["LibLoc"].arity
    2
    """

    __slots__ = ("_relations",)

    def __init__(self, relations: Iterable[RelationSymbol]) -> None:
        by_name: Dict[str, RelationSymbol] = {}
        for relation in relations:
            if relation.name in by_name:
                raise SchemaError(
                    f"duplicate relation symbol: {relation.name!r}"
                )
            by_name[relation.name] = relation
        if not by_name:
            raise SchemaError("a signature must contain at least one relation")
        self._relations: Dict[str, RelationSymbol] = by_name

    @classmethod
    def single(
        cls,
        name: str,
        arity: int,
        attribute_names: Optional[Tuple[str, ...]] = None,
    ) -> "Signature":
        """Convenience constructor for a one-relation signature."""
        return cls([RelationSymbol(name, arity, attribute_names)])

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __getitem__(self, name: str) -> RelationSymbol:
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(name) from None

    def __iter__(self) -> Iterator[RelationSymbol]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Signature):
            return NotImplemented
        return self._relations == other._relations

    def __hash__(self) -> int:
        return hash(frozenset(self._relations.values()))

    def relation_names(self) -> FrozenSet[str]:
        """The names of all relation symbols in this signature."""
        return frozenset(self._relations)

    def arity(self, name: str) -> int:
        """The arity of relation ``name`` (raises for unknown relations)."""
        return self[name].arity

    def restrict(self, name: str) -> "Signature":
        """The one-relation signature ``{R}`` used by Proposition 3.5."""
        return Signature([self[name]])

    def __repr__(self) -> str:
        # Sorted by relation name: equal signatures must repr equally
        # regardless of construction order (the dict preserves insertion
        # order, which is not part of the value).
        inner = ", ".join(
            str(self._relations[name]) for name in sorted(self._relations)
        )
        return f"Signature({{{inner}}})"
