"""The columnar bitset backend: conflicts, blocks, and priorities in id space.

This module is the data substrate of the ``bitset`` core backend
(:mod:`repro.core.backend`).  Facts are interned to dense integer ids
(:class:`~repro.core.interning.FactInterner`); every per-fact attribute
becomes a flat list indexed by id, and every fact *set* becomes a stdlib
``int`` bitmask, so the set algebra the checkers run per candidate —
"which kept facts conflict with this outsider", "is every evicted fact
dominated by the incoming block" — turns into word-parallel ``&``/``|``
operations and O(1) array probes.

Layout
------
For each non-trivial FD ``δ = R : A → B`` a :class:`_FDLayout` compiles
the *block partition* of the paper (Section 4.1) once:

* facts of ``R`` are grouped by their ``A``-projection (an lhs *group*)
  and, within a group, subgrouped by their ``B``-projection (an rhs
  *block*);
* each fact gets a *local* bit position inside its group, so per-group
  masks stay small ints whose cost tracks the group size, not the
  instance size;
* flat arrays ``group_of`` / ``local_of`` / ``rhs_of`` map a fact id to
  its (group, local bit, rhs block) coordinates in O(1).

Two facts δ-conflict iff they share a group and sit in different rhs
blocks, so a candidate's entire conflict structure w.r.t. δ is captured
by one small mask per group (its *kept* facts) plus the kept block index
— exactly what :class:`BitsetCandidate` extracts in one O(|J|) pass.

:class:`BitsetConflictIndex` exposes the same query surface as the
object backend's :class:`~repro.core.conflicts.ConflictIndex`
(``is_consistent_subset``, ``conflicts_of_in``,
``conflicts_with_anything_in``, ``adjacency``, ...), answered from the
layouts.  :class:`BitsetPriority` compiles the priority relation to
id space: per-layout masks of in-group improvers/dominated facts (all
the block-swap and Pareto tests ever compare against are in-group), plus
global per-fact masks for the improvement search.  :class:`BitsetCore`
bundles the three and is cached on
:attr:`~repro.core.priority.PrioritizingInstance.bitset_core`.

The oracle conformance suite drives both backends through identical
generated cases and requires identical verdicts; the object checkers
remain the correctness reference.
"""

from __future__ import annotations

from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro.core.fact import Fact
from repro.core.fd import FD
from repro.core.instance import Instance
from repro.core.interning import FactInterner, iter_bits
from repro.core.schema import Schema

__all__ = [
    "BitsetConflictIndex",
    "BitsetPriority",
    "BitsetCore",
    "BitsetCandidate",
]


class _FDLayout:
    """The block partition of one FD, compiled to id-space arrays."""

    __slots__ = (
        "fd",
        "group_count",
        "group_of",
        "local_of",
        "rhs_of",
        "group_members",
        "group_rhs_subs",
        "group_all",
        "group_lhs_values",
        "group_rhs_values",
        "group_index_by_lhs",
        "rhs_index_by_group",
    )

    def __init__(self, fd: FD, interner: FactInterner) -> None:
        self.fd = fd
        lhs_sorted = fd.lhs_sorted
        rhs_sorted = fd.rhs_sorted
        relation = fd.relation
        n = len(interner)
        group_of = [-1] * n
        local_of = [0] * n
        rhs_of = [0] * n
        group_index_by_lhs: Dict[Tuple, int] = {}
        group_members: List[List[int]] = []
        group_rhs_subs: List[List[int]] = []
        group_lhs_values: List[Tuple] = []
        group_rhs_values: List[List[Tuple]] = []
        rhs_index_by_group: List[Dict[Tuple, int]] = []
        # Facts are visited in id order, so group and block numbering —
        # hence every downstream scan — is deterministic.
        for fid, fact in enumerate(interner.facts):
            if fact.relation != relation:
                continue
            lhs_value = fact.project(lhs_sorted)
            group = group_index_by_lhs.get(lhs_value)
            if group is None:
                group = len(group_members)
                group_index_by_lhs[lhs_value] = group
                group_members.append([])
                group_rhs_subs.append([])
                group_lhs_values.append(lhs_value)
                group_rhs_values.append([])
                rhs_index_by_group.append({})
            members = group_members[group]
            local = len(members)
            members.append(fid)
            rhs_value = fact.project(rhs_sorted)
            rhs_map = rhs_index_by_group[group]
            sub = rhs_map.get(rhs_value)
            if sub is None:
                sub = len(group_rhs_subs[group])
                rhs_map[rhs_value] = sub
                group_rhs_subs[group].append(0)
                group_rhs_values[group].append(rhs_value)
            group_rhs_subs[group][sub] |= 1 << local
            group_of[fid] = group
            local_of[fid] = local
            rhs_of[fid] = sub
        self.group_count = len(group_members)
        self.group_of = group_of
        self.local_of = local_of
        self.rhs_of = rhs_of
        self.group_members = group_members
        self.group_rhs_subs = group_rhs_subs
        self.group_all = [(1 << len(m)) - 1 for m in group_members]
        self.group_lhs_values = group_lhs_values
        self.group_rhs_values = group_rhs_values
        self.group_index_by_lhs = group_index_by_lhs
        self.rhs_index_by_group = rhs_index_by_group


class BitsetConflictIndex:
    """Columnar twin of :class:`~repro.core.conflicts.ConflictIndex`.

    Same query surface, same answers (the conformance suite holds both
    to the oracle case by case), different substrate: per-FD block
    partitions compiled to id-space arrays and local bitmasks.

    Examples
    --------
    >>> from repro.core import Schema, Fact
    >>> schema = Schema.single_relation(["1 -> 2"], arity=2)
    >>> inst = schema.instance([Fact("R", (1, "a")), Fact("R", (1, "b"))])
    >>> index = BitsetConflictIndex(schema, inst)
    >>> index.is_consistent()
    False
    >>> index.is_consistent_subset({Fact("R", (1, "a"))})
    True
    """

    __slots__ = (
        "_schema",
        "_instance",
        "_interner",
        "_layouts",
        "_layout_by_fd",
        "_conflict_masks",
        "_adjacency",
    )

    def __init__(
        self,
        schema: Schema,
        instance: Instance,
        interner: Optional[FactInterner] = None,
    ) -> None:
        self._schema = schema
        self._instance = instance
        self._interner = interner if interner is not None else FactInterner(
            instance
        )
        self._layout_by_fd: Dict[FD, _FDLayout] = {}
        layouts: List[_FDLayout] = []
        for _, fdset in schema.per_relation():
            for fd in fdset:
                if fd.is_trivial() or fd in self._layout_by_fd:
                    continue
                layout = _FDLayout(fd, self._interner)
                self._layout_by_fd[fd] = layout
                layouts.append(layout)
        self._layouts = layouts
        self._conflict_masks: Optional[List[int]] = None
        self._adjacency: Optional[Dict[Fact, FrozenSet[Fact]]] = None

    @property
    def schema(self) -> Schema:
        """The schema whose FDs drive the index."""
        return self._schema

    @property
    def instance(self) -> Instance:
        """The indexed instance."""
        return self._instance

    @property
    def interner(self) -> FactInterner:
        """The fact ↔ id bijection the layouts are built over."""
        return self._interner

    @property
    def layouts(self) -> List[_FDLayout]:
        """The compiled block partitions of the schema's non-trivial FDs."""
        return self._layouts

    def layout_for(self, fd: FD) -> _FDLayout:
        """The block partition of ``fd``, compiled once and cached.

        The witness FDs the classifiers hand to the checkers
        (``equivalent_single_fd`` / ``equivalent_two_keys``) need not be
        schema members; their layouts are built on first use.
        """
        layout = self._layout_by_fd.get(fd)
        if layout is None:
            layout = _FDLayout(fd, self._interner)
            self._layout_by_fd[fd] = layout
        return layout

    # -- whole-instance and subset queries ---------------------------------------------

    def is_consistent(self) -> bool:
        """Whether the instance satisfies every FD."""
        for layout in self._layouts:
            for subs in layout.group_rhs_subs:
                if len(subs) > 1:
                    return False
        return True

    def is_consistent_subset(self, members: AbstractSet[Fact]) -> bool:
        """Whether the subinstance ``members ⊆ I`` satisfies every FD."""
        ids = self._interner.ids
        fids = [fid for fid in map(ids.get, members) if fid is not None]
        for layout in self._layouts:
            group_of = layout.group_of
            rhs_of = layout.rhs_of
            seen: Dict[int, int] = {}
            for fid in fids:
                group = group_of[fid]
                if group < 0:
                    continue
                sub = rhs_of[fid]
                prior = seen.get(group)
                if prior is None:
                    seen[group] = sub
                elif prior != sub:
                    return False
        return True

    def iter_conflicts(self) -> Iterator[Tuple[FD, Fact, Fact]]:
        """Yield ``(δ, f, g)`` for every δ-conflict ``{f, g}`` once."""
        fact_of = self._interner.fact_of
        for layout in self._layouts:
            fd = layout.fd
            for group, subs in enumerate(layout.group_rhs_subs):
                if len(subs) < 2:
                    continue
                members = layout.group_members[group]
                subgroups = [
                    [members[local] for local in iter_bits(sub)]
                    for sub in subs
                ]
                for i, left_group in enumerate(subgroups):
                    for right_group in subgroups[i + 1 :]:
                        for f in left_group:
                            for g in right_group:
                                yield fd, fact_of(f), fact_of(g)

    # -- per-fact probes (fact need not be interned) -----------------------------------

    def _probe(self, fact: Fact) -> Iterator[Tuple[_FDLayout, int, Tuple]]:
        """Yield ``(layout, group, fact's rhs value)`` per applicable FD."""
        for fd in self._schema.fds_for(fact.relation):
            if fd.is_trivial():
                continue
            layout = self.layout_for(fd)
            group = layout.group_index_by_lhs.get(fact.project(fd.lhs_sorted))
            if group is None:
                continue
            yield layout, group, fact.project(fd.rhs_sorted)

    def conflicts_of(self, fact: Fact) -> FrozenSet[Fact]:
        """All facts of the instance conflicting with ``fact``.

        As with the object index, ``fact`` itself need not belong to
        the instance.
        """
        fact_of = self._interner.fact_of
        result: List[Fact] = []
        for layout, group, rhs_value in self._probe(fact):
            members = layout.group_members[group]
            for sub, sub_value in enumerate(layout.group_rhs_values[group]):
                if sub_value == rhs_value:
                    continue
                result.extend(
                    fact_of(members[local])
                    for local in iter_bits(layout.group_rhs_subs[group][sub])
                )
        return frozenset(result)

    def conflicts_of_in(
        self, fact: Fact, members: AbstractSet[Fact]
    ) -> FrozenSet[Fact]:
        """The conflicts of ``fact`` that belong to ``members ⊆ I``."""
        return frozenset(
            conflicting
            for conflicting in self.conflicts_of(fact)
            if conflicting in members
        )

    def conflicts_with_anything(self, fact: Fact) -> bool:
        """Whether ``fact`` conflicts with at least one indexed fact."""
        for layout, group, rhs_value in self._probe(fact):
            for sub_value in layout.group_rhs_values[group]:
                if sub_value != rhs_value:
                    return True
        return False

    def conflicts_with_anything_in(
        self, fact: Fact, members: AbstractSet[Fact]
    ) -> bool:
        """Whether ``fact`` conflicts with at least one fact of
        ``members ⊆ I``."""
        fact_of = self._interner.fact_of
        for layout, group, rhs_value in self._probe(fact):
            group_members = layout.group_members[group]
            for sub, sub_value in enumerate(layout.group_rhs_values[group]):
                if sub_value == rhs_value:
                    continue
                for local in iter_bits(layout.group_rhs_subs[group][sub]):
                    if fact_of(group_members[local]) in members:
                        return True
        return False

    # -- whole-graph views -------------------------------------------------------------

    def conflict_masks(self) -> List[int]:
        """Per-fact global conflict masks (the conflict graph, columnar).

        ``conflict_masks()[fid]`` has a bit per instance fact
        conflicting with fact ``fid``.  Built lazily — the hot per-
        candidate paths work group-locally and never need it; the
        completion greedy and the improvement search do.
        """
        masks = self._conflict_masks
        if masks is None:
            masks = [0] * len(self._interner)
            for layout in self._layouts:
                for group, subs in enumerate(layout.group_rhs_subs):
                    if len(subs) < 2:
                        continue
                    members = layout.group_members[group]
                    sub_globals = []
                    for sub in subs:
                        sub_global = 0
                        for local in iter_bits(sub):
                            sub_global |= 1 << members[local]
                        sub_globals.append(sub_global)
                    group_global = 0
                    for sub_global in sub_globals:
                        group_global |= sub_global
                    rhs_of = layout.rhs_of
                    for fid in members:
                        masks[fid] |= group_global ^ sub_globals[rhs_of[fid]]
            self._conflict_masks = masks
        return masks

    def adjacency(self) -> Dict[Fact, FrozenSet[Fact]]:
        """The conflict graph as a ``Fact``-level adjacency map, cached.

        Same contract as the object index: isolated facts map to an
        empty set, the key set is exactly the instance.
        """
        adjacency = self._adjacency
        if adjacency is None:
            interner = self._interner
            adjacency = {
                interner.fact_of(fid): interner.frozenset_of(mask)
                for fid, mask in enumerate(self.conflict_masks())
            }
            self._adjacency = adjacency
        return adjacency


class BitsetPriority:
    """The priority relation ``≻`` compiled to id space.

    Per-layout *local* views answer the block-swap and Pareto tests:
    those only ever compare a fact against members of its own lhs-group,
    so ``preferred_local(layout)[fid]`` / ``improvers_local(layout)[fid]``
    are masks over the group's local bit positions — small ints whose
    cost tracks the group size.  Global per-fact masks
    (:meth:`improvers_masks`, :meth:`preferred_masks`) serve the
    improvement search, which reasons across groups.
    """

    __slots__ = (
        "_interner",
        "_priority",
        "_edge_ids",
        "_local_preferred",
        "_local_improvers",
        "_improvers_masks",
        "_preferred_masks",
    )

    def __init__(self, interner: FactInterner, priority: object) -> None:
        self._interner = interner
        self._priority = priority
        id_of = interner.ids
        self._edge_ids: List[Tuple[int, int]] = sorted(
            (id_of[better], id_of[worse])
            for better, worse in priority.edges  # type: ignore[attr-defined]
        )
        self._local_preferred: Dict[FD, List[int]] = {}
        self._local_improvers: Dict[FD, List[int]] = {}
        self._improvers_masks: Optional[List[int]] = None
        self._preferred_masks: Optional[List[int]] = None

    @property
    def edge_ids(self) -> List[Tuple[int, int]]:
        """The priority edges as sorted ``(better_id, worse_id)`` pairs."""
        return self._edge_ids

    def _compile_local(self, layout: _FDLayout) -> None:
        n = len(self._interner)
        preferred = [0] * n
        improvers = [0] * n
        group_of = layout.group_of
        local_of = layout.local_of
        for better, worse in self._edge_ids:
            group = group_of[better]
            if group < 0 or group != group_of[worse]:
                continue
            preferred[better] |= 1 << local_of[worse]
            improvers[worse] |= 1 << local_of[better]
        self._local_preferred[layout.fd] = preferred
        self._local_improvers[layout.fd] = improvers

    def preferred_local(self, layout: _FDLayout) -> List[int]:
        """Per fact: the in-group facts it is preferred over (local bits)."""
        masks = self._local_preferred.get(layout.fd)
        if masks is None:
            self._compile_local(layout)
            masks = self._local_preferred[layout.fd]
        return masks

    def improvers_local(self, layout: _FDLayout) -> List[int]:
        """Per fact: its in-group improvers (local bits)."""
        masks = self._local_improvers.get(layout.fd)
        if masks is None:
            self._compile_local(layout)
            masks = self._local_improvers[layout.fd]
        return masks

    def improvers_masks(self) -> List[int]:
        """Per fact: the global mask of its improvers (``g ≻ fact``)."""
        masks = self._improvers_masks
        if masks is None:
            masks = [0] * len(self._interner)
            for better, worse in self._edge_ids:
                masks[worse] |= 1 << better
            self._improvers_masks = masks
        return masks

    def preferred_masks(self) -> List[int]:
        """Per fact: the global mask of facts it is preferred over."""
        masks = self._preferred_masks
        if masks is None:
            masks = [0] * len(self._interner)
            for better, worse in self._edge_ids:
                masks[better] |= 1 << worse
            self._preferred_masks = masks
        return masks

    def prefers_ids(self, better: int, worse: int) -> bool:
        """Whether the fact with id ``better`` is preferred to ``worse``."""
        return bool(self.preferred_masks()[better] >> worse & 1)


class BitsetCandidate:
    """One candidate repair ``J``, viewed through the columnar layouts.

    Construction is a single O(|J|) pass; the per-layout *kept*
    structures — for each lhs-group, the local mask of candidate facts
    and the rhs block they sit in — are extracted once per layout on
    first use and shared by the precheck, the Pareto search, and the
    block-swap scan of one check call.
    """

    __slots__ = ("core", "fids", "in_cand", "stray_facts", "_kept")

    def __init__(self, core: "BitsetCore", facts: Iterable[Fact]) -> None:
        self.core = core
        ids = core.interner.ids
        fids: List[int] = []
        stray: List[Fact] = []
        for fact in facts:
            fid = ids.get(fact)
            if fid is None:
                stray.append(fact)
            else:
                fids.append(fid)
        fids.sort()
        self.fids = fids
        self.stray_facts = stray
        in_cand = bytearray(len(core.interner))
        for fid in fids:
            in_cand[fid] = 1
        self.in_cand = in_cand
        self._kept: Dict[FD, Tuple[List[int], List[int], Optional[int]]] = {}

    def kept_for(
        self, layout: _FDLayout
    ) -> Tuple[List[int], List[int], Optional[int]]:
        """``(kept, kept_rhs, clash)`` for one layout, cached.

        ``kept[g]`` is the local mask of candidate facts in group ``g``;
        ``kept_rhs[g]`` the rhs block they share (-1 when the group has
        no candidate facts); ``clash`` a witness group holding candidate
        facts from *two* rhs blocks (i.e. the candidate is inconsistent
        w.r.t. this FD), or None.
        """
        cached = self._kept.get(layout.fd)
        if cached is not None:
            return cached
        kept = [0] * layout.group_count
        kept_rhs = [-1] * layout.group_count
        clash: Optional[int] = None
        group_of = layout.group_of
        local_of = layout.local_of
        rhs_of = layout.rhs_of
        for fid in self.fids:
            group = group_of[fid]
            if group < 0:
                continue
            sub = rhs_of[fid]
            prior = kept_rhs[group]
            if prior < 0:
                kept_rhs[group] = sub
            elif prior != sub and clash is None:
                clash = group
            kept[group] |= 1 << local_of[fid]
        result = (kept, kept_rhs, clash)
        self._kept[layout.fd] = result
        return result

    def mask(self) -> int:
        """The candidate as a global bitmask."""
        return self.core.interner.mask_of(
            self.core.interner.fact_of(fid) for fid in self.fids
        )

    def outsider_ids(self) -> Iterator[int]:
        """Ids of instance facts outside the candidate, ascending."""
        in_cand = self.in_cand
        for fid in range(len(in_cand)):
            if not in_cand[fid]:
                yield fid


class BitsetCore:
    """The bundled bitset substrate of one prioritizing instance.

    Cached on :attr:`PrioritizingInstance.bitset_core
    <repro.core.priority.PrioritizingInstance.bitset_core>`; every
    bitset-backend check of that instance shares the interner, the
    block-partition layouts, and the compiled priority.
    """

    __slots__ = ("interner", "index", "priority")

    def __init__(
        self,
        schema: Schema,
        instance: Instance,
        priority: object,
        interner: Optional[FactInterner] = None,
    ) -> None:
        self.interner = interner if interner is not None else FactInterner(
            instance
        )
        self.index = BitsetConflictIndex(schema, instance, self.interner)
        self.priority = BitsetPriority(self.interner, priority)

    @property
    def layouts(self) -> List[_FDLayout]:
        """The schema FDs' block partitions."""
        return self.index.layouts

    def layout_for(self, fd: FD) -> _FDLayout:
        """The (cached) block partition of an arbitrary witness FD."""
        return self.index.layout_for(fd)

    def candidate(self, facts: Iterable[Fact]) -> BitsetCandidate:
        """A columnar view of one candidate repair."""
        return BitsetCandidate(self, facts)
