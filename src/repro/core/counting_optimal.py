"""Polynomial counting of optimal repairs for single-FD schemas.

The paper's concluding remarks pose the problem of determining the
number of globally-optimal repairs.  This module works that problem out
for the schemas covered by Theorem 3.1's *first* tractability clause —
every ``Δ|R`` equivalent to a single FD — where the answer turns out to
be computable in polynomial time.  (This is an extension beyond the
published text; the derivation is below and the implementation is
cross-validated against exhaustive enumeration by the test suite.)

Derivation.  Fix one relation with ``Δ|R ≡ {A → B}`` and a classical
priority.  The conflict graph of ``I`` is a disjoint union of
*FD-blocks* (one per ``A``-value), each a complete multipartite graph
whose parts are the ``B``-value *groups*; a repair picks one full group
per block.  Because priorities relate only conflicting facts, improvers
stay within the block, so global improvements decompose per block:

    a repair is globally optimal  ⟺  in every block, no other group
    ``g'`` *dominates* the chosen group ``g`` (dominates = every fact
    of ``g`` has an improver in ``g'``).

Hence the number of globally-optimal repairs is the product, over
blocks, of the number of *eligible* (undominated) groups.  The same
argument gives Pareto optimality with single-fact domination (some one
fact of ``g'`` improves every fact of ``g``), and completion-optimal
counts follow by testing each group's block-local greedy reachability
with the existing polynomial checker.

Multi-relation schemas multiply per-relation counts (Proposition 3.5).
Relations not equivalent to a single FD fall back to enumeration.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.core.checking import check_globally_optimal, check_pareto_optimal
from repro.core.classification import equivalent_single_fd
from repro.core.fact import Fact
from repro.core.instance import Instance
from repro.core.priority import PrioritizingInstance
from repro.core.repairs import enumerate_repairs

from repro.exceptions import UsageError
__all__ = [
    "count_globally_optimal_repairs",
    "count_pareto_optimal_repairs",
    "count_optimal_repairs_with_fact",
    "eligible_groups_per_block",
    "fast_fact_survival_census",
    "enumerate_optimal_repairs_single_fd",
    "count_completion_optimal_repairs_single_fd",
]

_Block = Dict[Tuple, List[Fact]]


def _blocks_of_relation(
    prioritizing: PrioritizingInstance, relation_name: str, witness
) -> Dict[Tuple, _Block]:
    """``{A-value: {B-value: facts}}`` for one relation."""
    lhs_sorted = witness.lhs_sorted
    rhs_sorted = witness.rhs_sorted
    blocks: Dict[Tuple, _Block] = {}
    for fact in prioritizing.instance.relation(relation_name):
        lhs_value = fact.project(lhs_sorted)
        rhs_value = fact.project(rhs_sorted)
        blocks.setdefault(lhs_value, {}).setdefault(rhs_value, []).append(
            fact
        )
    return blocks


def _group_dominates_globally(
    prioritizing: PrioritizingInstance,
    dominator: List[Fact],
    dominated: List[Fact],
) -> bool:
    """Whether every fact of ``dominated`` has an improver in
    ``dominator``."""
    priority = prioritizing.priority
    dominator_set = set(dominator)
    return all(
        priority.improvers_of(fact) & dominator_set for fact in dominated
    )


def _group_dominates_pareto(
    prioritizing: PrioritizingInstance,
    dominator: List[Fact],
    dominated: List[Fact],
) -> bool:
    """Whether some single fact of ``dominator`` improves every fact of
    ``dominated``."""
    priority = prioritizing.priority
    dominated_set = set(dominated)
    return any(
        dominated_set <= priority.preferred_over(witness)
        for witness in dominator
    )


def eligible_groups_per_block(
    prioritizing: PrioritizingInstance,
    relation_name: str,
    semantics: str = "global",
) -> Optional[List[int]]:
    """Per-block counts of optimal-eligible groups, or None if ``Δ|R``
    is not equivalent to a single FD.

    ``semantics`` is ``"global"`` or ``"pareto"``.
    """
    witness = equivalent_single_fd(
        prioritizing.schema.fds_for(relation_name)
    )
    if witness is None:
        return None
    if witness.is_trivial():
        facts = prioritizing.instance.relation(relation_name)
        return [1] if facts else []
    dominates = (
        _group_dominates_globally
        if semantics == "global"
        else _group_dominates_pareto
    )
    if semantics not in ("global", "pareto"):
        raise UsageError(f"unsupported semantics {semantics!r}")
    counts: List[int] = []
    for block in _blocks_of_relation(
        prioritizing, relation_name, witness
    ).values():
        groups = list(block.values())
        eligible = sum(
            1
            for chosen in groups
            if not any(
                dominates(prioritizing, other, chosen)
                for other in groups
                if other is not chosen
            )
        )
        counts.append(eligible)
    return counts


def _count_for_relation(
    prioritizing: PrioritizingInstance,
    relation_name: str,
    semantics: str,
) -> int:
    counts = eligible_groups_per_block(
        prioritizing, relation_name, semantics
    )
    if counts is not None:
        product = 1
        for count in counts:
            product *= count
        return product
    # Fallback: enumerate this relation's repairs and check each.
    restricted = prioritizing.restrict_to_relation(relation_name)
    checker = (
        check_globally_optimal
        if semantics == "global"
        else check_pareto_optimal
    )
    return sum(
        1
        for repair in enumerate_repairs(
            restricted.schema, restricted.instance
        )
        if checker(restricted, repair).is_optimal
    )


def _count_optimal(
    prioritizing: PrioritizingInstance, semantics: str
) -> int:
    if prioritizing.is_ccp:
        raise UsageError(
            "the per-block counting argument needs conflict-only "
            "priorities; use repro.core.counting.count_optimal_repairs "
            "for ccp instances"
        )
    total = 1
    for relation in prioritizing.schema.signature:
        total *= _count_for_relation(prioritizing, relation.name, semantics)
    return total


def count_globally_optimal_repairs(
    prioritizing: PrioritizingInstance,
) -> int:
    """The number of globally-optimal repairs.

    Polynomial whenever every ``Δ|R`` is equivalent to a single FD; the
    remaining relations fall back to per-relation enumeration
    (Proposition 3.5 keeps the relations independent either way).

    Examples
    --------
    >>> from repro.core import Fact, PriorityRelation, Schema
    >>> schema = Schema.single_relation(["1 -> 2"], arity=2)
    >>> new, old = Fact("R", (1, "new")), Fact("R", (1, "old"))
    >>> pri = PrioritizingInstance(
    ...     schema, schema.instance([new, old]),
    ...     PriorityRelation([(new, old)]),
    ... )
    >>> count_globally_optimal_repairs(pri)
    1
    """
    return _count_optimal(prioritizing, "global")


def count_pareto_optimal_repairs(
    prioritizing: PrioritizingInstance,
) -> int:
    """The number of Pareto-optimal repairs (same structure, with
    single-witness domination per block)."""
    return _count_optimal(prioritizing, "pareto")


def enumerate_optimal_repairs_single_fd(
    prioritizing: PrioritizingInstance,
    semantics: str = "global",
):
    """Yield every optimal repair, with polynomial delay, for schemas
    whose every ``Δ|R`` is equivalent to a single FD.

    The optimal repairs are exactly the cross products of one
    *eligible* group per FD-block (see the module docstring), so they
    can be produced one after another without ever materializing the
    full (possibly astronomical) repair set.  Raises
    :class:`ValueError` when some relation lacks a single-FD witness or
    the instance is ccp (use the enumeration-based
    :func:`repro.cqa.preferred_repairs` there).

    Examples
    --------
    >>> from repro.core import Fact, PriorityRelation, Schema
    >>> schema = Schema.single_relation(["1 -> 2"], arity=2)
    >>> new, old = Fact("R", (1, "new")), Fact("R", (1, "old"))
    >>> pri = PrioritizingInstance(
    ...     schema, schema.instance([new, old]),
    ...     PriorityRelation([(new, old)]),
    ... )
    >>> [sorted(map(str, r)) for r in
    ...  enumerate_optimal_repairs_single_fd(pri)]
    [["R(1, 'new')"]]
    """
    if prioritizing.is_ccp:
        raise UsageError(
            "per-block enumeration needs conflict-only priorities"
        )
    if semantics not in ("global", "pareto"):
        raise UsageError(f"unsupported semantics {semantics!r}")
    dominates = (
        _group_dominates_globally
        if semantics == "global"
        else _group_dominates_pareto
    )
    block_choices: List[List[List[Fact]]] = []
    for relation in prioritizing.schema.signature:
        witness = equivalent_single_fd(
            prioritizing.schema.fds_for(relation.name)
        )
        if witness is None:
            raise UsageError(
                f"Δ|{relation.name} is not equivalent to a single FD; "
                f"use enumeration-based preferred_repairs instead"
            )
        if witness.is_trivial():
            facts = list(prioritizing.instance.relation(relation.name))
            if facts:
                block_choices.append([facts])
            continue
        for block in _blocks_of_relation(
            prioritizing, relation.name, witness
        ).values():
            groups = list(block.values())
            eligible = [
                chosen
                for chosen in groups
                if not any(
                    dominates(prioritizing, other, chosen)
                    for other in groups
                    if other is not chosen
                )
            ]
            block_choices.append(eligible)

    def product(level: int, chosen: List[Fact]) -> Iterator[Instance]:
        if level == len(block_choices):
            yield prioritizing.instance.subinstance(chosen)
            return
        for group in block_choices[level]:
            yield from product(level + 1, chosen + group)

    yield from product(0, [])


def count_completion_optimal_repairs_single_fd(
    prioritizing: PrioritizingInstance,
) -> int:
    """The number of completion-optimal repairs for single-FD schemas.

    Conflicts and (classical) priorities both stay within FD-blocks, so
    the greedy procedure factorizes across blocks and the count is the
    product of the per-block greedy-reachable outcome counts.  Each
    block's outcomes are found by exhaustive greedy branching *within
    the block* — exponential in the block size in the worst case, but
    polynomial in the number of blocks; with bounded block sizes (the
    common case) the whole computation is polynomial.

    Raises :class:`ValueError` when some relation is not equivalent to
    a single FD or the instance is ccp.
    """
    if prioritizing.is_ccp:
        raise UsageError(
            "completion-optimal semantics is defined for conflict-only "
            "priorities"
        )
    from repro.core.checking.completion import (
        enumerate_completion_optimal_repairs,
    )
    from repro.core.priority import PrioritizingInstance as _PI

    total = 1
    for relation in prioritizing.schema.signature:
        witness = equivalent_single_fd(
            prioritizing.schema.fds_for(relation.name)
        )
        if witness is None:
            raise UsageError(
                f"Δ|{relation.name} is not equivalent to a single FD"
            )
        if witness.is_trivial():
            continue  # the whole relation is kept; one outcome
        restricted_schema = prioritizing.schema.restrict(relation.name)
        for block in _blocks_of_relation(
            prioritizing, relation.name, witness
        ).values():
            block_facts = [
                fact for group in block.values() for fact in group
            ]
            block_instance = prioritizing.instance.restrict_to_relation(
                relation.name
            ).subinstance(block_facts)
            block_prioritizing = _PI(
                restricted_schema,
                block_instance,
                prioritizing.priority.restrict_to(block_facts),
                ccp=False,
            )
            total *= sum(
                1
                for _ in enumerate_completion_optimal_repairs(
                    block_prioritizing
                )
            )
    return total


def count_optimal_repairs_with_fact(
    prioritizing: PrioritizingInstance,
    fact: Fact,
    semantics: str = "global",
) -> Optional[Tuple[int, int]]:
    """``(optimal repairs containing fact, total optimal repairs)``.

    The counting companion of :func:`fast_fact_survival_census` and the
    polynomial engine behind single-atom query-entailment counting
    (:func:`repro.compute.count_repairs_entailing`): an optimal repair
    contains ``fact`` iff its block picks the fact's whole rhs-group, so
    the entailing count is the fact's group eligibility times the
    product of eligible-group counts over every *other* block.

    Returns None when some relation lacks a single-FD witness or the
    instance is ccp (callers fall back to enumeration).  ``semantics``
    is ``"global"`` or ``"pareto"``.
    """
    if prioritizing.is_ccp:
        return None
    if semantics not in ("global", "pareto"):
        raise UsageError(f"unsupported semantics {semantics!r}")
    dominates = (
        _group_dominates_globally
        if semantics == "global"
        else _group_dominates_pareto
    )
    present = fact in prioritizing.instance.facts
    total = 1
    containing = 1
    for relation in prioritizing.schema.signature:
        witness = equivalent_single_fd(
            prioritizing.schema.fds_for(relation.name)
        )
        if witness is None:
            return None
        if witness.is_trivial():
            continue  # the whole relation belongs to every repair
        fact_in_relation = present and fact.relation == relation.name
        for lhs_value, block in _blocks_of_relation(
            prioritizing, relation.name, witness
        ).items():
            groups = list(block.values())
            eligible_flags = [
                not any(
                    dominates(prioritizing, other, chosen)
                    for other in groups
                    if other is not chosen
                )
                for chosen in groups
            ]
            eligible_count = sum(eligible_flags)
            total *= eligible_count
            if (
                fact_in_relation
                and fact.project(witness.lhs_sorted) == lhs_value
            ):
                own_group = block[fact.project(witness.rhs_sorted)]
                own_eligible = eligible_flags[
                    next(
                        position
                        for position, group in enumerate(groups)
                        if group is own_group
                    )
                ]
                containing *= 1 if own_eligible else 0
            else:
                containing *= eligible_count
    if not present:
        containing = 0
    return (containing, total)


def fast_fact_survival_census(
    prioritizing: PrioritizingInstance,
    semantics: str = "global",
) -> Optional[Dict[str, frozenset]]:
    """Polynomial fact-survival census for single-FD schemas, or None.

    The atomic case of preferred consistent query answering (the
    paper's concluding direction), answered in polynomial time when
    every ``Δ|R`` is equivalent to a single FD: a repair contains a
    fact iff it picks the fact's whole rhs-group in its block, so

    * a fact is **certain** (in every optimal repair) iff its group is
      the *only* eligible group of its block,
    * **possible** iff its group is eligible,
    * **doomed** otherwise.

    Returns the same ``{"certain", "possible", "doomed"}`` partition as
    :func:`repro.cqa.membership.fact_survival_census`, or None when
    some relation is not equivalent to a single FD (callers then fall
    back to enumeration).  ``semantics`` is ``"global"`` or
    ``"pareto"``.
    """
    if prioritizing.is_ccp:
        return None
    if semantics not in ("global", "pareto"):
        raise UsageError(f"unsupported semantics {semantics!r}")
    dominates = (
        _group_dominates_globally
        if semantics == "global"
        else _group_dominates_pareto
    )
    certain: Set[Fact] = set()
    possible: Set[Fact] = set()
    doomed: Set[Fact] = set()
    for relation in prioritizing.schema.signature:
        witness = equivalent_single_fd(
            prioritizing.schema.fds_for(relation.name)
        )
        if witness is None:
            return None
        if witness.is_trivial():
            certain.update(prioritizing.instance.relation(relation.name))
            continue
        for block in _blocks_of_relation(
            prioritizing, relation.name, witness
        ).values():
            groups = list(block.values())
            eligible_flags = [
                not any(
                    dominates(prioritizing, other, chosen)
                    for other in groups
                    if other is not chosen
                )
                for chosen in groups
            ]
            eligible_count = sum(eligible_flags)
            for group, eligible in zip(groups, eligible_flags):
                if eligible and eligible_count == 1:
                    certain.update(group)
                elif eligible:
                    possible.update(group)
                else:
                    doomed.update(group)
    return {
        "certain": frozenset(certain),
        "possible": frozenset(possible),
        "doomed": frozenset(doomed),
    }
