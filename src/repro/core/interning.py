"""Dense integer ids for the facts of one instance.

The columnar bitset backend (:mod:`repro.core.bitset_index`) represents
every fact set as a stdlib ``int`` bitmask and every per-fact attribute
as a flat list indexed by fact id.  :class:`FactInterner` is the bridge:
it assigns each fact of an :class:`~repro.core.instance.Instance` a
dense id in ``[0, n)`` and converts both ways.

Id assignment is **deterministic**: facts are numbered in ``str``-sorted
order, the same total order the rest of the codebase uses for
deterministic iteration (``sorted(..., key=str)``), so ids — and hence
every mask and every id-ordered scan — are reproducible across runs,
processes, and ``PYTHONHASHSEED`` values.

Bit-twiddling helpers shared by the backend live here too:
:func:`iter_bits` walks the set bits of a mask lowest-first via
``mask & -mask`` extraction, and :func:`popcount` counts them (through
``bin(...)``, which keeps the module Python-3.9-compatible — CPython's
``int.bit_count`` only landed in 3.10).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Tuple

from repro.core.fact import Fact
from repro.core.instance import Instance

__all__ = ["FactInterner", "iter_bits", "popcount"]


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the positions of the set bits of ``mask``, lowest first."""
    while mask:
        low = mask & -mask
        yield low.bit_length() - 1
        mask ^= low


def popcount(mask: int) -> int:
    """The number of set bits of a non-negative ``mask``."""
    return bin(mask).count("1")


class FactInterner:
    """A bijection between the facts of one instance and ``[0, n)``.

    Examples
    --------
    >>> from repro.core import Schema, Fact
    >>> schema = Schema.single_relation(["1 -> 2"], arity=2)
    >>> inst = schema.instance([Fact("R", (1, "a")), Fact("R", (1, "b"))])
    >>> interner = FactInterner(inst)
    >>> interner.fact_of(interner.id_of(Fact("R", (1, "b"))))
    Fact(relation='R', values=(1, 'b'))
    >>> interner.mask_of(inst.facts) == interner.full_mask
    True
    """

    __slots__ = ("_facts", "_ids", "_nbytes")

    def __init__(self, instance: Instance) -> None:
        facts = sorted(instance.facts, key=str)
        self._facts: Tuple[Fact, ...] = tuple(facts)
        self._ids: Dict[Fact, int] = {
            fact: fid for fid, fact in enumerate(facts)
        }
        self._nbytes = (len(facts) + 7) // 8

    @classmethod
    def _from_sorted(cls, facts: Iterable[Fact]) -> "FactInterner":
        """Trusted constructor: ``facts`` already distinct and in
        ``str``-sorted order.

        The streaming loader feeds facts chunk by chunk straight out of
        its sqlite backing store, whose scan order is exactly the
        ``str`` sort this class would otherwise re-establish; skipping
        the redundant O(n log n) pass (and the intermediate list) keeps
        chunked interner construction single-scan.  Callers must
        guarantee the order — the ids assigned here must equal the ones
        ``FactInterner(instance)`` would assign, and every bitset-
        backend mask depends on that.
        """
        interner = cls.__new__(cls)
        interner._facts = tuple(facts)
        interner._ids = {
            fact: fid for fid, fact in enumerate(interner._facts)
        }
        interner._nbytes = (len(interner._facts) + 7) // 8
        return interner

    def __len__(self) -> int:
        return len(self._facts)

    def __contains__(self, fact: Fact) -> bool:
        return fact in self._ids

    @property
    def facts(self) -> Tuple[Fact, ...]:
        """All interned facts, in id order."""
        return self._facts

    @property
    def ids(self) -> Dict[Fact, int]:
        """The fact → id mapping (treat as read-only)."""
        return self._ids

    @property
    def full_mask(self) -> int:
        """The mask with every interned fact's bit set."""
        return (1 << len(self._facts)) - 1

    def id_of(self, fact: Fact) -> int:
        """The dense id of ``fact`` (raises ``KeyError`` if unknown)."""
        return self._ids[fact]

    def fact_of(self, fid: int) -> Fact:
        """The fact with id ``fid``."""
        return self._facts[fid]

    def mask_of(self, facts: Iterable[Fact]) -> int:
        """The bitmask of an iterable of interned facts.

        Bits are accumulated in a ``bytearray`` and converted once —
        O(n) instead of the O(n²/64) a per-fact big-int OR would cost.
        """
        buffer = bytearray(self._nbytes)
        ids = self._ids
        for fact in facts:
            fid = ids[fact]
            buffer[fid >> 3] |= 1 << (fid & 7)
        return int.from_bytes(buffer, "little")

    def facts_of(self, mask: int) -> List[Fact]:
        """The facts whose bits are set in ``mask``, in id order."""
        facts = self._facts
        return [facts[fid] for fid in iter_bits(mask)]

    def frozenset_of(self, mask: int) -> FrozenSet[Fact]:
        """The facts whose bits are set in ``mask``, as a frozenset."""
        return frozenset(self.facts_of(mask))

    def __repr__(self) -> str:
        return f"FactInterner({len(self._facts)} facts)"
