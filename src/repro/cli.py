"""Command-line interface for the :mod:`repro` library.

Subcommands
-----------
``repro classify "R:3; 1 -> 2; 2 -> 3"``
    Classify a schema under Theorem 3.1 and Theorem 7.1 and print both
    verdicts with witnesses.
``repro demo``
    Replay the paper's running example end to end.
``repro gadget --nodes 4 --edges 0,1 1,2 2,3 3,0``
    Build the Lemma 5.2 gadget for a graph, run the checker, and report
    whether the encoded Hamiltonian-cycle answer matches Held–Karp.
``repro hard-schemas``
    Print the classification of the paper's ten anchor schemas.
``repro clean problem.json --out cleaned.json``
    Load a JSON cleaning problem (see :mod:`repro.io`), produce a
    preferred repair, certify it, and optionally write the result.
``repro repair problem.json --semantics pareto --out repair.json``
    Construct an optimal repair directly through
    :func:`repro.compute.compute_optimal_repair`: exact greedy
    construction on the tractable side, the anytime improvement climb
    (``--budget`` / ``--timeout``) on the coNP-hard side, certified by
    the corresponding checker before printing.
``repro explain "R:3; 1 -> 2; 2 -> 3"``
    Prose classification of a schema under both theorems.
``repro stats problem.json``
    Profile a problem's conflict and priority structure.
``repro serve-batch jobs.json --out results.jsonl --workers 4``
    Run a batch of repair-check jobs through the
    :class:`~repro.service.RepairService` (worker pool, result cache,
    budgeted degradation on coNP-hard schemas) and write JSONL results
    plus a metrics summary.  Job files are JSON or CSV (see
    :mod:`repro.service.batch_io` for the formats).  ``--journal
    run.wal`` appends every finished deterministic result to a
    crash-safe write-ahead journal; after an interruption (Ctrl-C or a
    hard kill), re-running with ``--resume`` replays the journaled
    results and recomputes only the rest.  ``--chaos
    "seed=3,transient=0.3,crash=0.1"`` injects a deterministic fault
    schedule (see :mod:`repro.service.faults`) for resilience drills.
``repro serve --socket /tmp/repro.sock`` / ``repro serve --port 7464``
    Run the persistent async repair-checking daemon: one warm
    :class:`~repro.service.RepairService` behind a unix or TCP socket
    speaking newline-delimited JSON (``check``, ``repair``, ``count``,
    ``classify``, ``ping``, ``stats``, ``drain`` — see
    :mod:`repro.server.protocol`).
    Admission control rejects work beyond ``--max-inflight`` +
    ``--queue-limit`` with explicit ``overloaded`` errors; SIGINT or
    SIGTERM drains gracefully (in-flight checks finish, the
    ``--journal`` is flushed, a final metrics snapshot is printed).
``repro workload generate|inject|check|repair|e2e``
    The TPC-H-scale workload pipeline (:mod:`repro.workloads.tpch`,
    :mod:`repro.workloads.injection`, :mod:`repro.engine.streaming`):
    ``generate`` writes clean ``.tbl`` tables at a scale factor and
    seed; ``inject`` additionally corrupts them at a seeded rate and
    writes the conflict manifest; ``check`` streams a written workload
    through the sqlite loader and cross-checks the discovered conflicts
    against the manifest; ``repair`` computes and certifies an optimal
    repair of the conflict kernel under the manifest's two-tier
    priority; ``e2e`` runs the whole pipeline in one pass without
    touching disk for the tables.
``repro lint --format json src``
    Run the project-invariant AST linter (rules RL001-RL008; see
    :mod:`repro.devtools.lint` and ``docs/lint_rules.md``); all
    arguments are forwarded to ``python -m repro.devtools.lint``.

Schema syntax: ``<Rel>:<arity>[, <Rel>:<arity> ...]; <fd>; <fd>; ...``
with FDs in the paper's shorthand, e.g. ``R: {1,2} -> 3``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.core.classification import classify_ccp_schema, classify_schema

from repro.exceptions import UsageError
from repro.io import parse_schema_spec

__all__ = ["main", "parse_schema_spec"]


def _cmd_classify(args: argparse.Namespace) -> int:
    schema = parse_schema_spec(args.schema)
    print(classify_schema(schema).describe())
    print()
    print(classify_ccp_schema(schema).describe())
    return 0


def _cmd_demo(_: argparse.Namespace) -> int:
    from repro.core.checking import check_globally_optimal, check_pareto_optimal
    from repro.workloads.scenarios import running_example

    example = running_example()
    prioritizing = example.prioritizing
    print("Running example (Figure 1):", prioritizing)
    print(classify_schema(example.schema).describe())
    for name, candidate in [
        ("J1", example.j1),
        ("J2", example.j2),
        ("J3", example.j3),
        ("J4", example.j4),
    ]:
        globally = check_globally_optimal(prioritizing, candidate)
        pareto = check_pareto_optimal(prioritizing, candidate)
        print(
            f"{name}: globally-optimal={globally.is_optimal} "
            f"pareto-optimal={pareto.is_optimal}"
        )
    return 0


def _cmd_gadget(args: argparse.Namespace) -> int:
    from repro.core.checking import check_globally_optimal_search
    from repro.hardness.hamiltonian import UndirectedGraph, has_hamiltonian_cycle
    from repro.hardness.hc_reduction import build_hamiltonian_gadget

    edges = []
    for token in args.edges or []:
        u, _, v = token.partition(",")
        edges.append((int(u), int(v)))
    graph = UndirectedGraph(args.nodes, edges)
    gadget = build_hamiltonian_gadget(graph)
    expected = has_hamiltonian_cycle(graph)
    result = check_globally_optimal_search(
        gadget.prioritizing, gadget.repair
    )
    print(f"graph: {args.nodes} nodes, {len(edges)} edges")
    print(f"gadget instance: {len(gadget.prioritizing.instance)} facts")
    print(f"Held-Karp says Hamiltonian: {expected}")
    print(f"checker says J globally-optimal: {result.is_optimal}")
    agree = expected != result.is_optimal
    print("reduction agrees:", agree)
    if result.improvement is not None:
        print(
            "extracted cycle:",
            gadget.cycle_from_improvement(result.improvement),
        )
    return 0 if agree else 1


def _cmd_hard_schemas(_: argparse.Namespace) -> int:
    from repro.hardness.schemas import CCP_HARD_SCHEMAS, HARD_SCHEMAS

    print("Theorem 3.1 anchors (Example 3.4):")
    for index, schema in HARD_SCHEMAS.items():
        verdict = classify_schema(schema)
        print(f"  S{index}: tractable={verdict.is_tractable}")
    print("Theorem 7.1 anchors (Section 7.3):")
    for letter, schema in CCP_HARD_SCHEMAS.items():
        verdict = classify_ccp_schema(schema)
        print(f"  S{letter}: ccp-tractable={verdict.is_tractable}")
    return 0


def _cmd_clean(args: argparse.Namespace) -> int:
    from repro.core.checking import check_globally_optimal
    from repro.engine import RepairManager
    from repro.io import (
        instance_to_list,
        load_prioritizing_instance,
    )

    prioritizing = load_prioritizing_instance(args.problem)
    manager = RepairManager(prioritizing)
    cleaned = manager.clean(seed=args.seed)
    result = check_globally_optimal(prioritizing, cleaned)
    print(
        f"loaded {len(prioritizing.instance)} facts, "
        f"{len(prioritizing.priority)} priorities"
    )
    print(f"cleaned instance keeps {len(cleaned)} facts")
    print(f"certified globally-optimal: {result.is_optimal} "
          f"(algorithm: {result.method})")
    if args.out:
        import json

        Path(args.out).write_text(
            json.dumps(instance_to_list(cleaned), indent=2)
        )
        print(f"wrote {args.out}")
    return 0 if result.is_optimal else 1


def _cmd_repair(args: argparse.Namespace) -> int:
    import json
    import random

    from repro.compute import compute_optimal_repair
    from repro.core.checking import (
        check_completion_optimal,
        check_globally_optimal,
        check_pareto_optimal,
    )
    from repro.exceptions import ReproError
    from repro.io import instance_to_list, load_prioritizing_instance

    prioritizing = load_prioritizing_instance(args.problem)
    try:
        computed = compute_optimal_repair(
            prioritizing,
            semantics=args.semantics,
            rng=random.Random(args.seed),
            node_budget=args.budget,
            deadline=None,
        )
    except ReproError as exc:
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2
    print(
        f"loaded {len(prioritizing.instance)} facts, "
        f"{len(prioritizing.priority)} priorities "
        f"(ccp={prioritizing.is_ccp})"
    )
    print(
        f"computed {args.semantics}-optimal repair: status={computed.status} "
        f"method={computed.method} rounds={computed.rounds}"
    )
    if computed.reason:
        print(f"  {computed.reason}")
    print(f"repair keeps {len(computed.repair)} facts")
    certified = None
    if computed.status == "ok":
        checker = {
            "global": check_globally_optimal,
            "pareto": check_pareto_optimal,
            "completion": check_completion_optimal,
        }[args.semantics]
        try:
            certified = checker(prioritizing, computed.repair).is_optimal
        except UsageError as exc:
            print(f"certification unavailable: {exc}")
        else:
            print(f"certified {args.semantics}-optimal: {certified}")
    if args.out:
        Path(args.out).write_text(
            json.dumps(instance_to_list(computed.repair), indent=2)
        )
        print(f"wrote {args.out}")
    if computed.status != "ok":
        return 2
    return 0 if certified in (True, None) else 1


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.explain import (
        explain_ccp_classification,
        explain_classification,
    )

    schema = parse_schema_spec(args.schema)
    print(explain_classification(schema))
    print()
    print(explain_ccp_classification(schema))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.analysis import instance_statistics, priority_statistics
    from repro.io import load_prioritizing_instance

    prioritizing = load_prioritizing_instance(args.problem)
    stats = instance_statistics(prioritizing.schema, prioritizing.instance)
    pstats = priority_statistics(prioritizing)
    print(f"facts:                 {stats.fact_count}")
    print(f"conflicting pairs:     {stats.conflict_count}")
    print(f"conflict rate:         {stats.conflict_rate:.2f}")
    print(f"conflict components:   {stats.component_count} "
          f"(largest: {stats.largest_component})")
    print(f"priority edges:        {pstats['edge_count']:.0f}")
    print(f"orientation rate:      {pstats['orientation_rate']:.2f}")
    print(f"cross-conflict edges:  {pstats['cross_conflict_edges']:.0f}")
    return 0


def _cmd_serve_batch(args: argparse.Namespace) -> int:
    import contextlib
    import signal
    import threading

    from repro.io import load_prioritizing_instance
    from repro.service import (
        JournalWriter,
        RepairService,
        ServiceConfig,
        load_batch_file,
        parse_fault_spec,
        read_journal,
        write_metrics_json,
        write_results_jsonl,
    )

    if args.resume and not args.journal:
        raise UsageError("--resume requires --journal")

    prioritizing = None
    if args.problem:
        prioritizing = load_prioritizing_instance(args.problem)
    prioritizing, jobs = load_batch_file(args.jobs, prioritizing)

    runner = None
    if args.chaos:
        from repro.service import FaultyRunner

        runner = FaultyRunner(plan=parse_fault_spec(args.chaos))

    completed = None
    if args.resume:
        completed, corrupt = read_journal(args.journal)
        print(
            f"resume: replaying {len(completed)} journaled result(s) "
            f"from {args.journal}"
            + (f" ({corrupt} corrupt/torn line(s) skipped)" if corrupt else "")
        )

    cancel = threading.Event()

    def _request_shutdown(signum, _frame):
        # First signal: drain gracefully (unstarted jobs become error
        # results, the journal keeps every finished one).  A second
        # signal falls through to the default handler.
        cancel.set()
        signal.signal(signum, signal.SIG_DFL)
        print(
            f"received {signal.Signals(signum).name}: finishing in-flight "
            "jobs and flushing the journal (signal again to force quit)",
            file=sys.stderr,
        )

    with contextlib.ExitStack() as stack:
        journal = None
        if args.journal:
            journal = stack.enter_context(JournalWriter(args.journal))
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous = signal.signal(signum, _request_shutdown)
            stack.callback(signal.signal, signum, previous)
        service = RepairService(
            ServiceConfig(
                workers=args.workers,
                executor=args.executor,
                cache_size=args.cache_size,
                default_timeout=args.timeout,
                default_node_budget=args.budget,
                max_pool_restarts=args.max_pool_restarts,
                breaker_threshold=args.breaker_threshold,
                breaker_reset_seconds=args.breaker_reset,
                core_backend=args.core_backend,
            ),
            runner=runner,
            result_sink=journal.append if journal is not None else None,
            cancel=cancel,
        )
        report = service.run_batch(jobs, completed=completed)
    counts = report.status_counts
    print(
        f"ran {len(report.results)} job(s) on {args.workers} "
        f"{args.executor} worker(s): "
        + ", ".join(
            f"{counts.get(status, 0)} {status}"
            for status in ("ok", "degraded", "timeout", "error")
        )
    )
    print(
        f"cache: {report.cache_hits} result(s) served from cache "
        f"(hit rate {report.cache_stats['hit_rate']:.2f} over the "
        f"service lifetime)"
    )
    counters = report.metrics.get("counters", {})
    print(
        "resilience: "
        f"{counters.get('journal.replayed', 0)} replayed, "
        f"{counters.get('journal.appended', 0)} journaled, "
        f"{counters.get('breaker.open', 0)} breaker open(s), "
        f"{counters.get('breaker.fast_fails', 0)} fast-fail(s), "
        f"{counters.get('pool.restarts', 0)} pool restart(s), "
        f"{counters.get('jobs.cancelled', 0)} cancelled"
    )
    if args.out:
        write_results_jsonl(report, args.out)
        print(f"wrote results to {args.out}")
    if args.metrics_out:
        write_metrics_json(report, args.metrics_out)
        print(f"wrote metrics to {args.metrics_out}")
    print(service.metrics.render())
    if cancel.is_set():
        if args.journal:
            print(
                "interrupted: journal flushed; re-run with --resume to "
                "finish the remaining jobs",
                file=sys.stderr,
            )
        return 130
    return 0 if report.ok else 1


def _cmd_serve_fleet(args: argparse.Namespace) -> int:
    import tempfile

    from repro.server import FleetConfig, FleetSupervisor
    from repro.service import parse_fleet_fault_spec

    state_dir = args.state_dir or tempfile.mkdtemp(prefix="repro-fleet-")
    plan = (
        parse_fleet_fault_spec(args.fleet_chaos) if args.fleet_chaos else None
    )
    supervisor = FleetSupervisor(
        FleetConfig(
            workers=args.workers,
            socket_path=args.socket,
            host=args.host,
            port=args.port,
            state_dir=state_dir,
            max_inflight=args.max_inflight,
            queue_limit=args.queue_limit,
            cache_size=args.cache_size,
            default_timeout=args.timeout,
            default_node_budget=args.budget,
            breaker_threshold=args.breaker_threshold,
            breaker_reset_seconds=args.breaker_reset,
            core_backend=args.core_backend,
            worker_chaos=args.chaos,
            store=args.store,
            fault_plan=plan,
        )
    )

    def _announce(address):
        print(f"repro serve: listening on {address}", flush=True)
        print(
            f"repro serve: fleet of {args.workers} workers, "
            f"state in {state_dir}",
            flush=True,
        )

    stats = supervisor.run(on_ready=_announce)
    counters = stats["counters"]
    print(
        "repro serve: drained cleanly — "
        f"{counters.get('fleet.dispatched', 0)} dispatched, "
        f"{counters.get('fleet.redispatched', 0)} re-dispatched, "
        f"{counters.get('fleet.worker_deaths', 0)} worker death(s), "
        f"{counters.get('fleet.restarts', 0)} restart(s), "
        f"{counters.get('fleet.connections', 0)} connection(s) over "
        f"{stats['uptime']:.1f}s"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import contextlib

    from repro.server import RepairServer, ServerConfig
    from repro.service import (
        JournalWriter,
        RepairService,
        ServiceConfig,
        parse_fault_spec,
    )

    if args.workers > 1:
        return _cmd_serve_fleet(args)

    runner = None
    if args.chaos:
        from repro.service import FaultyRunner

        runner = FaultyRunner(plan=parse_fault_spec(args.chaos))

    with contextlib.ExitStack() as stack:
        journal = None
        if args.journal:
            journal = stack.enter_context(JournalWriter(args.journal))
        store = None
        if args.store:
            from repro.service import SqliteStore

            store = stack.enter_context(SqliteStore(args.store))
            if store.healed:
                print(
                    f"repro serve: store {args.store} was corrupt; "
                    "quarantined and recreated",
                    file=sys.stderr,
                )
        service = RepairService(
            ServiceConfig(
                cache_size=args.cache_size,
                default_timeout=args.timeout,
                default_node_budget=args.budget,
                breaker_threshold=args.breaker_threshold,
                breaker_reset_seconds=args.breaker_reset,
                core_backend=args.core_backend,
            ),
            runner=runner,
            result_sink=journal.append if journal is not None else None,
            store=store,
        )
        server = RepairServer(
            service,
            ServerConfig(
                socket_path=args.socket,
                host=args.host,
                port=args.port,
                max_inflight=args.max_inflight,
                queue_limit=args.queue_limit,
            ),
        )

        def _announce(address):
            print(f"repro serve: listening on {address}", flush=True)

        stats = server.run(on_ready=_announce)
    counters = stats["counters"]
    print(
        "repro serve: drained cleanly — "
        f"{counters.get('server.accepted', 0)} accepted, "
        f"{counters.get('server.rejected_overload', 0)} rejected "
        f"(overload), "
        f"{counters.get('server.bad_requests', 0)} bad request(s), "
        f"{counters.get('server.connections', 0)} connection(s) over "
        f"{stats['uptime']:.1f}s"
    )
    print(service.metrics.render())
    return 0


# -- the TPC-H-scale workload pipeline ---------------------------------------


def _workload_store(args: argparse.Namespace):
    """A streaming store at ``--store`` (default: in-memory sqlite)."""
    from repro.engine.streaming import StreamingInstanceStore
    from repro.workloads.tpch import tpch_schema

    return StreamingInstanceStore(
        tpch_schema(), path=args.store or ":memory:"
    )


def _workload_ingest_dir(store, directory: Path) -> Dict[str, int]:
    """Ingest every ``<relation>.tbl`` under ``directory``; counts per
    relation, in sorted order."""
    from repro.workloads.tpch import TPCH_RELATIONS, converters_for

    counts: Dict[str, int] = {}
    for relation in sorted(TPCH_RELATIONS):
        path = directory / f"{relation}.tbl"
        if path.exists():
            counts[relation] = store.ingest_tbl(
                relation, path, converters_for(relation)
            )
    if not counts:
        raise UsageError(f"no .tbl tables found under {directory}")
    return counts


def _workload_manifest(directory: Path):
    from repro.workloads.injection import InjectionManifest

    path = directory / "manifest.json"
    if not path.exists():
        return None
    return InjectionManifest.from_json(path.read_text())


def _workload_cross_check(store, manifest) -> Dict[str, Any]:
    """The manifest conformance verdict: the loader's SQL-side conflict
    pairs must be exactly the manifest's injected pairs."""
    found = store.conflict_pairs()
    expected = manifest.conflict_pairs()
    return {
        "manifest_conflicts": len(manifest),
        "found_conflict_pairs": len(found),
        "pairs_match_manifest": found == expected,
        "missing_pairs": len(expected - found),
        "unexpected_pairs": len(found - expected),
    }


def _workload_certifier(semantics: str):
    from repro.core.checking import (
        check_completion_optimal,
        check_globally_optimal,
        check_pareto_optimal,
    )

    return {
        "global": check_globally_optimal,
        "pareto": check_pareto_optimal,
        "completion": check_completion_optimal,
    }[semantics]


def _workload_report(report: Dict[str, Any], args: argparse.Namespace) -> None:
    import json

    text = json.dumps(report, sort_keys=True, indent=2)
    print(text)
    if getattr(args, "json", None):
        Path(args.json).write_text(text + "\n")
        print(f"wrote {args.json}", file=sys.stderr)


def _cmd_workload_generate(args: argparse.Namespace) -> int:
    from repro.workloads.tpch import generate_tables, write_tbl

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    tables = generate_tables(args.sf, args.seed, args.relations or None)
    counts = {}
    for relation in sorted(tables):
        counts[relation] = write_tbl(
            tables[relation](), out / f"{relation}.tbl"
        )
    _workload_report(
        {
            "action": "generate",
            "scale_factor": args.sf,
            "seed": args.seed,
            "out": str(out),
            "rows": counts,
        },
        args,
    )
    return 0


def _cmd_workload_inject(args: argparse.Namespace) -> int:
    from repro.workloads.injection import (
        InjectedConflict,
        InjectionManifest,
        iter_injected_rows,
    )
    from repro.workloads.tpch import generate_tables, tpch_schema, write_tbl

    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    schema = tpch_schema()
    tables = generate_tables(args.sf, args.seed, args.relations or None)
    fds = {
        relation: next(
            fd for fd in sorted(schema.fds_for(relation).fds, key=str)
            if not fd.is_trivial()
        )
        for relation in tables
    }
    # Single pass per relation: the corrupted stream goes straight to
    # disk while its sink collects the manifest entries — the injector
    # never materializes a table.
    counts: Dict[str, int] = {}
    conflicts: List[InjectedConflict] = []
    for relation in sorted(tables):
        sink: List[InjectedConflict] = []
        counts[relation] = write_tbl(
            iter_injected_rows(
                relation,
                fds[relation],
                tables[relation](),
                args.rate,
                args.seed,
                sink,
            ),
            out / f"{relation}.tbl",
        )
        conflicts.extend(sink)
    manifest = InjectionManifest(
        rate=args.rate,
        seed=args.seed,
        relations=tuple(sorted(tables)),
        conflicts=conflicts,
    )
    (out / "manifest.json").write_text(manifest.to_json())
    _workload_report(
        {
            "action": "inject",
            "scale_factor": args.sf,
            "seed": args.seed,
            "rate": args.rate,
            "out": str(out),
            "rows": counts,
            "injected_conflicts": len(manifest),
            "conflicts_by_relation": manifest.counts_by_relation(),
        },
        args,
    )
    return 0


def _cmd_workload_check(args: argparse.Namespace) -> int:
    directory = Path(args.dir)
    manifest = _workload_manifest(directory)
    with _workload_store(args) as store:
        counts = _workload_ingest_dir(store, directory)
        report: Dict[str, Any] = {
            "action": "check",
            "dir": str(directory),
            "rows": counts,
            "facts": store.fact_count(),
            "consistent": store.is_consistent(),
            "violating_groups": store.conflict_summary(),
        }
        ok = True
        if manifest is None:
            report["manifest"] = None
            ok = report["consistent"]
        else:
            cross = _workload_cross_check(store, manifest)
            report["manifest"] = cross
            ok = cross["pairs_match_manifest"]
        report["ok"] = ok
    _workload_report(report, args)
    return 0 if ok else 1


def _cmd_workload_repair(args: argparse.Namespace) -> int:
    import random as random_module

    from repro.compute import compute_optimal_repair
    from repro.workloads.injection import tiered_prioritizing

    directory = Path(args.dir)
    manifest = _workload_manifest(directory)
    if manifest is None:
        raise UsageError(
            f"{directory} has no manifest.json — `repro workload repair` "
            "repairs injected workloads (run `repro workload inject`)"
        )
    with _workload_store(args) as store:
        _workload_ingest_dir(store, directory)
        kernel = store.conflict_kernel()
        prioritizing = tiered_prioritizing(store.schema, kernel, manifest)
        computed = compute_optimal_repair(
            prioritizing,
            semantics=args.semantics,
            rng=random_module.Random(args.seed),
        )
        certified = _workload_certifier(args.semantics)(
            prioritizing, computed.repair
        )
        expected = kernel.facts - manifest.injected_facts()
        report = {
            "action": "repair",
            "dir": str(directory),
            "facts": store.fact_count(),
            "kernel_facts": len(kernel.facts),
            "semantics": args.semantics,
            "repair_keeps": len(computed.repair),
            "status": computed.status,
            "method": computed.method,
            "certified_optimal": certified.is_optimal,
            "repair_is_all_trusted": computed.repair.facts == expected,
        }
        ok = (
            computed.status == "ok"
            and certified.is_optimal
            and report["repair_is_all_trusted"]
        )
        report["ok"] = ok
    _workload_report(report, args)
    return 0 if ok else 1


def _cmd_workload_e2e(args: argparse.Namespace) -> int:
    """Generate → inject → load → check → repair, no table files."""
    import random as random_module

    from repro.compute import compute_optimal_repair
    from repro.workloads.injection import (
        InjectedConflict,
        InjectionManifest,
        iter_injected_rows,
        tiered_prioritizing,
    )
    from repro.workloads.tpch import generate_tables, tpch_schema

    schema = tpch_schema()
    tables = generate_tables(args.sf, args.seed, args.relations or None)
    conflicts: List[InjectedConflict] = []
    with _workload_store(args) as store:
        counts: Dict[str, int] = {}
        for relation in sorted(tables):
            fd = next(
                fd for fd in sorted(schema.fds_for(relation).fds, key=str)
                if not fd.is_trivial()
            )
            sink: List[InjectedConflict] = []
            counts[relation] = store.ingest_rows(
                relation,
                iter_injected_rows(
                    relation, fd, tables[relation](), args.rate,
                    args.seed, sink,
                ),
            )
            conflicts.extend(sink)
        manifest = InjectionManifest(
            rate=args.rate,
            seed=args.seed,
            relations=tuple(sorted(tables)),
            conflicts=conflicts,
        )
        cross = _workload_cross_check(store, manifest)
        kernel = store.conflict_kernel()
        prioritizing = tiered_prioritizing(schema, kernel, manifest)
        computed = compute_optimal_repair(
            prioritizing,
            semantics=args.semantics,
            rng=random_module.Random(args.seed),
        )
        certified = _workload_certifier(args.semantics)(
            prioritizing, computed.repair
        )
        expected = kernel.facts - manifest.injected_facts()
        report = {
            "action": "e2e",
            "scale_factor": args.sf,
            "seed": args.seed,
            "rate": args.rate,
            "rows": counts,
            "facts": store.fact_count(),
            "consistent": store.is_consistent(),
            "manifest": cross,
            "kernel_facts": len(kernel.facts),
            "semantics": args.semantics,
            "repair_keeps": len(computed.repair),
            "certified_optimal": certified.is_optimal,
            "repair_is_all_trusted": computed.repair.facts == expected,
        }
        ok = (
            cross["pairs_match_manifest"]
            and computed.status == "ok"
            and certified.is_optimal
            and report["repair_is_all_trusted"]
        )
        report["ok"] = ok
    _workload_report(report, args)
    return 0 if ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.devtools.lint import main as lint_main

    return lint_main(args.lint_args)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Preferred repairs and their complexity dichotomies "
        "(Fagin, Kimelfeld, Kolaitis; PODS 2015).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    classify = subparsers.add_parser(
        "classify", help="classify a schema under both dichotomies"
    )
    classify.add_argument(
        "schema",
        help='e.g. "R:3; 1 -> 2; 2 -> 3" or "R:2, S:2; R: 1 -> 2; S: {} -> 1"',
    )
    classify.set_defaults(handler=_cmd_classify)

    demo = subparsers.add_parser("demo", help="replay the running example")
    demo.set_defaults(handler=_cmd_demo)

    gadget = subparsers.add_parser(
        "gadget", help="run the Lemma 5.2 Hamiltonian-cycle gadget"
    )
    gadget.add_argument("--nodes", type=int, required=True)
    gadget.add_argument(
        "--edges", nargs="*", help='edges as "u,v" tokens', default=[]
    )
    gadget.set_defaults(handler=_cmd_gadget)

    hard = subparsers.add_parser(
        "hard-schemas", help="classify the paper's ten anchor schemas"
    )
    hard.set_defaults(handler=_cmd_hard_schemas)

    clean = subparsers.add_parser(
        "clean", help="clean a JSON problem file into a preferred repair"
    )
    clean.add_argument("problem", help="path to a repro.io problem JSON")
    clean.add_argument("--out", help="write the cleaned facts here")
    clean.add_argument("--seed", type=int, default=0)
    clean.set_defaults(handler=_cmd_clean)

    repair = subparsers.add_parser(
        "repair",
        help="construct an optimal repair for a JSON problem file",
        description="Construct a globally-/Pareto-/completion-optimal "
        "repair directly (repro.compute): exact greedy construction "
        "whenever the priority is classical, the budgeted anytime "
        "improvement climb on hard ccp inputs (best-so-far repair with "
        "status=degraded when the budget runs out).",
    )
    repair.add_argument("problem", help="path to a repro.io problem JSON")
    repair.add_argument(
        "--semantics",
        choices=["global", "pareto", "completion"],
        default="global",
    )
    repair.add_argument("--seed", type=int, default=0)
    repair.add_argument(
        "--budget",
        type=int,
        default=None,
        help="improvement-round budget for the anytime climb on hard "
        "ccp inputs (None = unbounded)",
    )
    repair.add_argument("--out", help="write the repair's facts here")
    repair.set_defaults(handler=_cmd_repair)

    explain = subparsers.add_parser(
        "explain", help="prose classification under both theorems"
    )
    explain.add_argument("schema", help="schema spec (see classify)")
    explain.set_defaults(handler=_cmd_explain)

    stats = subparsers.add_parser(
        "stats", help="profile a JSON problem's conflict structure"
    )
    stats.add_argument("problem", help="path to a repro.io problem JSON")
    stats.set_defaults(handler=_cmd_stats)

    serve = subparsers.add_parser(
        "serve-batch",
        help="run a batch of repair-check jobs through the service layer",
    )
    serve.add_argument(
        "jobs", help="job file: .json (may embed the problem) or CSV rows"
    )
    serve.add_argument(
        "--problem",
        help="repro.io problem JSON (overrides the job file's problem; "
        "required for CSV job files)",
    )
    serve.add_argument("--out", help="write per-job JSONL results here")
    serve.add_argument(
        "--metrics-out", help="write the metrics snapshot JSON here"
    )
    serve.add_argument("--workers", type=int, default=1)
    serve.add_argument(
        "--executor",
        choices=["serial", "thread", "process"],
        default="thread",
    )
    serve.add_argument("--cache-size", type=int, default=2048)
    serve.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="default per-job wall-clock timeout in seconds",
    )
    serve.add_argument(
        "--budget",
        type=int,
        default=100000,
        help="default improvement-search node budget for coNP-hard jobs",
    )
    serve.add_argument(
        "--journal",
        help="append finished results to this crash-safe write-ahead "
        "journal (fsync per result; survives Ctrl-C and kill -9)",
    )
    serve.add_argument(
        "--resume",
        action="store_true",
        help="replay completed results from --journal and recompute "
        "only the rest",
    )
    serve.add_argument(
        "--chaos",
        metavar="SPEC",
        help="inject a deterministic fault schedule, e.g. "
        '"seed=3,transient=0.3,crash=0.1,slow=0.2,slow-ms=20,'
        'max-faults=2" (see repro.service.faults)',
    )
    serve.add_argument(
        "--max-pool-restarts",
        type=int,
        default=2,
        help="pool rebuilds allowed per batch after worker deaths",
    )
    serve.add_argument(
        "--breaker-threshold",
        type=int,
        default=5,
        help="consecutive worker failures that open a problem's "
        "circuit breaker (0 disables)",
    )
    serve.add_argument(
        "--breaker-reset",
        type=float,
        default=30.0,
        help="seconds an open circuit waits before a half-open probe",
    )
    serve.add_argument(
        "--core-backend",
        choices=["object", "bitset", "auto"],
        default=None,
        help="core execution substrate for check jobs (default: the "
        "REPRO_CORE_BACKEND env var, then auto by instance size); "
        "verdicts and cache keys are backend-invariant",
    )
    serve.set_defaults(handler=_cmd_serve_batch)

    daemon = subparsers.add_parser(
        "serve",
        help="run the persistent async repair-checking daemon",
        description="Keep one warm RepairService behind a socket "
        "speaking newline-delimited JSON (ops: check, repair, count, "
        "classify, ping, stats, drain; see repro.server.protocol).  "
        "Drains gracefully "
        "on SIGINT/SIGTERM: in-flight jobs finish, the journal is "
        "flushed, and a final metrics snapshot is printed.",
    )
    transport = daemon.add_mutually_exclusive_group(required=True)
    transport.add_argument(
        "--socket", help="listen on this unix-domain socket path"
    )
    transport.add_argument(
        "--port",
        type=int,
        help="listen on this TCP port (0 picks an ephemeral port, "
        "announced on stdout)",
    )
    daemon.add_argument(
        "--host",
        default="127.0.0.1",
        help="TCP bind address (with --port; default 127.0.0.1)",
    )
    daemon.add_argument(
        "--max-inflight",
        type=int,
        default=8,
        help="repair checks executing concurrently (worker threads)",
    )
    daemon.add_argument(
        "--queue-limit",
        type=int,
        default=16,
        help="admitted checks allowed to wait for a worker; beyond "
        "max-inflight + queue-limit, checks are rejected as overloaded",
    )
    daemon.add_argument("--cache-size", type=int, default=2048)
    daemon.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="default per-check wall-clock timeout in seconds "
        "(requests may override per check)",
    )
    daemon.add_argument(
        "--budget",
        type=int,
        default=100000,
        help="default improvement-search node budget for coNP-hard "
        "checks (requests may override per check)",
    )
    daemon.add_argument(
        "--journal",
        help="append finished deterministic results to this crash-safe "
        "write-ahead journal",
    )
    daemon.add_argument(
        "--store",
        help="persistent result store (WAL-mode sqlite) under the LRU "
        "cache: cache hits survive daemon restarts and are shared by "
        "every process opening the same file (a torn store is healed "
        "on open)",
    )
    daemon.add_argument(
        "--workers",
        type=int,
        default=1,
        help="run a supervised fleet of N daemon workers behind this "
        "socket: problems are consistent-hashed across workers, crashed "
        "workers restart under seeded backoff, and in-flight requests "
        "fail over at most once (1 = a single plain daemon)",
    )
    daemon.add_argument(
        "--state-dir",
        help="fleet scratch directory for worker sockets, journals, the "
        "shared store, and the fleet-state snapshot (default: a "
        "temporary directory; implies --workers > 1 layouts)",
    )
    daemon.add_argument(
        "--fleet-chaos",
        metavar="SPEC",
        help="inject deterministic fleet-level faults, e.g. "
        '"kill=1@5,wedge=2@3x4" (SIGKILL worker 1 at its 5th dispatch; '
        "wedge worker 2's heartbeat for 4 beats starting at beat 3); "
        "used by the fleet chaos drills",
    )
    daemon.add_argument(
        "--chaos",
        metavar="SPEC",
        help="inject a deterministic fault schedule (see "
        "repro.service.faults); used by the resilience drills",
    )
    daemon.add_argument(
        "--breaker-threshold",
        type=int,
        default=5,
        help="consecutive worker failures that open a problem's "
        "circuit breaker (0 disables)",
    )
    daemon.add_argument(
        "--breaker-reset",
        type=float,
        default=30.0,
        help="seconds an open circuit waits before a half-open probe",
    )
    daemon.add_argument(
        "--core-backend",
        choices=["object", "bitset", "auto"],
        default=None,
        help="core execution substrate for checks (default: the "
        "REPRO_CORE_BACKEND env var, then auto by instance size); "
        "verdicts and cache keys are backend-invariant",
    )
    daemon.set_defaults(handler=_cmd_serve)

    workload = subparsers.add_parser(
        "workload",
        help="generate, corrupt, load, and repair TPC-H-scale workloads",
        description="The TPC-H-scale workload pipeline: a synthetic "
        "benchmark-shaped generator (repro.workloads.tpch), a seeded "
        "FD-violation injector with a full conflict manifest "
        "(repro.workloads.injection), and the sqlite-backed streaming "
        "loader (repro.engine.streaming) that checks and repairs the "
        "result in bounded memory.",
    )
    workload_actions = workload.add_subparsers(
        dest="workload_action", required=True
    )

    def _workload_common(sub, needs_rate: bool) -> None:
        sub.add_argument(
            "--sf",
            type=float,
            default=0.01,
            help="scale factor (1.0 ~ 10^6 lineitem rows; default 0.01)",
        )
        sub.add_argument("--seed", type=int, default=0)
        if needs_rate:
            sub.add_argument(
                "--rate",
                type=float,
                default=0.01,
                help="per-row injection probability in [0, 1)",
            )
        sub.add_argument(
            "--relations",
            nargs="*",
            default=None,
            help="restrict to these relations (default: all eight)",
        )

    w_generate = workload_actions.add_parser(
        "generate", help="write clean .tbl tables"
    )
    _workload_common(w_generate, needs_rate=False)
    w_generate.add_argument("--out", required=True, help="output directory")
    w_generate.add_argument("--json", help="also write the report JSON here")
    w_generate.set_defaults(handler=_cmd_workload_generate)

    w_inject = workload_actions.add_parser(
        "inject",
        help="write corrupted .tbl tables plus the conflict manifest",
    )
    _workload_common(w_inject, needs_rate=True)
    w_inject.add_argument("--out", required=True, help="output directory")
    w_inject.add_argument("--json", help="also write the report JSON here")
    w_inject.set_defaults(handler=_cmd_workload_inject)

    w_check = workload_actions.add_parser(
        "check",
        help="stream a written workload through the loader and "
        "cross-check its conflicts against the manifest",
    )
    w_check.add_argument("dir", help="directory holding .tbl tables")
    w_check.add_argument(
        "--store",
        help="back the streaming loader with this sqlite file "
        "(default: in-memory)",
    )
    w_check.add_argument("--json", help="also write the report JSON here")
    w_check.set_defaults(handler=_cmd_workload_check)

    w_repair = workload_actions.add_parser(
        "repair",
        help="compute and certify an optimal repair of the conflict "
        "kernel under the manifest's two-tier priority",
    )
    w_repair.add_argument("dir", help="directory holding .tbl + manifest")
    w_repair.add_argument(
        "--semantics",
        choices=["global", "pareto", "completion"],
        default="global",
    )
    w_repair.add_argument("--seed", type=int, default=0)
    w_repair.add_argument(
        "--store", help="sqlite file for the loader (default: in-memory)"
    )
    w_repair.add_argument("--json", help="also write the report JSON here")
    w_repair.set_defaults(handler=_cmd_workload_repair)

    w_e2e = workload_actions.add_parser(
        "e2e",
        help="generate, inject, load, check, and repair in one pass "
        "without table files",
    )
    _workload_common(w_e2e, needs_rate=True)
    w_e2e.add_argument(
        "--semantics",
        choices=["global", "pareto", "completion"],
        default="global",
    )
    w_e2e.add_argument(
        "--store", help="sqlite file for the loader (default: in-memory)"
    )
    w_e2e.add_argument("--json", help="also write the report JSON here")
    w_e2e.set_defaults(handler=_cmd_workload_e2e)

    lint = subparsers.add_parser(
        "lint",
        help="run the project-invariant AST linter (rules RL001-RL008)",
        add_help=False,
    )
    lint.add_argument(
        "lint_args",
        nargs=argparse.REMAINDER,
        help="arguments passed through to repro.devtools.lint "
        "(use 'repro lint --help' to list them)",
    )
    lint.set_defaults(handler=_cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    # Forwarded before argparse sees the flags: argparse.REMAINDER only
    # captures from the first positional on, which would reject leading
    # options like `repro lint --format json`.
    if arguments and arguments[0] == "lint":
        from repro.devtools.lint import main as lint_main

        return lint_main(arguments[1:])
    parser = build_parser()
    args = parser.parse_args(arguments)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
