"""A catalog of every schema the paper names, as ready-made objects.

Collecting the named schemas in one place keeps the examples, tests,
and benchmarks in exact sync about what "Example 3.3" or "the Section 7
primary-key variant" means, and gives downstream users a menu of
schemas with known classification outcomes to experiment with.

Each entry records where in the paper the schema appears and which side
of each dichotomy it falls on (asserted by the test suite against the
classifiers, so the catalog can never silently drift).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator

from repro.core.schema import Schema
from repro.exceptions import MissingEntryError
from repro.hardness.schemas import CCP_HARD_SCHEMAS, HARD_SCHEMAS

__all__ = ["CatalogEntry", "PAPER_SCHEMAS", "entries", "get"]


@dataclass(frozen=True)
class CatalogEntry:
    """A named schema with its expected classification.

    Attributes
    ----------
    name:
        The catalog key.
    schema:
        The schema object.
    reference:
        Where the schema appears in the paper.
    classical_tractable:
        The Theorem 3.1 side (True = PTIME).
    ccp_tractable:
        The Theorem 7.1 side (True = PTIME).
    """

    name: str
    schema: Schema
    reference: str
    classical_tractable: bool
    ccp_tractable: bool


def _running_example_schema() -> Schema:
    from repro.workloads.scenarios import running_example

    return running_example().schema


def _build() -> Dict[str, CatalogEntry]:
    catalog: Dict[str, CatalogEntry] = {}

    def add(name, schema, reference, classical, ccp):
        catalog[name] = CatalogEntry(name, schema, reference, classical, ccp)

    add(
        "running-example",
        _running_example_schema(),
        "Examples 2.1-2.2, Figure 1",
        True,
        False,  # LibLoc has two keys: ccp-hard (cf. Sd)
    )
    add(
        "example-3.3",
        Schema.parse(
            {"R": 3, "S": 3, "T": 4},
            ["R: 1 -> 2", "T: 1 -> {2,3,4}", "T: {2,3} -> 1"],
        ),
        "Example 3.3",
        True,
        False,
    )
    for index, schema in HARD_SCHEMAS.items():
        add(
            f"s{index}",
            schema,
            f"Example 3.4, schema S{index}",
            False,
            False,
        )
    for letter, schema in CCP_HARD_SCHEMAS.items():
        # Sb ({1→2} on a ternary relation) and Sd (two keys) are
        # classically tractable; Sa mixes tractable relations; Sc has a
        # hard relation ({1→2, ∅→3} is neither one FD nor two keys).
        classical = {
            "a": True,
            "b": True,
            "c": False,
            "d": True,
        }[letter]
        add(
            f"s{letter}",
            schema,
            f"Section 7.3, schema S{letter}",
            classical,
            False,
        )
    add(
        "section-7-mixed-variant",
        Schema.parse({"R": 3, "S": 3}, ["R: 1 -> {2,3}", "S: {} -> 1"]),
        "Section 7.1 discussion (first Δ replacement)",
        True,
        False,
    )
    add(
        "section-7-primary-key-variant",
        Schema.parse(
            {"R": 3, "S": 3, "T": 4},
            ["R: 1 -> {2,3}", "S: {1,2} -> 3"],
        ),
        "Section 7.1 discussion (second Δ replacement)",
        True,
        True,
    )
    return catalog


#: All named schemas, keyed by catalog name.
PAPER_SCHEMAS: Dict[str, CatalogEntry] = _build()


def entries() -> Iterator[CatalogEntry]:
    """Iterate all catalog entries in a stable order."""
    for name in sorted(PAPER_SCHEMAS):
        yield PAPER_SCHEMAS[name]


def get(name: str) -> CatalogEntry:
    """Look up a catalog entry by name.

    Examples
    --------
    >>> get("s4").classical_tractable
    False
    """
    try:
        return PAPER_SCHEMAS[name]
    except KeyError:
        known = ", ".join(sorted(PAPER_SCHEMAS))
        raise MissingEntryError(f"unknown catalog schema {name!r}; known: {known}")
