"""Analysis utilities: instance statistics and empirical scaling laws.

Two kinds of helper live here:

* :func:`instance_statistics` / :func:`priority_statistics` — structural
  profiles of a cleaning problem (conflict counts, component sizes,
  block shapes, priority coverage), used when deciding whether a
  workload is even interesting;
* :func:`measure_scaling` + :func:`fit_power_law` — run a callable over
  growing input sizes and fit ``time ≈ c · n^k`` by least squares on the
  log-log series, which is how the experiment suite turns "the checker
  is polynomial" into a measured, checkable number.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.core.conflicts import conflict_graph, conflicting_pairs
from repro.core.instance import Instance
from repro.core.priority import PrioritizingInstance
from repro.core.schema import Schema

from repro.exceptions import UsageError
__all__ = [
    "InstanceStatistics",
    "instance_statistics",
    "priority_statistics",
    "ScalingPoint",
    "measure_scaling",
    "PowerLawFit",
    "fit_power_law",
]


@dataclass(frozen=True)
class InstanceStatistics:
    """A structural profile of an instance under a schema.

    Attributes
    ----------
    fact_count:
        Total number of facts.
    conflict_count:
        Number of conflicting (unordered) fact pairs.
    conflicting_fact_count:
        Number of facts participating in at least one conflict.
    component_count:
        Connected components of the conflict graph with ≥ 2 facts.
    largest_component:
        Size of the largest conflict component (0 if none).
    """

    fact_count: int
    conflict_count: int
    conflicting_fact_count: int
    component_count: int
    largest_component: int

    @property
    def conflict_rate(self) -> float:
        """Fraction of facts involved in some conflict."""
        if self.fact_count == 0:
            return 0.0
        return self.conflicting_fact_count / self.fact_count


def instance_statistics(schema: Schema, instance: Instance) -> InstanceStatistics:
    """Profile ``instance``'s conflict structure.

    Examples
    --------
    >>> from repro.core import Fact
    >>> schema = Schema.single_relation(["1 -> 2"], arity=2)
    >>> inst = schema.instance(
    ...     [Fact("R", (1, "a")), Fact("R", (1, "b")), Fact("R", (2, "c"))]
    ... )
    >>> stats = instance_statistics(schema, inst)
    >>> stats.conflict_count, stats.largest_component
    (1, 2)
    """
    adjacency = conflict_graph(schema, instance)
    pairs = conflicting_pairs(schema, instance)
    conflicting = [fact for fact, neigh in adjacency.items() if neigh]
    seen = set()
    component_sizes: List[int] = []
    for start in conflicting:
        if start in seen:
            continue
        size = 0
        stack = [start]
        seen.add(start)
        while stack:
            node = stack.pop()
            size += 1
            for neighbour in adjacency[node]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
        component_sizes.append(size)
    return InstanceStatistics(
        fact_count=len(instance),
        conflict_count=len(pairs),
        conflicting_fact_count=len(conflicting),
        component_count=len(component_sizes),
        largest_component=max(component_sizes, default=0),
    )


def priority_statistics(
    prioritizing: PrioritizingInstance,
) -> Dict[str, float]:
    """Profile the priority relation relative to the conflicts.

    Returns counts plus ``orientation_rate`` — the fraction of
    conflicting pairs the priority orders (1.0 for completions) — and
    ``cross_conflict_edges`` (non-zero only for ccp instances).
    """
    pairs = conflicting_pairs(
        prioritizing.schema, prioritizing.instance
    )
    oriented = 0
    cross = 0
    for better, worse in prioritizing.priority.edges:
        if frozenset({better, worse}) in pairs:
            oriented += 1
        else:
            cross += 1
    return {
        "edge_count": float(len(prioritizing.priority)),
        "conflict_count": float(len(pairs)),
        "oriented_conflicts": float(oriented),
        "cross_conflict_edges": float(cross),
        "orientation_rate": (oriented / len(pairs)) if pairs else 1.0,
    }


@dataclass(frozen=True)
class ScalingPoint:
    """One measurement of the scaling series."""

    size: int
    seconds: float


def measure_scaling(
    make_input: Callable[[int], object],
    run: Callable[[object], object],
    sizes: Sequence[int],
    repeats: int = 3,
) -> List[ScalingPoint]:
    """Time ``run`` on inputs of growing ``sizes`` (best of ``repeats``).

    ``make_input(size)`` builds the input (untimed); ``run(input)`` is
    the timed operation.
    """
    points: List[ScalingPoint] = []
    for size in sizes:
        payload = make_input(size)
        best = min(
            _time_once(run, payload) for _ in range(max(1, repeats))
        )
        points.append(ScalingPoint(size=size, seconds=best))
    return points


def _time_once(run: Callable[[object], object], payload: object) -> float:
    start = time.perf_counter()
    run(payload)
    return time.perf_counter() - start


@dataclass(frozen=True)
class PowerLawFit:
    """A least-squares fit ``seconds ≈ coefficient · size^exponent``."""

    exponent: float
    coefficient: float
    r_squared: float

    def predict(self, size: int) -> float:
        """The fitted time at ``size``."""
        return self.coefficient * size ** self.exponent


def fit_power_law(points: Sequence[ScalingPoint]) -> PowerLawFit:
    """Fit a power law to a scaling series via log-log least squares.

    A polynomial-time algorithm shows up as a small, stable exponent;
    an exponential one as an exponent that *grows* with the size range
    (no power law fits, and ``r_squared`` degrades on wide ranges).

    Examples
    --------
    >>> pts = [ScalingPoint(n, 2e-6 * n ** 2) for n in (10, 20, 40, 80)]
    >>> fit = fit_power_law(pts)
    >>> round(fit.exponent, 2)
    2.0
    """
    if len(points) < 2:
        raise UsageError("need at least two points to fit a power law")
    sizes = np.array([p.size for p in points], dtype=float)
    seconds = np.array([max(p.seconds, 1e-9) for p in points], dtype=float)
    log_sizes = np.log(sizes)
    log_seconds = np.log(seconds)
    exponent, intercept = np.polyfit(log_sizes, log_seconds, 1)
    predicted = exponent * log_sizes + intercept
    residual = log_seconds - predicted
    total = log_seconds - log_seconds.mean()
    denominator = float(total @ total)
    r_squared = (
        1.0 - float(residual @ residual) / denominator
        if denominator > 0
        else 1.0
    )
    return PowerLawFit(
        exponent=float(exponent),
        coefficient=float(np.exp(intercept)),
        r_squared=r_squared,
    )
