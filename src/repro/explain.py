"""Human-readable explanations of checking and classification results.

Repair checkers return witnesses (the improving subinstance) and
classifiers return witnesses (the equivalent FDs); this module renders
both into prose a data engineer can act on:

* :func:`explain_check` — why a candidate is/isn't an optimal repair,
  naming the facts that must leave, the preferred facts that replace
  them, and the priority edges justifying each eviction;
* :func:`explain_classification` — which clause of Theorem 3.1 a schema
  satisfies (with witnesses) or, on the hard side, which Section 5.2
  case applies and which anchor schema the hardness reduces from;
* :func:`explain_ccp_classification` — the same for Theorem 7.1.

Everything is derived from the structured results, so explanations can
never drift from the algorithms.
"""

from __future__ import annotations

from typing import List

from repro.core.checking.result import CheckResult
from repro.core.classification import (
    ClassificationVerdict,
    CcpVerdict,
    RelationClass,
    classify_ccp_schema,
    classify_schema,
)
from repro.core.instance import Instance
from repro.core.priority import PrioritizingInstance
from repro.core.schema import Schema

__all__ = [
    "explain_check",
    "explain_classification",
    "explain_ccp_classification",
]


def explain_check(
    prioritizing: PrioritizingInstance,
    candidate: Instance,
    result: CheckResult,
) -> str:
    """Render a checking result as prose.

    Examples
    --------
    >>> from repro.core import Schema, Fact, PriorityRelation
    >>> from repro.core import PrioritizingInstance
    >>> from repro.core.checking import check_globally_optimal
    >>> schema = Schema.single_relation(["1 -> 2"], arity=2)
    >>> new, old = Fact("R", (1, "new")), Fact("R", (1, "old"))
    >>> pri = PrioritizingInstance(
    ...     schema, schema.instance([new, old]),
    ...     PriorityRelation([(new, old)]),
    ... )
    >>> result = check_globally_optimal(pri, schema.instance([old]))
    >>> text = explain_check(pri, schema.instance([old]), result)
    >>> print(text.splitlines()[0])
    The candidate is NOT a global-optimal repair (decided by GRepCheck1FD).
    >>> "evict R(1, 'old')" in text and "add R(1, 'new')" in text
    True
    """
    lines: List[str] = []
    verdict = "IS" if result.is_optimal else "is NOT"
    lines.append(
        f"The candidate {verdict} a {result.semantics}-optimal repair "
        f"(decided by {result.method})."
    )
    if result.is_optimal:
        lines.append(
            "No better consistent subinstance exists: every way of "
            "exchanging its facts for preferred ones breaks consistency "
            "or evicts a fact nothing preferred replaces."
        )
        return "\n".join(lines)
    if result.improvement is None:
        lines.append(result.reason or "The candidate is not a repair.")
        return "\n".join(lines)
    improvement = result.improvement
    removed = sorted(candidate.facts - improvement.facts, key=str)
    added = sorted(improvement.facts - candidate.facts, key=str)
    priority = prioritizing.priority
    lines.append("A better consistent subinstance exists:")
    for fact in removed:
        justifiers = sorted(
            (g for g in added if priority.prefers(g, fact)), key=str
        )
        if justifiers:
            lines.append(
                f"  - evict {fact}: outranked by the incoming "
                f"{', '.join(str(g) for g in justifiers)}"
            )
        else:
            lines.append(
                f"  - evict {fact}: displaced to make room (maximality)"
            )
    for fact in added:
        lines.append(f"  - add {fact}")
    if result.reason:
        lines.append(f"({result.reason})")
    return "\n".join(lines)


def explain_classification(schema: Schema) -> str:
    """Render the Theorem 3.1 classification of ``schema`` as prose."""
    verdict: ClassificationVerdict = classify_schema(schema)
    lines: List[str] = []
    if verdict.is_tractable:
        lines.append(
            "Globally-optimal repair checking is solvable in polynomial "
            "time for this schema (Theorem 3.1):"
        )
    else:
        lines.append(
            "Globally-optimal repair checking is coNP-complete for this "
            "schema (Theorem 3.1):"
        )
    for relation_verdict in verdict.per_relation:
        name = relation_verdict.relation
        if relation_verdict.kind is RelationClass.SINGLE_FD:
            witness = relation_verdict.witnesses[0]
            lines.append(
                f"  - {name}: its FDs are equivalent to the single FD "
                f"{witness}; GRepCheck1FD (Figure 2) applies."
            )
        elif relation_verdict.kind is RelationClass.TWO_KEYS:
            keys = " and ".join(str(w) for w in relation_verdict.witnesses)
            lines.append(
                f"  - {name}: its FDs are equivalent to the keys {keys}; "
                f"GRepCheck2Keys (Figure 4) applies."
            )
        else:
            from repro.hardness.case_analysis import analyse_hard_relation

            case = analyse_hard_relation(schema.fds_for(name))
            detail = f"Section 5.2 Case {case.case}"
            if case.determiner_a is not None:
                detail += (
                    f" with determiners A = {sorted(case.determiner_a)}"
                    f" and B = {sorted(case.determiner_b or ())}"
                )
            lines.append(
                f"  - {name}: equivalent to neither a single FD nor two "
                f"keys; hardness reduces from S{case.source_index} "
                f"({detail})."
            )
    return "\n".join(lines)


def explain_ccp_classification(schema: Schema) -> str:
    """Render the Theorem 7.1 (ccp) classification as prose."""
    verdict: CcpVerdict = classify_ccp_schema(schema)
    lines: List[str] = []
    if verdict.is_primary_key_assignment:
        lines.append(
            "Under cross-conflict priorities, checking is polynomial: Δ "
            "is a primary-key assignment (Theorem 7.1); the G_{J,I\\J} "
            "cycle test (Lemma 7.3) applies."
        )
    elif verdict.is_constant_attribute_assignment:
        lines.append(
            "Under cross-conflict priorities, checking is polynomial: Δ "
            "is a constant-attribute assignment (Theorem 7.1); repairs "
            "are partition combinations (Prop. 7.5), polynomially many."
        )
    else:
        lines.append(
            "Under cross-conflict priorities, checking is coNP-complete: "
            "Δ is neither a primary-key nor a constant-attribute "
            "assignment (Theorem 7.1)."
        )
    for relation_verdict in verdict.per_relation:
        parts = []
        if relation_verdict.key_witness is not None:
            parts.append(f"single key {relation_verdict.key_witness}")
        if relation_verdict.constant_witness is not None:
            parts.append(
                f"constant-attribute {relation_verdict.constant_witness}"
            )
        description = " and ".join(parts) if parts else "neither form"
        lines.append(f"  - {relation_verdict.relation}: {description}")
    return "\n".join(lines)
