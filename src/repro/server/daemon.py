"""``repro serve``: the persistent async repair-checking daemon.

The batch CLI pays interpreter start-up, schema classification, and a
cold result cache on every invocation.  :class:`RepairServer` keeps one
warm :class:`~repro.service.RepairService` alive behind a socket so all
of that amortizes across requests: the LRU result cache, the memoized
schema classification, the parsed-problem cache, and the per-problem
circuit breaker persist for the life of the process.

Architecture (one asyncio event loop, jobs on a bounded thread pool):

* **accept** — ``asyncio.start_server`` / ``start_unix_server``; each
  connection runs a readline loop over the newline-delimited JSON
  protocol of :mod:`repro.server.protocol`.
* **admit** — every job-bearing request (``check``, ``repair``,
  ``count``) passes the
  :class:`~repro.server.admission.AdmissionController` *before* any
  parsing or queueing.  At capacity the client gets an ``overloaded``
  error immediately; nothing is buffered, nothing hangs.
* **execute** — admitted jobs run on a dedicated
  ``ThreadPoolExecutor`` of ``max_inflight`` threads, each calling the
  reentrant :meth:`~repro.service.RepairService.run_job` (checks) or
  :meth:`~repro.service.RepairService.run_compute` (repair
  construction and entailment counting); the admission capacity bounds
  the executor's queue, so queue depth is ``queue_limit`` at most.
  Per-request ``timeout`` / ``budget`` fields plumb straight into the
  node-budget/deadline machinery of the improvement search.
* **observe** — server counters (``server.accepted``,
  ``server.rejected_overload``, ...), the ``server.active_connections``
  gauge, and the ``server.request`` latency histogram land in the *same*
  metrics registry as the service's job counters, so one ``stats``
  request reads the whole picture.
* **drain** — SIGINT/SIGTERM (or a ``drain`` request) stops accepting,
  lets in-flight jobs finish, flushes responses, closes connections,
  and hands the caller a final metrics snapshot.  The CLI then closes
  the journal and exits 0.

Control operations (``ping``, ``stats``, ``classify``, ``drain``) are
answered inline on the event loop — they are cheap and must stay
responsive even when every worker thread is busy; classification is
memoized per schema, so a hot ``classify`` never recomputes.
"""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
import json
import os
import signal
import time
from dataclasses import dataclass
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Optional, Set, Tuple, Union

from repro.core.classification import classify_ccp_schema, classify_schema
from repro.core.priority import PrioritizingInstance
from repro.exceptions import ProtocolError, ReproError, UsageError
from repro.io import parse_schema_spec, prioritizing_from_dict, schema_from_dict
from repro.server.admission import AdmissionController
from repro.server.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    Request,
    encode_response,
    error_response,
    ok_response,
    parse_request,
)
from repro.cqa.queries import query_from_dict
from repro.service import ComputeJob, RepairService, RepairJob
from repro.service.cache import LRUCache

__all__ = ["ServerConfig", "RepairServer"]

#: Operations that carry a job and run on the worker pool (everything
#: else is a cheap control op answered inline on the event loop).
_POOLED_OPS = ("check", "repair", "count")

#: Counters pre-registered at server construction so every stats
#: snapshot reports them, zero or not.
_WELL_KNOWN_SERVER_COUNTERS = (
    "server.requests",
    "server.bad_requests",
    "server.rejected_draining",
    "server.internal_errors",
    "server.connections",
)


@dataclass(frozen=True)
class ServerConfig:
    """Where and how a :class:`RepairServer` listens.

    Exactly one of ``socket_path`` (a unix-domain socket — the default
    transport for a local sidecar) and ``port`` (TCP on ``host``;
    ``port=0`` binds an ephemeral port, reported by
    :attr:`RepairServer.address`) must be set.
    """

    socket_path: Optional[str] = None
    host: str = "127.0.0.1"
    port: Optional[int] = None
    max_inflight: int = 8
    queue_limit: int = 16
    max_line_bytes: int = MAX_LINE_BYTES
    problem_cache_size: int = 128

    def __post_init__(self) -> None:
        if (self.socket_path is None) == (self.port is None):
            raise UsageError(
                "exactly one of socket_path and port must be given"
            )
        if self.max_line_bytes < 1024:
            raise UsageError("max_line_bytes must be >= 1024")
        if self.problem_cache_size < 0:
            raise UsageError("problem_cache_size must be >= 0")
        # max_inflight / queue_limit are validated by the controller.


class RepairServer:
    """One warm :class:`RepairService` behind a line-protocol socket.

    Parameters
    ----------
    service:
        The shared service; its metrics registry doubles as the
        server's, so job and server telemetry snapshot together.
    config:
        Transport and admission settings.

    Lifecycle: :meth:`run` (blocking; installs signal handlers) is what
    the CLI calls; tests drive :meth:`start` / :meth:`drain` /
    :meth:`wait_drained` directly on an event loop.
    """

    def __init__(
        self,
        service: Optional[RepairService] = None,
        config: Optional[ServerConfig] = None,
    ) -> None:
        self.service = service or RepairService()
        self.config = config or ServerConfig(port=0)
        self.metrics = self.service.metrics
        self.admission = AdmissionController(
            self.config.max_inflight,
            self.config.queue_limit,
            metrics=self.metrics,
        )
        self._problems = LRUCache(self.config.problem_cache_size)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._drain_requested: Optional[asyncio.Event] = None
        self._draining = False
        self._check_tasks: Set["asyncio.Task[None]"] = set()
        self._writers: Set[asyncio.StreamWriter] = set()
        self._started_at = 0.0
        for name in _WELL_KNOWN_SERVER_COUNTERS:
            self.metrics.counter(name)
        self.metrics.gauge("server.active_connections")

    # -- lifecycle -------------------------------------------------------------------

    @property
    def address(self) -> Union[str, Tuple[str, int], None]:
        """Where the daemon listens: a socket path or ``(host, port)``."""
        if self._server is None:
            return None
        if self.config.socket_path is not None:
            return self.config.socket_path
        sockets = self._server.sockets or ()
        for sock in sockets:
            host, port = sock.getsockname()[:2]
            return (host, port)
        return None

    async def start(self) -> None:
        """Bind the socket and start accepting connections."""
        if self._server is not None:
            raise UsageError("server already started")
        self._drain_requested = asyncio.Event()
        self._pool = ThreadPoolExecutor(
            max_workers=self.config.max_inflight,
            thread_name_prefix="repro-serve",
        )
        if self.config.socket_path is not None:
            # A stale socket file from a killed daemon would make bind
            # fail; connect attempts to it already fail, so removing it
            # is safe.  The unlink is file I/O, so it runs off the event
            # loop like every other blocking call (RL101).
            with contextlib.suppress(FileNotFoundError):
                await asyncio.to_thread(os.unlink, self.config.socket_path)
            self._server = await asyncio.start_unix_server(
                self._handle_connection,
                path=self.config.socket_path,
                limit=self.config.max_line_bytes,
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection,
                host=self.config.host,
                port=self.config.port,
                limit=self.config.max_line_bytes,
            )
        self._started_at = time.monotonic()
        self.metrics.record_event("server_start", address=str(self.address))

    def request_drain(self) -> None:
        """Begin a graceful drain (signal-handler and test safe).

        Idempotent: stops admitting new checks; :meth:`wait_drained`
        finishes the rest.
        """
        self._draining = True
        if self._drain_requested is not None:
            self._drain_requested.set()

    async def wait_drained(self) -> Dict[str, Any]:
        """Block until drain is requested, then finish and tear down.

        Finishes every in-flight check (their responses are written),
        closes the listener and every connection, shuts the worker pool
        down, and returns the final stats payload.
        """
        if self._drain_requested is None or self._server is None:
            raise UsageError("server is not started")
        await self._drain_requested.wait()
        # Stop accepting; in-flight work keeps its executor threads.
        self._server.close()
        await self._server.wait_closed()
        if self._check_tasks:
            await asyncio.gather(*list(self._check_tasks), return_exceptions=True)
        for writer in list(self._writers):
            writer.close()
        self.metrics.record_event(
            "server_drain",
            uptime=time.monotonic() - self._started_at,
        )
        if self._pool is not None:
            # shutdown(wait=True) joins the worker threads; even though
            # every task was gathered above, the join must not run on
            # the event loop (RL101) — a worker wedged in C code would
            # freeze control ops for every still-connected client.
            await asyncio.to_thread(self._pool.shutdown, True)
        return self.stats_payload()

    async def drain(self) -> Dict[str, Any]:
        """Request a drain and wait for it to finish (test convenience)."""
        self.request_drain()
        return await self.wait_drained()

    def run(self, on_ready: Optional[Any] = None) -> Dict[str, Any]:
        """Serve until SIGINT/SIGTERM (or a ``drain`` request); blocking.

        ``on_ready``, if given, is called with :attr:`address` once the
        socket is bound (the CLI prints its "listening" line from it, so
        clients can wait on stdout instead of polling the socket).
        Returns the final metrics snapshot for the caller to render.
        """
        return asyncio.run(self._run_async(on_ready))

    async def _run_async(self, on_ready: Optional[Any] = None) -> Dict[str, Any]:
        await self.start()
        if on_ready is not None:
            on_ready(self.address)
        loop = asyncio.get_running_loop()
        installed = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, self.request_drain)
                installed.append(signum)
            except (NotImplementedError, RuntimeError):
                # Platforms without loop signal support (or nested
                # loops) fall back to drain-by-request only.
                break
        try:
            return await self.wait_drained()
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)

    # -- connection handling ---------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.counter("server.connections").increment()
        self.metrics.gauge("server.active_connections").increment()
        self._writers.add(writer)
        write_lock = asyncio.Lock()
        connection_tasks: Set["asyncio.Task[None]"] = set()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # The line exceeded max_line_bytes; the stream is no
                    # longer framed, so answer and hang up.
                    self.metrics.counter("server.bad_requests").increment()
                    await self._send(
                        writer,
                        write_lock,
                        error_response(
                            None,
                            "bad-request",
                            f"request line exceeds "
                            f"{self.config.max_line_bytes} bytes",
                        ),
                    )
                    break
                if not line:
                    break
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                self.metrics.counter("server.requests").increment()
                try:
                    request = parse_request(text)
                except ProtocolError as exc:
                    self.metrics.counter("server.bad_requests").increment()
                    await self._send(
                        writer,
                        write_lock,
                        error_response(None, "bad-request", str(exc)),
                    )
                    continue
                if request.op in _POOLED_OPS:
                    # Admission happens *now*, on the event loop, so an
                    # overloaded daemon answers before queueing anything.
                    task = asyncio.create_task(
                        self._run_check(request, writer, write_lock)
                    )
                    connection_tasks.add(task)
                    self._check_tasks.add(task)
                    task.add_done_callback(connection_tasks.discard)
                    task.add_done_callback(self._check_tasks.discard)
                else:
                    await self._send(
                        writer, write_lock, self._control(request)
                    )
                    if request.op == "drain":
                        self.request_drain()
        finally:
            if connection_tasks:
                await asyncio.gather(
                    *list(connection_tasks), return_exceptions=True
                )
            self._writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self.metrics.gauge("server.active_connections").decrement()

    async def _send(
        self,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
        response: Dict[str, Any],
    ) -> None:
        """Write one response line (tasks on one connection interleave)."""
        payload = encode_response(response)
        async with write_lock:
            if writer.is_closing():
                return
            writer.write(payload)
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                # The client hung up mid-response; nothing to salvage.
                pass

    # -- the pooled job path (check / repair / count) ----------------------------------

    async def _run_check(
        self,
        request: Request,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        if self._draining:
            self.metrics.counter("server.rejected_draining").increment()
            await self._send(
                writer,
                write_lock,
                error_response(
                    request.request_id,
                    "draining",
                    "daemon is draining and accepts no new jobs",
                ),
            )
            return
        if not self.admission.try_admit():
            await self._send(
                writer,
                write_lock,
                error_response(
                    request.request_id,
                    "overloaded",
                    f"admission limit reached "
                    f"({self.admission.capacity} in flight); retry later",
                ),
            )
            return
        loop = asyncio.get_running_loop()
        start = time.monotonic()
        try:
            result = await loop.run_in_executor(
                self._pool, self._execute_sync, request
            )
            response = ok_response(
                request.request_id, result=result.to_dict()
            )
        except (ProtocolError, ReproError, ValueError, KeyError, TypeError) as exc:
            # Malformed problem/candidate documents surface here; the
            # checkers' own errors became a status="error" result above.
            self.metrics.counter("server.bad_requests").increment()
            response = error_response(
                request.request_id,
                "bad-request",
                f"{type(exc).__name__}: {exc}",
            )
        except Exception as exc:  # noqa: BLE001  # repro-lint: ignore[RL007]
            # The daemon-level supervision boundary: one request must
            # never take the process (or the connection loop) down.
            self.metrics.counter("server.internal_errors").increment()
            self.metrics.record_event(
                "server_internal_error",
                error=f"{type(exc).__name__}: {exc}",
            )
            response = error_response(
                request.request_id, "internal", "internal server error"
            )
        finally:
            self.admission.release()
            self.metrics.histogram("server.request").observe(
                time.monotonic() - start
            )
        await self._send(writer, write_lock, response)

    def _execute_sync(self, request: Request) -> Any:
        """Dispatch one pooled request to its sync executor (worker
        thread; may raise ReproError on malformed documents)."""
        if request.op == "repair":
            return self._execute_repair_sync(request)
        if request.op == "count":
            return self._execute_count_sync(request)
        return self._execute_check_sync(request)

    def _job_id_for(self, request: Request) -> str:
        job_id = request.payload.get("job_id")
        if job_id is not None:
            return job_id
        if request.request_id is not None:
            return str(request.request_id)
        return "request"

    def _execute_check_sync(self, request: Request) -> Any:
        """Build and run one check job (worker thread)."""
        from repro.service.batch_io import candidate_from_spec

        payload = request.payload
        prioritizing = self._problem_for(payload["problem"])
        candidate = candidate_from_spec(prioritizing, payload["candidate"])
        job = RepairJob(
            job_id=self._job_id_for(request),
            prioritizing=prioritizing,
            candidate=candidate,
            semantics=payload.get("semantics", "global"),
            method=payload.get("method", "auto"),
            timeout=payload.get("timeout"),
            node_budget=payload.get("budget"),
        )
        return self.service.run_job(job)

    def _execute_repair_sync(self, request: Request) -> Any:
        """Build and run one repair-construction job (worker thread)."""
        payload = request.payload
        prioritizing = self._problem_for(payload["problem"])
        job = ComputeJob(
            job_id=self._job_id_for(request),
            prioritizing=prioritizing,
            kind="repair",
            semantics=payload.get("semantics", "global"),
            seed=payload.get("seed", 0),
            timeout=payload.get("timeout"),
            node_budget=payload.get("budget"),
        )
        return self.service.run_compute(job)

    def _execute_count_sync(self, request: Request) -> Any:
        """Build and run one entailment-count job (worker thread)."""
        payload = request.payload
        prioritizing = self._problem_for(payload["problem"])
        query = query_from_dict(payload["query"])
        job = ComputeJob(
            job_id=self._job_id_for(request),
            prioritizing=prioritizing,
            kind="count",
            semantics=payload.get("semantics", "global"),
            query=query,
            max_repairs=payload.get("max_repairs"),
        )
        return self.service.run_compute(job)

    def _problem_for(self, document: Dict[str, Any]) -> PrioritizingInstance:
        """Parse (and memoize) a prioritizing-instance document.

        Deserialization re-validates the whole problem — exactly the
        per-invocation cost the daemon exists to amortize — so parsed
        problems are cached by the canonical digest of their document.
        """
        key = hashlib.sha256(
            json.dumps(document, sort_keys=True, default=str).encode("utf-8")
        ).hexdigest()
        cached = self._problems.get(key)
        if cached is not None:
            return cached
        prioritizing = prioritizing_from_dict(document)
        self._problems.put(key, prioritizing)
        return prioritizing

    # -- control operations ------------------------------------------------------------

    def _control(self, request: Request) -> Dict[str, Any]:
        """Answer a non-check operation inline (event loop; cheap)."""
        if request.op == "ping":
            return ok_response(
                request.request_id, pong=True, protocol=PROTOCOL_VERSION
            )
        if request.op == "stats":
            return ok_response(request.request_id, stats=self.stats_payload())
        if request.op == "drain":
            return ok_response(request.request_id, draining=True)
        # classify: memoized per schema, so a hot loop costs a dict hit.
        payload = request.payload
        try:
            if "schema" in payload:
                schema = schema_from_dict(payload["schema"])
            else:
                schema = parse_schema_spec(payload["schema_spec"])
            classical = classify_schema(schema)
            ccp = classify_ccp_schema(schema)
        except (ReproError, ValueError, KeyError, TypeError) as exc:
            self.metrics.counter("server.bad_requests").increment()
            return error_response(
                request.request_id,
                "bad-request",
                f"{type(exc).__name__}: {exc}",
            )
        return ok_response(
            request.request_id,
            classical={
                "tractable": classical.is_tractable,
                "description": classical.describe(),
            },
            ccp={
                "tractable": ccp.is_tractable,
                "description": ccp.describe(),
            },
        )

    def stats_payload(self) -> Dict[str, Any]:
        """The ``stats`` response body (and the final drain snapshot).

        The bounded event log is summarized as a count — shipping up to
        10k events per stats poll would make observability itself a
        load problem.
        """
        snapshot = self.service.metrics.snapshot()
        payload = {
            "protocol": PROTOCOL_VERSION,
            "draining": self._draining,
            "uptime": (
                time.monotonic() - self._started_at
                if self._started_at
                else 0.0
            ),
            "address": str(self.address),
            "counters": snapshot["counters"],
            "gauges": snapshot["gauges"],
            "histograms": snapshot["histograms"],
            "events": len(snapshot["events"]),
            "result_cache": self.service.cache.stats(),
            "problem_cache": self._problems.stats(),
        }
        if self.service.store is not None:
            payload["result_store"] = self.service.store.stats()
        return payload
