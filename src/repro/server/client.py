"""A small blocking client for the ``repro serve`` daemon.

The daemon speaks newline-delimited JSON (:mod:`repro.server.protocol`);
this client wraps one socket in just enough convenience to use from
scripts and tests without an event loop::

    from repro.server import RepairClient

    with RepairClient(socket_path="/tmp/repro.sock") as client:
        client.ping()
        response = client.check(problem_document, candidate=[0, 2])
        print(response["result"]["is_optimal"])

:meth:`send` / :meth:`recv` are exposed separately so callers can
pipeline — send many ``check`` lines, then collect responses and match
them back by ``id`` (responses to slow checks arrive late).  The typed
helpers (:meth:`check`, :meth:`classify`, ...) do one round trip and
return the raw response envelope; they do **not** raise on ``ok: false``
— overload and drain rejections are expected operating conditions the
caller handles, not exceptions.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, List, Optional

from repro.exceptions import ProtocolError, UsageError

__all__ = ["RepairClient"]


class RepairClient:
    """One connection to a running repair-checking daemon.

    Exactly one of ``socket_path`` and ``port`` must be given, matching
    how the daemon was started.  ``timeout`` bounds every socket
    operation; a daemon that stops responding surfaces as
    ``socket.timeout`` rather than a hang.
    """

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        timeout: float = 30.0,
    ) -> None:
        if (socket_path is None) == (port is None):
            raise UsageError("exactly one of socket_path and port must be given")
        if socket_path is not None:
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout)
            self._sock.connect(socket_path)
        else:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("rb")

    # -- transport -------------------------------------------------------------------

    def send(self, document: Dict[str, Any]) -> None:
        """Write one request line without waiting for the response."""
        self._sock.sendall((json.dumps(document) + "\n").encode("utf-8"))

    def recv(self) -> Dict[str, Any]:
        """Read the next response line (whichever request it answers)."""
        line = self._reader.readline()
        if not line:
            raise ProtocolError("connection closed by the daemon")
        return json.loads(line)

    def request(self, document: Dict[str, Any]) -> Dict[str, Any]:
        """One request/response round trip."""
        self.send(document)
        return self.recv()

    # -- typed operations --------------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        """Liveness probe; the response carries the protocol version."""
        return self.request({"op": "ping"})

    def stats(self) -> Dict[str, Any]:
        """The daemon's live metrics snapshot."""
        return self.request({"op": "stats"})

    def drain(self) -> Dict[str, Any]:
        """Ask the daemon to finish in-flight work and shut down."""
        return self.request({"op": "drain"})

    def classify(
        self,
        schema_spec: Optional[str] = None,
        schema: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Classify a schema under both dichotomy theorems."""
        document: Dict[str, Any] = {"op": "classify"}
        if schema_spec is not None:
            document["schema_spec"] = schema_spec
        if schema is not None:
            document["schema"] = schema
        return self.request(document)

    def check(
        self,
        problem: Dict[str, Any],
        candidate: List[Any],
        request_id: Optional[Any] = None,
        **options: Any,
    ) -> Dict[str, Any]:
        """Run one repair check; ``options`` forwards ``semantics``,
        ``method``, ``timeout``, ``budget``, and ``job_id``."""
        document: Dict[str, Any] = {
            "op": "check",
            "problem": problem,
            "candidate": candidate,
        }
        if request_id is not None:
            document["id"] = request_id
        document.update(options)
        return self.request(document)

    def repair(
        self,
        problem: Dict[str, Any],
        request_id: Optional[Any] = None,
        **options: Any,
    ) -> Dict[str, Any]:
        """Construct one optimal repair; ``options`` forwards
        ``semantics``, ``seed``, ``timeout``, ``budget``, and
        ``job_id``."""
        document: Dict[str, Any] = {"op": "repair", "problem": problem}
        if request_id is not None:
            document["id"] = request_id
        document.update(options)
        return self.request(document)

    def count(
        self,
        problem: Dict[str, Any],
        query: Dict[str, Any],
        request_id: Optional[Any] = None,
        **options: Any,
    ) -> Dict[str, Any]:
        """Count the preferred repairs entailing ``query``; ``options``
        forwards ``semantics``, ``max_repairs``, and ``job_id``."""
        document: Dict[str, Any] = {
            "op": "count",
            "problem": problem,
            "query": query,
        }
        if request_id is not None:
            document["id"] = request_id
        document.update(options)
        return self.request(document)

    # -- lifecycle ---------------------------------------------------------------------

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "RepairClient":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()
