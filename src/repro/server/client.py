"""A small blocking client for the ``repro serve`` daemon.

The daemon speaks newline-delimited JSON (:mod:`repro.server.protocol`);
this client wraps one socket in just enough convenience to use from
scripts and tests without an event loop::

    from repro.server import RepairClient

    with RepairClient(socket_path="/tmp/repro.sock") as client:
        client.ping()
        response = client.check(problem_document, candidate=[0, 2])
        print(response["result"]["is_optimal"])

:meth:`send` / :meth:`recv` are exposed separately so callers can
pipeline — send many ``check`` lines, then collect responses and match
them back by ``id`` (responses to slow checks arrive late).  The typed
helpers (:meth:`check`, :meth:`classify`, ...) do one round trip and
return the raw response envelope; they do **not** raise on ``ok: false``
— overload and drain rejections are expected operating conditions the
caller handles, not exceptions.

Round trips made through :meth:`request` (and hence every typed helper)
survive connection resets: when the socket drops mid-trip — a daemon
restarting, a fleet worker being SIGKILLed under the front door — the
client reconnects and re-sends, at most ``retries`` times.  That retry
is safe because results are deterministic and content-addressed by the
request fingerprint: re-executing a lost request yields a byte-identical
verdict (at worst the daemon recomputes a result it already served, and
the persistent store usually answers the repeat warmly).  Timeouts are
**not** retried — a slow daemon may still be working, and a blind
re-send would desynchronize the response stream.  Pipelined callers
using bare :meth:`send`/:meth:`recv` manage their own recovery.
"""

from __future__ import annotations

import json
import socket
import time
from typing import Any, Dict, List, Optional

from repro.exceptions import ProtocolError, UsageError

__all__ = ["RepairClient"]


class RepairClient:
    """One connection to a running repair-checking daemon.

    Exactly one of ``socket_path`` and ``port`` must be given, matching
    how the daemon was started.  ``timeout`` bounds every socket
    operation; a daemon that stops responding surfaces as
    ``socket.timeout`` rather than a hang.  ``retries`` bounds how many
    times :meth:`request` reconnects and re-sends after a connection
    reset (0 disables); ``retry_delay`` seconds separate the attempts,
    growing linearly so a restarting daemon gets room to come back.
    """

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        timeout: float = 30.0,
        retries: int = 2,
        retry_delay: float = 0.1,
    ) -> None:
        if (socket_path is None) == (port is None):
            raise UsageError("exactly one of socket_path and port must be given")
        if retries < 0 or retry_delay < 0:
            raise UsageError("retries and retry_delay must be >= 0")
        self._socket_path = socket_path
        self._host = host
        self._port = port
        self._timeout = timeout
        self.retries = retries
        self.retry_delay = retry_delay
        #: Completed reconnects over this client's lifetime (observable
        #: so tests and callers can tell recovery happened).
        self.reconnects = 0
        self._sock: Optional[socket.socket] = None
        self._reader = None
        self._connect()

    def _connect(self) -> None:
        """(Re)establish the connection described by the constructor."""
        if self._socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self._timeout)
            sock.connect(self._socket_path)
        else:
            sock = socket.create_connection(
                (self._host, self._port), timeout=self._timeout
            )
        self._sock = sock
        self._reader = sock.makefile("rb")

    def _reconnect(self, attempt: int) -> None:
        """Tear down the dead socket and dial again (attempt >= 1)."""
        self.close()
        time.sleep(self.retry_delay * attempt)
        self._connect()
        self.reconnects += 1

    # -- transport -------------------------------------------------------------------

    def send(self, document: Dict[str, Any]) -> None:
        """Write one request line without waiting for the response."""
        self._sock.sendall((json.dumps(document) + "\n").encode("utf-8"))

    def recv(self) -> Dict[str, Any]:
        """Read the next response line (whichever request it answers)."""
        line = self._reader.readline()
        if not line:
            raise ProtocolError("connection closed by the daemon")
        return json.loads(line)

    def request(self, document: Dict[str, Any]) -> Dict[str, Any]:
        """One request/response round trip, retried across resets.

        A drop mid-trip (reset, broken pipe, EOF before the response)
        reconnects and re-sends up to ``retries`` times; the re-send is
        idempotent because results are content-addressed (see the module
        docstring).  ``socket.timeout`` is never retried.
        """
        last_error: Optional[BaseException] = None
        for attempt in range(self.retries + 1):
            if attempt:
                try:
                    self._reconnect(attempt)
                except (ConnectionError, FileNotFoundError, OSError):
                    # The daemon is not back yet; spend another attempt
                    # (each waits a little longer) rather than giving up
                    # on the first refused dial.
                    continue
            try:
                self.send(document)
                return self.recv()
            except socket.timeout:
                raise
            except (ConnectionError, ProtocolError) as exc:
                last_error = exc
        assert last_error is not None
        raise last_error

    # -- typed operations --------------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        """Liveness probe; the response carries the protocol version."""
        return self.request({"op": "ping"})

    def stats(self) -> Dict[str, Any]:
        """The daemon's live metrics snapshot."""
        return self.request({"op": "stats"})

    def drain(self) -> Dict[str, Any]:
        """Ask the daemon to finish in-flight work and shut down."""
        return self.request({"op": "drain"})

    def classify(
        self,
        schema_spec: Optional[str] = None,
        schema: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Classify a schema under both dichotomy theorems."""
        document: Dict[str, Any] = {"op": "classify"}
        if schema_spec is not None:
            document["schema_spec"] = schema_spec
        if schema is not None:
            document["schema"] = schema
        return self.request(document)

    def check(
        self,
        problem: Dict[str, Any],
        candidate: List[Any],
        request_id: Optional[Any] = None,
        **options: Any,
    ) -> Dict[str, Any]:
        """Run one repair check; ``options`` forwards ``semantics``,
        ``method``, ``timeout``, ``budget``, and ``job_id``."""
        document: Dict[str, Any] = {
            "op": "check",
            "problem": problem,
            "candidate": candidate,
        }
        if request_id is not None:
            document["id"] = request_id
        document.update(options)
        return self.request(document)

    def repair(
        self,
        problem: Dict[str, Any],
        request_id: Optional[Any] = None,
        **options: Any,
    ) -> Dict[str, Any]:
        """Construct one optimal repair; ``options`` forwards
        ``semantics``, ``seed``, ``timeout``, ``budget``, and
        ``job_id``."""
        document: Dict[str, Any] = {"op": "repair", "problem": problem}
        if request_id is not None:
            document["id"] = request_id
        document.update(options)
        return self.request(document)

    def count(
        self,
        problem: Dict[str, Any],
        query: Dict[str, Any],
        request_id: Optional[Any] = None,
        **options: Any,
    ) -> Dict[str, Any]:
        """Count the preferred repairs entailing ``query``; ``options``
        forwards ``semantics``, ``max_repairs``, and ``job_id``."""
        document: Dict[str, Any] = {
            "op": "count",
            "problem": problem,
            "query": query,
        }
        if request_id is not None:
            document["id"] = request_id
        document.update(options)
        return self.request(document)

    # -- lifecycle ---------------------------------------------------------------------

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            if self._reader is not None:
                self._reader.close()
        finally:
            if self._sock is not None:
                self._sock.close()

    def __enter__(self) -> "RepairClient":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()
