"""Admission control: bounded in-flight work, explicit rejections.

A long-lived daemon must not buffer unboundedly: every accepted ``check``
occupies a worker thread (while executing) or memory (while queued), so
under overload the correct behaviour is to *reject loudly* — the client
gets an ``overloaded`` response immediately and can back off or try a
replica — never to hang or to queue without limit.

:class:`AdmissionController` enforces two bounds as one capacity:

* ``max_inflight`` — how many admitted jobs may *execute* concurrently
  (the daemon pairs this with its executor concurrency);
* ``queue_limit`` — how many more may be *admitted and waiting* for an
  execution slot.

A job is admitted while ``admitted < max_inflight + queue_limit`` and
rejected otherwise.  The controller is deliberately synchronous and
lock-based (no asyncio types), so it can be unit-tested without an
event loop and shared by any future transport; counters land in the
service's :class:`~repro.service.metrics.MetricsRegistry` under
``server.accepted`` / ``server.rejected_overload``, with the live level
on the ``server.inflight`` gauge.
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.exceptions import UsageError
from repro.service.metrics import MetricsRegistry

__all__ = ["AdmissionController"]


class AdmissionController:
    """Counting admission control over one daemon's ``check`` traffic.

    Thread-safe; :meth:`try_admit` either takes a slot (count it with a
    matching :meth:`release`, typically in a ``finally``) or refuses
    without blocking.  There is no blocking acquire on purpose: waiting
    is the event loop's job (bounded by ``queue_limit`` admitted-but-
    not-yet-running jobs), and an unbounded blocking path is exactly
    the failure mode this class exists to prevent.
    """

    def __init__(
        self,
        max_inflight: int,
        queue_limit: int = 0,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_inflight < 1:
            raise UsageError(
                f"max_inflight must be >= 1, got {max_inflight}"
            )
        if queue_limit < 0:
            raise UsageError(f"queue_limit must be >= 0, got {queue_limit}")
        self.max_inflight = max_inflight
        self.queue_limit = queue_limit
        self._admitted = 0
        self._lock = threading.Lock()
        self._metrics = metrics or MetricsRegistry()
        # Pre-register so every stats snapshot reports the pair, zero or
        # not (the serve summary line and dashboards rely on presence).
        self._metrics.counter("server.accepted")
        self._metrics.counter("server.rejected_overload")
        self._metrics.gauge("server.inflight")

    @property
    def capacity(self) -> int:
        """Total admitted jobs allowed at once (executing + queued)."""
        return self.max_inflight + self.queue_limit

    @property
    def admitted(self) -> int:
        """How many admitted jobs have not been released yet."""
        with self._lock:
            return self._admitted

    def try_admit(self) -> bool:
        """Take one slot if any is free; never blocks.

        Returns True when the job may proceed (pair with
        :meth:`release`), False when the daemon is at capacity — the
        caller must answer ``overloaded`` instead of queueing.
        """
        with self._lock:
            if self._admitted >= self.capacity:
                self._metrics.counter("server.rejected_overload").increment()
                return False
            self._admitted += 1
        self._metrics.counter("server.accepted").increment()
        self._metrics.gauge("server.inflight").increment()
        return True

    def release(self) -> None:
        """Give back one admitted slot."""
        with self._lock:
            if self._admitted <= 0:
                raise UsageError("release() without a matching try_admit()")
            self._admitted -= 1
        self._metrics.gauge("server.inflight").decrement()

    def __repr__(self) -> str:
        return (
            f"AdmissionController({self.admitted}/{self.capacity} admitted, "
            f"max_inflight={self.max_inflight}, "
            f"queue_limit={self.queue_limit})"
        )
