"""``repro.server`` — the persistent async repair-checking daemon.

The batch service (:mod:`repro.service`) answers "check these N
candidates" as one process-lifetime invocation; this package keeps that
service *warm* behind a socket so interactive and streaming callers
amortize start-up, classification, and cache temperature across
requests:

* :mod:`repro.server.protocol` — the newline-delimited JSON wire
  protocol (``check`` / ``classify`` / ``ping`` / ``stats`` /
  ``drain``), transport-free;
* :mod:`repro.server.admission` — bounded in-flight admission control
  with explicit ``overloaded`` rejections;
* :mod:`repro.server.daemon` — the asyncio server: pipelined
  connections, a worker-thread pool calling
  :meth:`~repro.service.RepairService.run_job`, graceful drain on
  SIGINT/SIGTERM;
* :mod:`repro.server.client` — a small blocking client for scripts and
  tests, with bounded reconnect-and-retry on connection resets;
* :mod:`repro.server.hashring` — the deterministic consistent-hash ring
  placing problems on fleet workers;
* :mod:`repro.server.fleet` — the supervised multi-worker fleet: N
  daemon workers behind one front door, heartbeat liveness, seeded
  backoff restarts behind a circuit breaker, at-most-once failover, a
  shared crash-surviving result store, and fleet-wide graceful drain.

Start one with ``repro serve --socket /tmp/repro.sock`` (see the CLI)
or embed it: ``RepairServer(service, ServerConfig(port=0)).run()``.
A fleet: ``repro serve --workers 4 --port 0 --state-dir /tmp/fleet``.
"""

from repro.server.admission import AdmissionController
from repro.server.client import RepairClient
from repro.server.daemon import RepairServer, ServerConfig
from repro.server.fleet import FleetConfig, FleetSupervisor
from repro.server.hashring import HashRing
from repro.server.protocol import (
    ERROR_CODES,
    MAX_LINE_BYTES,
    OPS,
    PROTOCOL_VERSION,
    Request,
    encode_response,
    error_response,
    ok_response,
    parse_request,
)

__all__ = [
    "AdmissionController",
    "RepairClient",
    "RepairServer",
    "ServerConfig",
    "FleetConfig",
    "FleetSupervisor",
    "HashRing",
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "OPS",
    "ERROR_CODES",
    "Request",
    "parse_request",
    "encode_response",
    "ok_response",
    "error_response",
]
