"""``repro serve --workers N``: the supervised sharded daemon fleet.

One :class:`~repro.server.daemon.RepairServer` saturates at its thread
pool; the coNP-hard side of the dichotomies makes individual requests
expensive enough that a serving tier needs both horizontal scale and
the ability to lose a worker mid-search without losing correctness.
:class:`FleetSupervisor` provides both behind one front-door socket:

* **shard** — N ``repro serve`` daemon *worker processes*, each a full
  single-daemon stack (own event loop,
  :class:`~repro.server.admission.AdmissionController`, thread pool,
  write-ahead journal).  Job-bearing requests (``check`` / ``repair`` /
  ``count``) are routed by a deterministic consistent hash
  (:class:`~repro.server.hashring.HashRing`) of the request's problem
  document, so each worker's parsed-problem and result caches stay hot
  for the problems it owns.
* **multiplex** — any number of client connections speak the ordinary
  NDJSON protocol to the front door; the supervisor rewrites request
  ``id``s to fleet-unique tokens, forwards lines to the owning worker
  over a persistent connection, and maps responses back to the issuing
  client with the original ``id`` restored.  Clients cannot tell a
  fleet from a single daemon (the chaos drills assert byte-identical
  verdicts).
* **supervise** — a heartbeat loop pings every worker over the
  protocol itself; a worker that misses ``heartbeat_misses``
  consecutive beats is declared wedged and SIGKILLed.  Worker death
  (crash, kill, wedge escalation) triggers a restart under the seeded
  full-jitter backoff of
  :class:`~repro.service.resilience.RetryPolicy`, gated by a per-worker
  :class:`~repro.service.resilience.CircuitBreaker`: a worker that
  keeps dying right after boot stops being restarted until the
  breaker's reset window admits a half-open probe, and only an uptime
  of ``stable_after`` seconds closes the breaker again.
* **fail over** — requests in flight on a dead worker are re-dispatched
  **at most once** to the next live worker on the ring; a second death
  (or an empty ring) turns them into ``unavailable`` errors instead of
  silent loss or unbounded retry.  Re-execution is safe because worker
  results are deterministic and content-addressed — a lost response
  recomputed elsewhere is byte-identical.
* **share results** — all workers open the same WAL-mode
  :class:`~repro.service.store.SqliteStore`, so a verdict computed by
  any worker (or any *previous incarnation* of a worker) is a warm hit
  for every other one.
* **drain** — SIGINT/SIGTERM (or a client ``drain``) stops the front
  door, forwards ``drain`` to every worker (each finishes in-flight
  jobs, flushes its journal, exits 0), reaps the processes, and returns
  the final fleet snapshot; the supervisor then exits 0.

Fleet state (worker pids, liveness, restart counts) is snapshotted to
``state_dir/fleet-state.json`` through
:func:`repro.fsutil.atomic_write_text` on every transition, so an
operator — or a post-mortem — always reads a complete, un-torn view.
"""

from __future__ import annotations

import asyncio
import contextlib
import hashlib
import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple, Union

from repro.exceptions import TransientWorkerError, UsageError
from repro.fsutil import atomic_write_text
from repro.server.hashring import HashRing
from repro.server.protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    encode_response,
    error_response,
    ok_response,
    parse_request,
)
from repro.service.faults import FleetFaultPlan
from repro.service.metrics import MetricsRegistry
from repro.service.resilience import CircuitBreaker, RetryPolicy

__all__ = ["FleetConfig", "FleetSupervisor"]

#: Job-bearing ops routed by problem ownership (everything else that
#: reaches a worker — classify — round-robins across live workers).
_POOLED_OPS = ("check", "repair", "count")

#: Counters pre-registered at supervisor construction so every fleet
#: stats snapshot reports them, zero or not.
_WELL_KNOWN_FLEET_COUNTERS = (
    "fleet.dispatched",
    "fleet.responses",
    "fleet.redispatched",
    "fleet.unavailable",
    "fleet.worker_deaths",
    "fleet.restarts",
    "fleet.heartbeat_misses",
    "fleet.heartbeat_escalations",
    "fleet.connections",
    "fleet.requests",
    "fleet.bad_requests",
)


@dataclass(frozen=True)
class FleetConfig:
    """Shape and robustness knobs for a :class:`FleetSupervisor`.

    Front-door transport mirrors
    :class:`~repro.server.daemon.ServerConfig`: exactly one of
    ``socket_path`` and ``port`` must be set.  ``state_dir`` holds the
    per-worker unix sockets, journals, logs, the shared sqlite store,
    and the fleet-state snapshot; keep it on a short path (unix socket
    paths are length-limited).

    Attributes
    ----------
    workers:
        Fleet size (>= 1; the CLI uses 1 to mean "no fleet at all").
    max_inflight / queue_limit / cache_size / default_timeout /
    default_node_budget / breaker_threshold / breaker_reset_seconds /
    core_backend / worker_chaos:
        Forwarded verbatim to each worker's ``repro serve`` argv.
    share_store / store:
        Open one WAL-mode sqlite result store — at ``store`` when
        given, else under ``state_dir`` — and hand it to every worker
        (cache hits survive restarts and are shared across the fleet);
        ``share_store=False`` with no ``store`` disables the tier.
    heartbeat_interval / heartbeat_misses:
        Liveness probing: a worker missing ``heartbeat_misses``
        consecutive pings is SIGKILLed as wedged (its restart then
        follows the ordinary death path).
    restart_base / restart_cap / restart_seed:
        The seeded full-jitter backoff between a worker's death and its
        respawn (:class:`~repro.service.resilience.RetryPolicy`; the
        sequence for a fixed seed is reproducible, property-tested).
    worker_breaker_threshold / worker_breaker_reset:
        Consecutive deaths that stop a worker's restarts until the
        breaker's reset window admits a half-open probe (0 disables).
    stable_after:
        Seconds of uptime after which a restarted worker counts as
        recovered (closes its breaker and resets its backoff attempt
        counter) — success is *stability*, not merely booting.
    boot_timeout:
        Seconds to wait for a spawned worker's socket to accept.
    fault_plan:
        An optional :class:`~repro.service.faults.FleetFaultPlan`
        driving the chaos drills (deterministic kills and heartbeat
        wedges).
    """

    workers: int = 2
    socket_path: Optional[str] = None
    host: str = "127.0.0.1"
    port: Optional[int] = None
    state_dir: str = ""
    max_inflight: int = 8
    queue_limit: int = 16
    cache_size: int = 2048
    default_timeout: Optional[float] = None
    default_node_budget: Optional[int] = 100_000
    breaker_threshold: int = 5
    breaker_reset_seconds: float = 30.0
    core_backend: Optional[str] = None
    worker_chaos: Optional[str] = None
    share_store: bool = True
    store: Optional[str] = None
    heartbeat_interval: float = 0.5
    heartbeat_misses: int = 3
    restart_base: float = 0.05
    restart_cap: float = 1.0
    restart_seed: int = 0
    worker_breaker_threshold: int = 3
    worker_breaker_reset: float = 30.0
    stable_after: float = 1.0
    boot_timeout: float = 30.0
    max_line_bytes: int = MAX_LINE_BYTES
    fault_plan: Optional[FleetFaultPlan] = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise UsageError(f"workers must be >= 1, got {self.workers}")
        if (self.socket_path is None) == (self.port is None):
            raise UsageError(
                "exactly one of socket_path and port must be given"
            )
        if not self.state_dir:
            raise UsageError("a fleet needs a state_dir")
        if self.heartbeat_interval <= 0:
            raise UsageError("heartbeat_interval must be > 0")
        if self.heartbeat_misses < 1:
            raise UsageError("heartbeat_misses must be >= 1")
        if self.stable_after < 0 or self.boot_timeout <= 0:
            raise UsageError("stable_after/boot_timeout out of range")

    @property
    def store_path(self) -> Optional[str]:
        """The shared persistent store file (None when disabled)."""
        if self.store is not None:
            return self.store
        if not self.share_store:
            return None
        return str(Path(self.state_dir) / "store.sqlite")

    def worker_names(self) -> List[str]:
        return [f"w{index}" for index in range(self.workers)]


@dataclass
class _Worker:
    """One supervised daemon worker's mutable bookkeeping."""

    name: str
    socket_path: str
    journal_path: str
    log_path: str
    proc: Optional[subprocess.Popen] = None
    reader: Optional[asyncio.StreamReader] = None
    writer: Optional[asyncio.StreamWriter] = None
    reader_task: Optional["asyncio.Task[None]"] = None
    alive: bool = False
    down_handled: bool = True
    restarts: int = 0
    restart_attempts: int = 0
    dispatches: int = 0
    misses: int = 0
    started_at: float = 0.0


@dataclass
class _Pending:
    """One request in flight between a client and a worker."""

    token: str
    worker: str
    doc: Dict[str, Any]
    original_id: Any = None
    key: Optional[str] = None
    client_writer: Optional[asyncio.StreamWriter] = None
    client_lock: Optional[asyncio.Lock] = None
    future: Optional["asyncio.Future[Optional[Dict[str, Any]]]"] = None
    redispatched: bool = False


class FleetSupervisor:
    """N supervised ``repro serve`` workers behind one front door.

    Lifecycle mirrors :class:`~repro.server.daemon.RepairServer`:
    :meth:`run` (blocking, installs signal handlers) for the CLI;
    :meth:`start` / :meth:`request_drain` / :meth:`wait_drained` for
    tests driving an event loop directly.
    """

    def __init__(
        self,
        config: FleetConfig,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config
        self.metrics = metrics or MetricsRegistry()
        self.ring = HashRing(config.worker_names())
        state = Path(config.state_dir)
        self.workers: Dict[str, _Worker] = {
            name: _Worker(
                name=name,
                socket_path=str(state / f"{name}.sock"),
                journal_path=str(state / f"{name}.wal"),
                log_path=str(state / f"{name}.log"),
            )
            for name in config.worker_names()
        }
        self._breaker = CircuitBreaker(
            config.worker_breaker_threshold,
            config.worker_breaker_reset,
            metrics=self.metrics,
        )
        self._retry = RetryPolicy(
            config.restart_base, config.restart_cap, config.restart_seed
        )
        self._pending: Dict[str, _Pending] = {}
        self._tokens = 0
        self._rotation = 0
        self._beat = 0
        self._state_seq = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._drain_requested: Optional[asyncio.Event] = None
        self._draining = False
        self._heartbeat_task: Optional["asyncio.Task[None]"] = None
        self._aux_tasks: Set["asyncio.Task[None]"] = set()
        self._client_writers: Set[asyncio.StreamWriter] = set()
        self._started_at = 0.0
        for name in _WELL_KNOWN_FLEET_COUNTERS:
            self.metrics.counter(name)

    # -- lifecycle -------------------------------------------------------------------

    @property
    def address(self) -> Union[str, Tuple[str, int], None]:
        """Where the front door listens: a path or ``(host, port)``."""
        if self._server is None:
            return None
        if self.config.socket_path is not None:
            return self.config.socket_path
        for sock in self._server.sockets or ():
            host, port = sock.getsockname()[:2]
            return (host, port)
        return None

    async def start(self) -> None:
        """Spawn every worker, connect to each, open the front door."""
        if self._server is not None:
            raise UsageError("fleet already started")
        self._drain_requested = asyncio.Event()
        await asyncio.to_thread(
            os.makedirs, self.config.state_dir, exist_ok=True
        )
        await asyncio.gather(
            *(self._boot_worker(worker) for worker in self.workers.values())
        )
        if self.config.socket_path is not None:
            with contextlib.suppress(FileNotFoundError):
                await asyncio.to_thread(os.unlink, self.config.socket_path)
            self._server = await asyncio.start_unix_server(
                self._handle_connection,
                path=self.config.socket_path,
                limit=self.config.max_line_bytes,
            )
        else:
            self._server = await asyncio.start_server(
                self._handle_connection,
                host=self.config.host,
                port=self.config.port,
                limit=self.config.max_line_bytes,
            )
        self._started_at = time.monotonic()
        self._heartbeat_task = asyncio.create_task(self._heartbeat_loop())
        self.metrics.record_event("fleet_start", address=str(self.address))
        await self._write_state()

    def request_drain(self) -> None:
        """Begin a fleet-wide graceful drain (idempotent, signal-safe)."""
        self._draining = True
        if self._drain_requested is not None:
            self._drain_requested.set()

    async def wait_drained(self) -> Dict[str, Any]:
        """Block until drain is requested, then drain the whole fleet.

        The front door closes first (no new work), every worker is sent
        a protocol ``drain`` (it finishes in-flight jobs, flushes its
        journal, and exits 0), the worker processes are reaped, and the
        final fleet snapshot is returned.
        """
        if self._drain_requested is None or self._server is None:
            raise UsageError("fleet is not started")
        await self._drain_requested.wait()
        self._draining = True
        self._server.close()
        await self._server.wait_closed()
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._heartbeat_task
        for task in list(self._aux_tasks):
            task.cancel()
        # Forward the drain; each worker finishes its in-flight jobs and
        # writes their responses before closing, so the reader tasks
        # deliver every outstanding answer on their way to EOF.
        for worker in self.workers.values():
            if worker.alive and worker.writer is not None:
                with contextlib.suppress(ConnectionError, OSError):
                    worker.writer.write(b'{"op": "drain"}\n')
                    await worker.writer.drain()
        reader_tasks = [
            worker.reader_task
            for worker in self.workers.values()
            if worker.reader_task is not None
        ]
        if reader_tasks:
            await asyncio.gather(*reader_tasks, return_exceptions=True)
        for worker in self.workers.values():
            await self._reap(worker)
        for writer in list(self._client_writers):
            writer.close()
        self.metrics.record_event(
            "fleet_drain", uptime=time.monotonic() - self._started_at
        )
        await self._write_state()
        return self.stats_payload()

    async def drain(self) -> Dict[str, Any]:
        """Request a drain and wait for it (test convenience)."""
        self.request_drain()
        return await self.wait_drained()

    def run(self, on_ready: Optional[Any] = None) -> Dict[str, Any]:
        """Serve until SIGINT/SIGTERM (or a ``drain`` request); blocking."""
        return asyncio.run(self._run_async(on_ready))

    async def _run_async(
        self, on_ready: Optional[Any] = None
    ) -> Dict[str, Any]:
        await self.start()
        if on_ready is not None:
            on_ready(self.address)
        loop = asyncio.get_running_loop()
        installed = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, self.request_drain)
                installed.append(signum)
            except (NotImplementedError, RuntimeError):
                break
        try:
            return await self.wait_drained()
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)

    # -- worker process management ----------------------------------------------------

    def _worker_argv(self, worker: _Worker) -> List[str]:
        argv = [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--socket",
            worker.socket_path,
            "--journal",
            worker.journal_path,
            "--max-inflight",
            str(self.config.max_inflight),
            "--queue-limit",
            str(self.config.queue_limit),
            "--cache-size",
            str(self.config.cache_size),
            "--breaker-threshold",
            str(self.config.breaker_threshold),
            "--breaker-reset",
            str(self.config.breaker_reset_seconds),
        ]
        if self.config.store_path is not None:
            argv += ["--store", self.config.store_path]
        if self.config.default_timeout is not None:
            argv += ["--timeout", str(self.config.default_timeout)]
        if self.config.default_node_budget is not None:
            argv += ["--budget", str(self.config.default_node_budget)]
        if self.config.core_backend is not None:
            argv += ["--core-backend", self.config.core_backend]
        if self.config.worker_chaos is not None:
            argv += ["--chaos", self.config.worker_chaos]
        return argv

    def _spawn_sync(self, worker: _Worker) -> subprocess.Popen:
        """Launch one worker process (runs on the thread pool: Popen,
        the log open, and the stale-socket unlink all block)."""
        with contextlib.suppress(FileNotFoundError):
            os.unlink(worker.socket_path)
        env = dict(os.environ)
        # The directory holding the `repro` package (this file lives at
        # <src_root>/repro/server/fleet.py) — workers must import the
        # same tree as the supervisor even without an installed dist.
        src_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing
            else os.pathsep.join([src_root, existing])
        )
        with open(worker.log_path, "ab") as log:
            return subprocess.Popen(
                self._worker_argv(worker),
                stdout=log,
                stderr=subprocess.STDOUT,
                stdin=subprocess.DEVNULL,
                env=env,
                start_new_session=True,  # terminal signals stay ours
            )

    async def _boot_worker(self, worker: _Worker) -> None:
        """Spawn one worker and wait for its socket to accept."""
        worker.proc = await asyncio.to_thread(self._spawn_sync, worker)
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.boot_timeout
        while True:
            if worker.proc.poll() is not None:
                raise TransientWorkerError(
                    f"worker {worker.name} exited with code "
                    f"{worker.proc.returncode} during boot "
                    f"(see {worker.log_path})"
                )
            try:
                reader, writer = await asyncio.open_unix_connection(
                    worker.socket_path, limit=self.config.max_line_bytes
                )
                break
            except (ConnectionError, FileNotFoundError, OSError):
                if loop.time() >= deadline:
                    raise TransientWorkerError(
                        f"worker {worker.name} did not accept on "
                        f"{worker.socket_path} within "
                        f"{self.config.boot_timeout}s"
                    ) from None
                await asyncio.sleep(0.05)
        worker.reader = reader
        worker.writer = writer
        worker.alive = True
        worker.down_handled = False
        worker.misses = 0
        worker.started_at = time.monotonic()
        worker.reader_task = asyncio.create_task(self._read_worker(worker))

    async def _reap(self, worker: _Worker) -> None:
        """Collect one worker process, escalating to SIGKILL if needed."""
        if worker.writer is not None:
            worker.writer.close()
            worker.writer = None
        proc = worker.proc
        if proc is None:
            return
        try:
            await asyncio.to_thread(proc.wait, 10.0)
        except subprocess.TimeoutExpired:
            proc.kill()
            await asyncio.to_thread(proc.wait)
        worker.alive = False

    def _alive(self) -> List[str]:
        return [
            name for name, worker in self.workers.items() if worker.alive
        ]

    # -- the front door ----------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.metrics.counter("fleet.connections").increment()
        self._client_writers.add(writer)
        lock = asyncio.Lock()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    self.metrics.counter("fleet.bad_requests").increment()
                    await self._send_client(
                        writer,
                        lock,
                        error_response(
                            None,
                            "bad-request",
                            f"request line exceeds "
                            f"{self.config.max_line_bytes} bytes",
                        ),
                    )
                    break
                if not line:
                    break
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                self.metrics.counter("fleet.requests").increment()
                try:
                    request = parse_request(text)
                except Exception as exc:  # ProtocolError, by contract
                    self.metrics.counter("fleet.bad_requests").increment()
                    await self._send_client(
                        writer,
                        lock,
                        error_response(None, "bad-request", str(exc)),
                    )
                    continue
                document = json.loads(text)
                if request.op == "ping":
                    await self._send_client(
                        writer,
                        lock,
                        ok_response(
                            request.request_id,
                            pong=True,
                            protocol=PROTOCOL_VERSION,
                            fleet=self.config.workers,
                        ),
                    )
                elif request.op == "stats":
                    await self._send_client(
                        writer, lock, await self._stats_response(request)
                    )
                elif request.op == "drain":
                    await self._send_client(
                        writer,
                        lock,
                        ok_response(request.request_id, draining=True),
                    )
                    self.request_drain()
                else:
                    await self._route(document, request.op, writer, lock)
        finally:
            self._client_writers.discard(writer)
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()

    async def _send_client(
        self,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
        response: Dict[str, Any],
    ) -> None:
        payload = encode_response(response)
        async with lock:
            if writer.is_closing():
                return
            writer.write(payload)
            with contextlib.suppress(ConnectionError, OSError):
                await writer.drain()

    def _routing_key(self, document: Dict[str, Any]) -> str:
        """The placement key: the canonical digest of the problem doc.

        Matches the single daemon's parsed-problem cache key, so one
        problem always lands on (and stays warm at) one worker.
        """
        return hashlib.sha256(
            json.dumps(
                document.get("problem"), sort_keys=True, default=str
            ).encode("utf-8")
        ).hexdigest()

    def _pick_worker(
        self, op: str, key: Optional[str], exclude: Tuple[str, ...] = ()
    ) -> Optional[str]:
        """The live worker to serve a request (None = nobody can)."""
        alive = [name for name in self._alive() if name not in exclude]
        if not alive:
            return None
        if op in _POOLED_OPS and key is not None:
            for name in self.ring.preference(key):
                if name in alive:
                    return name
            return None
        # classify (and anything else forwarded): cheap and stateless —
        # rotate across live workers.
        self._rotation += 1
        return alive[self._rotation % len(alive)]

    async def _route(
        self,
        document: Dict[str, Any],
        op: str,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
    ) -> None:
        if self._draining:
            await self._send_client(
                writer,
                lock,
                error_response(
                    document.get("id"),
                    "draining",
                    "fleet is draining and accepts no new jobs",
                ),
            )
            return
        key = self._routing_key(document) if op in _POOLED_OPS else None
        target = self._pick_worker(op, key)
        if target is None:
            self.metrics.counter("fleet.unavailable").increment()
            await self._send_client(
                writer,
                lock,
                error_response(
                    document.get("id"),
                    "unavailable",
                    "no live worker can take this job; the fleet is "
                    "restarting workers — retry shortly",
                ),
            )
            return
        self._tokens += 1
        token = f"fleet-{self._tokens}"
        forwarded = dict(document)
        original_id = forwarded.get("id")
        forwarded["id"] = token
        entry = _Pending(
            token=token,
            worker=target,
            doc=forwarded,
            original_id=original_id,
            key=key,
            client_writer=writer,
            client_lock=lock,
        )
        self._pending[token] = entry
        await self._dispatch(entry)

    async def _dispatch(self, entry: _Pending) -> None:
        """Forward one pending request line to its assigned worker."""
        worker = self.workers[entry.worker]
        payload = (json.dumps(entry.doc, default=str) + "\n").encode("utf-8")
        try:
            if worker.writer is None:
                raise ConnectionResetError("worker connection is gone")
            worker.writer.write(payload)
            await worker.writer.drain()
        except (ConnectionError, OSError):
            # The worker died under us; its down-handler (below) fails
            # this entry over or answers unavailable.
            await self._on_worker_down(worker)
            return
        self.metrics.counter("fleet.dispatched").increment()
        if entry.doc.get("op") in _POOLED_OPS:
            worker.dispatches += 1
            plan = self.config.fault_plan
            if plan is not None and plan.should_kill(
                worker.name, worker.dispatches
            ):
                # The drill: SIGKILL mid-load, right after the job
                # left for the worker.  The reader task sees EOF and
                # the ordinary death path takes over.
                self.metrics.record_event(
                    "fleet_fault_kill",
                    worker=worker.name,
                    dispatch=worker.dispatches,
                )
                if worker.proc is not None and worker.proc.poll() is None:
                    worker.proc.kill()

    # -- worker responses and death ----------------------------------------------------

    async def _read_worker(self, worker: _Worker) -> None:
        """Pump one worker's responses back to their issuers until EOF."""
        try:
            while True:
                if worker.reader is None:
                    break
                line = await worker.reader.readline()
                if not line:
                    break
                try:
                    document = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if not isinstance(document, dict):
                    continue
                entry = self._pending.pop(document.get("id"), None)
                if entry is None:
                    continue
                self.metrics.counter("fleet.responses").increment()
                if entry.future is not None:
                    if not entry.future.done():
                        entry.future.set_result(document)
                    continue
                document["id"] = entry.original_id
                await self._send_client(
                    entry.client_writer, entry.client_lock, document
                )
        finally:
            await self._on_worker_down(worker)

    async def _on_worker_down(self, worker: _Worker) -> None:
        """The single funnel for a worker's death (idempotent).

        Marks it dead, fails its in-flight requests over (at most once
        each), records the death on its breaker, and schedules the
        backoff-gated restart — unless the fleet is draining, in which
        case worker exit is the *expected* path and nothing restarts.
        """
        if worker.down_handled or self._draining:
            return
        worker.down_handled = True
        worker.alive = False
        worker.misses = 0
        self.metrics.counter("fleet.worker_deaths").increment()
        self.metrics.record_event("fleet_worker_down", worker=worker.name)
        if worker.writer is not None:
            worker.writer.close()
            worker.writer = None
        worker.reader = None
        self._breaker.record(worker.name, failure=True)
        await self._failover(worker.name)
        await self._write_state()
        task = asyncio.create_task(self._restart_worker(worker))
        self._aux_tasks.add(task)
        task.add_done_callback(self._aux_tasks.discard)

    async def _failover(self, dead: str) -> None:
        """Re-dispatch (once) or fail every request in flight on ``dead``."""
        stranded = [
            entry
            for entry in self._pending.values()
            if entry.worker == dead
        ]
        for entry in stranded:
            self._pending.pop(entry.token, None)
            if entry.future is not None:
                if not entry.future.done():
                    entry.future.set_result(None)
                continue
            target = (
                None
                if entry.redispatched
                else self._pick_worker(
                    entry.doc.get("op"), entry.key, exclude=(dead,)
                )
            )
            if target is None:
                self.metrics.counter("fleet.unavailable").increment()
                await self._send_client(
                    entry.client_writer,
                    entry.client_lock,
                    error_response(
                        entry.original_id,
                        "unavailable",
                        f"the worker serving this job died and it "
                        f"cannot be re-dispatched "
                        f"({'already re-dispatched once' if entry.redispatched else 'no live worker'}); "
                        f"safe to retry",
                    ),
                )
                continue
            entry.redispatched = True
            entry.worker = target
            self._pending[entry.token] = entry
            self.metrics.counter("fleet.redispatched").increment()
            self.metrics.record_event(
                "fleet_redispatch", token=entry.token, to=target
            )
            await self._dispatch(entry)

    async def _restart_worker(self, worker: _Worker) -> None:
        """Respawn one dead worker under backoff, gated by its breaker."""
        while not self._draining:
            if not self._breaker.allow(worker.name):
                # Open circuit: this worker keeps dying on boot.  Wait
                # out (a slice of) the reset window, then re-check —
                # allow() flips to half-open and lets one probe through.
                await asyncio.sleep(self.config.heartbeat_interval)
                continue
            worker.restart_attempts += 1
            delay = self._retry.delay(worker.name, worker.restart_attempts)
            await asyncio.sleep(delay)
            if self._draining:
                return
            try:
                await self._boot_worker(worker)
            except TransientWorkerError:
                self._breaker.record(worker.name, failure=True)
                continue
            worker.restarts += 1
            self.metrics.counter("fleet.restarts").increment()
            self.metrics.record_event(
                "fleet_worker_restart",
                worker=worker.name,
                attempt=worker.restart_attempts,
            )
            await self._write_state()
            task = asyncio.create_task(self._stabilize(worker))
            self._aux_tasks.add(task)
            task.add_done_callback(self._aux_tasks.discard)
            return

    async def _stabilize(self, worker: _Worker) -> None:
        """Count a restart as recovery only after ``stable_after`` uptime.

        Closing the breaker on first contact would defeat it — a worker
        crash-looping two seconds after boot would restart forever.
        """
        started = worker.started_at
        await asyncio.sleep(self.config.stable_after)
        if worker.alive and worker.started_at == started:
            self._breaker.record(worker.name, failure=False)
            worker.restart_attempts = 0

    # -- heartbeats --------------------------------------------------------------------

    async def _heartbeat_loop(self) -> None:
        while not self._draining:
            await asyncio.sleep(self.config.heartbeat_interval)
            self._beat += 1
            plan = self.config.fault_plan
            for worker in list(self.workers.values()):
                if not worker.alive or self._draining:
                    continue
                if plan is not None and plan.wedged(worker.name, self._beat):
                    # The wedge drill: pretend the worker went silent.
                    answered = False
                else:
                    answered = await self._ping_worker(worker)
                if answered:
                    worker.misses = 0
                    continue
                worker.misses += 1
                self.metrics.counter("fleet.heartbeat_misses").increment()
                if worker.misses >= self.config.heartbeat_misses:
                    # Wedged: SIGKILL and let the death path restart it.
                    self.metrics.counter(
                        "fleet.heartbeat_escalations"
                    ).increment()
                    self.metrics.record_event(
                        "fleet_heartbeat_escalation",
                        worker=worker.name,
                        misses=worker.misses,
                    )
                    if worker.proc is not None and worker.proc.poll() is None:
                        worker.proc.kill()

    async def _ping_worker(self, worker: _Worker) -> bool:
        """One liveness probe over the protocol; False on any failure."""
        response = await self._ask_worker(
            worker, {"op": "ping"}, timeout=self.config.heartbeat_interval
        )
        return bool(response and response.get("ok"))

    async def _ask_worker(
        self,
        worker: _Worker,
        document: Dict[str, Any],
        timeout: float,
    ) -> Optional[Dict[str, Any]]:
        """An internal request to one worker (stats, pings); None on
        death, disconnect, or timeout."""
        if not worker.alive or worker.writer is None:
            return None
        self._tokens += 1
        token = f"fleet-{self._tokens}"
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Optional[Dict[str, Any]]]" = (
            loop.create_future()
        )
        request = dict(document)
        request["id"] = token
        self._pending[token] = _Pending(
            token=token, worker=worker.name, doc=request, future=future
        )
        try:
            worker.writer.write(
                (json.dumps(request) + "\n").encode("utf-8")
            )
            await worker.writer.drain()
        except (ConnectionError, OSError):
            self._pending.pop(token, None)
            await self._on_worker_down(worker)
            return None
        try:
            return await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            self._pending.pop(token, None)
            return None

    # -- observability -----------------------------------------------------------------

    def stats_payload(self) -> Dict[str, Any]:
        """The supervisor-side fleet snapshot (no worker round trips)."""
        snapshot = self.metrics.snapshot()
        return {
            "protocol": PROTOCOL_VERSION,
            "fleet": True,
            "draining": self._draining,
            "uptime": (
                time.monotonic() - self._started_at
                if self._started_at
                else 0.0
            ),
            "address": str(self.address),
            "counters": snapshot["counters"],
            "gauges": snapshot["gauges"],
            "histograms": snapshot["histograms"],
            "events": len(snapshot["events"]),
            "store_path": self.config.store_path,
            "workers": {
                name: {
                    "alive": worker.alive,
                    "pid": worker.proc.pid if worker.proc else None,
                    "restarts": worker.restarts,
                    "dispatches": worker.dispatches,
                    "breaker": self._breaker.state_of(name),
                }
                for name, worker in self.workers.items()
            },
        }

    async def _stats_response(self, request: Any) -> Dict[str, Any]:
        """The ``stats`` op: fleet snapshot plus per-worker snapshots."""
        payload = self.stats_payload()
        worker_stats: Dict[str, Any] = {}
        for name, worker in self.workers.items():
            if not worker.alive:
                worker_stats[name] = None
                continue
            response = await self._ask_worker(
                worker, {"op": "stats"}, timeout=2.0
            )
            worker_stats[name] = (
                response.get("stats")
                if response and response.get("ok")
                else None
            )
        payload["worker_stats"] = worker_stats
        return ok_response(request.request_id, stats=payload)

    async def _write_state(self) -> None:
        """Snapshot fleet state to disk, crash-atomically."""
        self._state_seq += 1
        state = {
            "seq": self._state_seq,
            "draining": self._draining,
            "store": self.config.store_path,
            "workers": {
                name: {
                    "alive": worker.alive,
                    "pid": worker.proc.pid if worker.proc else None,
                    "restarts": worker.restarts,
                    "socket": worker.socket_path,
                    "journal": worker.journal_path,
                    "breaker": self._breaker.state_of(name),
                }
                for name, worker in self.workers.items()
            },
        }
        path = Path(self.config.state_dir) / "fleet-state.json"
        text = json.dumps(state, indent=2, sort_keys=True)
        try:
            await asyncio.to_thread(atomic_write_text, path, text)
        except OSError:
            # State snapshots are advisory; a full disk must not take
            # the fleet down.
            self.metrics.counter("fleet.state_write_errors").increment()
