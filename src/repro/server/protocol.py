"""The daemon's wire protocol: newline-delimited JSON requests.

One connection carries a stream of requests, one JSON object per line;
the daemon answers with one JSON object per line.  Requests may be
pipelined — a client can send several ``check`` lines before reading any
response — so every response echoes the request's ``id`` and responses
to slow checks may arrive after responses to later, faster requests.

Request shapes (``id`` is optional everywhere and echoed verbatim)::

    {"op": "ping", "id": 1}
    {"op": "stats"}
    {"op": "drain"}
    {"op": "classify", "schema_spec": "R:3; 1 -> 2; 2 -> 3"}
    {"op": "classify", "schema": {...repro.io schema document...}}
    {"op": "check", "id": "r1",
     "problem": {...repro.io prioritizing document...},
     "candidate": [0, 2],              // indices or fact objects, as in
                                       // repro.service.batch_io
     "semantics": "global",            // optional; also: method,
     "timeout": 5.0, "budget": 100000, // job_id
    }
    {"op": "repair", "id": "r2",       // construct an optimal repair
     "problem": {...},
     "semantics": "pareto",            // optional; also: seed, timeout,
     "budget": 1000, "job_id": "j7",   // budget
    }
    {"op": "count", "id": "r3",        // count entailing repairs
     "problem": {...},
     "query": {"head": [], "body": [{"relation": "R",
               "terms": [{"const": 1}, {"var": "x"}]}]},
     "semantics": "global",            // optional; also: job_id,
     "max_repairs": 10000,             // max_repairs
    }

Success responses are ``{"id": ..., "ok": true, ...payload}``; failures
are ``{"id": ..., "ok": false, "error": {"code": ..., "message": ...}}``
with codes ``bad-request`` (malformed request — the connection stays
up), ``overloaded`` (the admission controller rejected the job;
retry against a less busy server), ``draining`` (the daemon is shutting
down and accepts no new work), ``internal``, and ``unavailable`` (the
fleet front door could not place the job on any live worker — the
owning worker died mid-request and its at-most-once re-dispatch budget
is spent, or every candidate worker is down; safe to retry once the
fleet recovers).

This module is transport-free: it parses and renders single lines.
Framing (readline loops, length limits) lives in
:mod:`repro.server.daemon`; :class:`Request` is what a parsed line
becomes on its way to the service.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.exceptions import ProtocolError

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE_BYTES",
    "OPS",
    "ERROR_CODES",
    "Request",
    "parse_request",
    "encode_response",
    "ok_response",
    "error_response",
]

#: Bumped on any incompatible wire change; echoed by ``ping``.
PROTOCOL_VERSION = 1

#: Default cap on one request line.  A prioritizing-instance document
#: for a few thousand facts fits comfortably; an unbounded line would
#: let one client buffer the daemon into the ground.
MAX_LINE_BYTES = 8 * 1024 * 1024

#: Every operation the daemon understands.
OPS = ("check", "repair", "count", "classify", "ping", "stats", "drain")

#: Every ``error.code`` a response may carry.
ERROR_CODES = (
    "bad-request",
    "overloaded",
    "draining",
    "internal",
    "unavailable",
)

#: ``check`` fields forwarded into the job beyond problem/candidate.
_CHECK_OPTIONAL_FIELDS = ("semantics", "method", "timeout", "budget", "job_id")

#: ``repair`` fields forwarded into the compute job beyond the problem.
_REPAIR_OPTIONAL_FIELDS = ("semantics", "seed", "timeout", "budget", "job_id")

#: ``count`` fields forwarded into the compute job beyond problem/query.
_COUNT_OPTIONAL_FIELDS = ("semantics", "max_repairs", "job_id")


@dataclass(frozen=True)
class Request:
    """One decoded request line.

    ``payload`` keeps only the fields relevant to ``op`` — unknown
    top-level keys are rejected up front so typos (``"budjet"``) fail
    loudly instead of silently running with defaults.
    """

    op: str
    request_id: Optional[Any] = None
    payload: Dict[str, Any] = field(default_factory=dict)


_ALLOWED_KEYS = {
    "check": {"op", "id", "problem", "candidate", *_CHECK_OPTIONAL_FIELDS},
    "repair": {"op", "id", "problem", *_REPAIR_OPTIONAL_FIELDS},
    "count": {"op", "id", "problem", "query", *_COUNT_OPTIONAL_FIELDS},
    "classify": {"op", "id", "schema", "schema_spec"},
    "ping": {"op", "id"},
    "stats": {"op", "id"},
    "drain": {"op", "id"},
}


def parse_request(line: str) -> Request:
    """Decode one request line into a :class:`Request`.

    Raises
    ------
    ProtocolError
        On unparseable JSON, a non-object document, a missing or unknown
        ``op``, unknown top-level keys, or ill-typed required fields.
        The message is safe to echo to the client.
    """
    try:
        document = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from exc
    if not isinstance(document, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(document).__name__}"
        )
    op = document.get("op")
    if op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r}; expected one of {', '.join(OPS)}"
        )
    unknown = set(document) - _ALLOWED_KEYS[op]
    if unknown:
        raise ProtocolError(
            f"unknown field(s) for op {op!r}: {sorted(unknown)}"
        )
    request = Request(
        op=op,
        request_id=document.get("id"),
        payload={
            key: value
            for key, value in document.items()
            if key not in ("op", "id")
        },
    )
    _validate_payload(request)
    return request


def _validate_payload(request: Request) -> None:
    payload = request.payload
    if request.op == "check":
        problem = payload.get("problem")
        if not isinstance(problem, dict):
            raise ProtocolError(
                "check needs a 'problem' object (a repro.io prioritizing "
                "document)"
            )
        candidate = payload.get("candidate")
        if not isinstance(candidate, list):
            raise ProtocolError(
                "check needs a 'candidate' list (canonical fact indices "
                "or fact objects)"
            )
        for name, kinds in (
            ("semantics", str),
            ("method", str),
            ("job_id", str),
            ("timeout", (int, float)),
            ("budget", int),
        ):
            value = payload.get(name)
            if value is not None and (
                not isinstance(value, kinds) or isinstance(value, bool)
            ):
                raise ProtocolError(
                    f"check field {name!r} has the wrong type "
                    f"({type(value).__name__})"
                )
    elif request.op == "repair":
        problem = payload.get("problem")
        if not isinstance(problem, dict):
            raise ProtocolError(
                "repair needs a 'problem' object (a repro.io prioritizing "
                "document)"
            )
        for name, kinds in (
            ("semantics", str),
            ("job_id", str),
            ("seed", int),
            ("timeout", (int, float)),
            ("budget", int),
        ):
            value = payload.get(name)
            if value is not None and (
                not isinstance(value, kinds) or isinstance(value, bool)
            ):
                raise ProtocolError(
                    f"repair field {name!r} has the wrong type "
                    f"({type(value).__name__})"
                )
    elif request.op == "count":
        problem = payload.get("problem")
        if not isinstance(problem, dict):
            raise ProtocolError(
                "count needs a 'problem' object (a repro.io prioritizing "
                "document)"
            )
        query = payload.get("query")
        if not isinstance(query, dict):
            raise ProtocolError(
                "count needs a 'query' object (a conjunctive-query "
                "document with 'head' and 'body')"
            )
        for name, kinds in (
            ("semantics", str),
            ("job_id", str),
            ("max_repairs", int),
        ):
            value = payload.get(name)
            if value is not None and (
                not isinstance(value, kinds) or isinstance(value, bool)
            ):
                raise ProtocolError(
                    f"count field {name!r} has the wrong type "
                    f"({type(value).__name__})"
                )
    elif request.op == "classify":
        schema = payload.get("schema")
        spec = payload.get("schema_spec")
        if (schema is None) == (spec is None):
            raise ProtocolError(
                "classify needs exactly one of 'schema' (a repro.io "
                "schema document) or 'schema_spec' (CLI schema syntax)"
            )
        if schema is not None and not isinstance(schema, dict):
            raise ProtocolError("classify 'schema' must be an object")
        if spec is not None and not isinstance(spec, str):
            raise ProtocolError("classify 'schema_spec' must be a string")


def encode_response(response: Dict[str, Any]) -> bytes:
    """Render one response dict as a wire line (terminated, UTF-8).

    Keys are emitted in insertion order (``id``/``ok`` first, by
    construction in :func:`ok_response` / :func:`error_response`);
    the rendering is deterministic for a fixed response dict.
    """
    return (json.dumps(response, default=str) + "\n").encode("utf-8")


def ok_response(request_id: Optional[Any], **payload: Any) -> Dict[str, Any]:
    """A success response envelope echoing ``request_id``."""
    response: Dict[str, Any] = {"id": request_id, "ok": True}
    response.update(payload)
    return response


def error_response(
    request_id: Optional[Any], code: str, message: str
) -> Dict[str, Any]:
    """A failure response envelope with a structured error."""
    if code not in ERROR_CODES:
        raise ProtocolError(f"unknown error code {code!r}")
    return {
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": message},
    }
