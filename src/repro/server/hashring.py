"""Consistent hashing for the fleet's problem → worker placement.

The fleet front door routes every job-bearing request to the worker
that *owns* its problem, so one worker's caches (parsed problems, the
LRU result tier, memoized classification) stay hot for the problems it
keeps seeing.  A plain ``hash(key) % N`` placement would reshuffle
almost every problem when a worker dies; the classic consistent-hash
ring moves only the dead worker's arc.

Implementation: every node is planted at ``vnodes`` pseudo-random but
fully deterministic points on a sha256 ring (the digest of
``"node-name#replica"``); a key is owned by the first node clockwise
from the key's own digest.  Determinism matters doubly here — placement
must be reproducible across supervisor restarts (a restarted fleet
re-routes identically, so the persistent store and per-worker caches
line up again) and across the chaos drills that compare fleet runs
against single-daemon reference runs.

Examples
--------
>>> ring = HashRing(["w0", "w1", "w2"])
>>> owner = ring.owner("some-problem-fingerprint")
>>> owner in ("w0", "w1", "w2")
True
>>> ring.owner("some-problem-fingerprint") == owner   # deterministic
True
>>> without = ring.without(owner)                     # failover rehash
>>> without.owner("some-problem-fingerprint") != owner
True
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, List, Sequence, Tuple

from repro.exceptions import UsageError

__all__ = ["HashRing"]


def _point(label: str) -> int:
    """A node's or key's position on the ring (a 64-bit hash point)."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A deterministic consistent-hash ring over named nodes.

    Parameters
    ----------
    nodes:
        Distinct node names (the fleet uses worker names ``"w0"``...).
    vnodes:
        Ring points per node; more points smooth the load split at the
        cost of a larger (sorted, binary-searched) ring.
    """

    def __init__(self, nodes: Iterable[str], vnodes: int = 64) -> None:
        self.nodes: Tuple[str, ...] = tuple(nodes)
        if not self.nodes:
            raise UsageError("a hash ring needs at least one node")
        if len(set(self.nodes)) != len(self.nodes):
            raise UsageError(f"duplicate node names: {sorted(self.nodes)}")
        if vnodes < 1:
            raise UsageError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        points: List[Tuple[int, str]] = []
        for node in self.nodes:
            for replica in range(vnodes):
                points.append((_point(f"{node}#{replica}"), node))
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [node for _, node in points]

    def owner(self, key: str) -> str:
        """The node owning ``key`` (first node clockwise on the ring)."""
        index = bisect.bisect_right(self._points, _point(key))
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def preference(self, key: str) -> List[str]:
        """Every node ordered by ring distance from ``key``.

        The failover order: when the owner is down, the job re-routes
        to the next *distinct* node clockwise, and so on — the same
        sequence any surviving front door would compute.
        """
        index = bisect.bisect_right(self._points, _point(key))
        seen: List[str] = []
        for offset in range(len(self._owners)):
            node = self._owners[(index + offset) % len(self._owners)]
            if node not in seen:
                seen.append(node)
                if len(seen) == len(self.nodes):
                    break
        return seen

    def without(self, *excluded: str) -> "HashRing":
        """A ring with ``excluded`` nodes removed (failover rehash)."""
        remaining = [node for node in self.nodes if node not in excluded]
        if not remaining:
            raise UsageError("cannot exclude every node from the ring")
        return HashRing(remaining, vnodes=self.vnodes)

    def __contains__(self, node: str) -> bool:
        return node in self.nodes

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        return f"HashRing({list(self.nodes)}, vnodes={self.vnodes})"
