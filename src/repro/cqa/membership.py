"""Fact-level certain/possible membership in preferred repairs.

The atomic special case of preferred consistent query answering: is a
given fact in *every* optimal repair (a certain fact — it survives any
reasonable cleaning) or in *some* optimal repair (a possible fact)?
Both are computed by enumeration, with early exit, matching the
reference semantics of :mod:`repro.cqa.consistent_answers`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

from repro.core.fact import Fact
from repro.core.priority import PrioritizingInstance
from repro.cqa.consistent_answers import preferred_repairs
from repro.exceptions import ReproError

__all__ = [
    "fact_in_every_preferred_repair",
    "fact_in_some_preferred_repair",
    "fact_survival_census",
]


def _require_member(prioritizing: PrioritizingInstance, fact: Fact) -> None:
    if fact not in prioritizing.instance:
        raise ReproError(f"{fact} is not a fact of the instance")


def fact_in_every_preferred_repair(
    prioritizing: PrioritizingInstance,
    fact: Fact,
    semantics: str = "global",
) -> bool:
    """Whether ``fact`` belongs to every repair optimal under
    ``semantics`` (a *certain* fact).

    Examples
    --------
    >>> from repro.core import Schema, Fact, PriorityRelation
    >>> from repro.core import PrioritizingInstance
    >>> schema = Schema.single_relation(["1 -> 2"], arity=2)
    >>> new, old = Fact("R", (1, "new")), Fact("R", (1, "old"))
    >>> pri = PrioritizingInstance(
    ...     schema, schema.instance([new, old]),
    ...     PriorityRelation([(new, old)]),
    ... )
    >>> fact_in_every_preferred_repair(pri, new)
    True
    >>> fact_in_every_preferred_repair(pri, new, semantics="all")
    False
    """
    _require_member(prioritizing, fact)
    return all(
        fact in repair
        for repair in preferred_repairs(prioritizing, semantics=semantics)
    )


def fact_in_some_preferred_repair(
    prioritizing: PrioritizingInstance,
    fact: Fact,
    semantics: str = "global",
) -> bool:
    """Whether ``fact`` belongs to at least one optimal repair
    (a *possible* fact)."""
    _require_member(prioritizing, fact)
    return any(
        fact in repair
        for repair in preferred_repairs(prioritizing, semantics=semantics)
    )


def fact_survival_census(
    prioritizing: PrioritizingInstance,
    semantics: str = "global",
) -> Dict[str, FrozenSet[Fact]]:
    """Partition the instance by survival across the optimal repairs.

    Returns ``{"certain": ..., "possible": ..., "doomed": ...}`` —
    facts in every optimal repair, in some but not all, and in none.

    For classical priorities over schemas whose every ``Δ|R`` is
    equivalent to a single FD, the answer comes from the polynomial
    per-block analysis of :mod:`repro.core.counting_optimal`; otherwise
    one enumeration pass runs (exponential in general).
    """
    if semantics in ("global", "pareto"):
        from repro.core.counting_optimal import fast_fact_survival_census

        fast = fast_fact_survival_census(prioritizing, semantics=semantics)
        if fast is not None:
            return fast
    instance_facts = prioritizing.instance.facts
    in_all = set(instance_facts)
    in_some: set = set()
    saw_any = False
    for repair in preferred_repairs(prioritizing, semantics=semantics):
        saw_any = True
        in_all &= repair.facts
        in_some |= repair.facts
    if not saw_any:
        in_all = set()
    return {
        "certain": frozenset(in_all),
        "possible": frozenset(in_some - in_all),
        "doomed": frozenset(instance_facts - in_some),
    }
