"""Consistent query answering over classical and preferred repairs.

The consistent answers of a query ``q`` on an inconsistent instance
``I`` are ``⋂ {q(J) : J is a repair of I}`` (Arenas–Bertossi–Chomicki,
quoted in the paper's introduction).  Restricting the intersection to
*preferred* repairs yields the preferred-CQA semantics the paper's
concluding remarks pose as future work; this module computes all four
variants by repair enumeration:

========================  =============================================
``semantics``             repairs intersected
========================  =============================================
``"all"``                 every (subset) repair
``"global"``              globally-optimal repairs
``"pareto"``              Pareto-optimal repairs
``"completion"``          completion-optimal repairs
========================  =============================================

Enumeration is exponential in general — this is a reference
implementation for moderate instances and a ground truth for future
polynomial algorithms, not a scalable evaluator.  Because the semantics
nest (completion ⊆ global ⊆ pareto ⊆ all), the certain answers grow
along the same chain, which the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterator, Mapping, Tuple

from repro.core.checking import (
    check_completion_optimal,
    check_globally_optimal,
    check_pareto_optimal,
)
from repro.core.instance import Instance
from repro.core.priority import PrioritizingInstance
from repro.core.repairs import enumerate_repairs
from repro.cqa.evaluation import evaluate
from repro.cqa.queries import ConjunctiveQuery

from repro.exceptions import UsageError
__all__ = ["AnswerCensus", "answer_census", "consistent_answers", "preferred_repairs"]


def preferred_repairs(
    prioritizing: PrioritizingInstance, semantics: str = "global"
) -> Iterator[Instance]:
    """The repairs selected by ``semantics`` (see module docstring)."""
    schema = prioritizing.schema
    for repair in enumerate_repairs(schema, prioritizing.instance):
        if semantics == "all":
            yield repair
        elif semantics == "global":
            if check_globally_optimal(prioritizing, repair).is_optimal:
                yield repair
        elif semantics == "pareto":
            if check_pareto_optimal(prioritizing, repair).is_optimal:
                yield repair
        elif semantics == "completion":
            if check_completion_optimal(prioritizing, repair).is_optimal:
                yield repair
        else:
            raise UsageError(f"unknown semantics {semantics!r}")


def consistent_answers(
    query: ConjunctiveQuery,
    prioritizing: PrioritizingInstance,
    semantics: str = "global",
) -> FrozenSet[Tuple[Any, ...]]:
    """The certain answers of ``query`` over the selected repairs.

    Examples
    --------
    >>> from repro.core import Schema, Fact, PriorityRelation
    >>> from repro.core import PrioritizingInstance
    >>> from repro.cqa.queries import Atom, ConjunctiveQuery, Var
    >>> schema = Schema.single_relation(["1 -> 2"], arity=2)
    >>> f, g = Fact("R", (1, "new")), Fact("R", (1, "old"))
    >>> pri = PrioritizingInstance(
    ...     schema, schema.instance([f, g]), PriorityRelation([(f, g)])
    ... )
    >>> q = ConjunctiveQuery((Var("v"),), (Atom("R", (1, Var("v"))),))
    >>> consistent_answers(q, pri, semantics="all")
    frozenset()
    >>> consistent_answers(q, pri, semantics="global")
    frozenset({('new',)})
    """
    query.validate_against(prioritizing.schema)
    answers = None
    for repair in preferred_repairs(prioritizing, semantics=semantics):
        repair_answers = evaluate(query, repair)
        answers = (
            repair_answers if answers is None else answers & repair_answers
        )
        if answers is not None and not answers:
            break  # the intersection can only shrink
    return frozenset() if answers is None else answers


@dataclass(frozen=True)
class AnswerCensus:
    """Per-answer entailment counts over the preferred repairs.

    ``counts`` maps each answer tuple that appears in *some* preferred
    repair to the number of preferred repairs producing it; ``total``
    is the number of preferred repairs.  The certain (consistent)
    answers are exactly the tuples with ``count == total``, so this is
    the strictly-finer-grained refinement of
    :func:`consistent_answers`: instead of membership in the
    intersection, every answer carries the fraction of preferred
    repairs that support it.
    """

    counts: Mapping[Tuple[Any, ...], int]
    total: int
    semantics: str

    def fraction(self, answer: Tuple[Any, ...]) -> float:
        """The share of preferred repairs producing ``answer``."""
        if self.total == 0:
            return 0.0
        return self.counts.get(tuple(answer), 0) / self.total

    def certain(self) -> FrozenSet[Tuple[Any, ...]]:
        """Answers in every preferred repair (= the consistent answers)."""
        if self.total == 0:
            return frozenset()
        return frozenset(
            answer
            for answer, count in self.counts.items()
            if count == self.total
        )

    def possible(self) -> FrozenSet[Tuple[Any, ...]]:
        """Answers in at least one preferred repair."""
        return frozenset(self.counts)


def answer_census(
    query: ConjunctiveQuery,
    prioritizing: PrioritizingInstance,
    semantics: str = "global",
) -> AnswerCensus:
    """Tally each answer's support across the preferred repairs.

    Runs the same enumeration as :func:`consistent_answers` but keeps
    the full per-answer tallies instead of intersecting, so callers can
    report entailment counts and fractions (a boolean query's census
    is keyed by the empty tuple).

    Examples
    --------
    >>> from repro.core import Schema, Fact, PriorityRelation
    >>> from repro.core import PrioritizingInstance
    >>> from repro.cqa.queries import Atom, ConjunctiveQuery, Var
    >>> schema = Schema.single_relation(["1 -> 2"], arity=2)
    >>> f, g = Fact("R", (1, "new")), Fact("R", (1, "old"))
    >>> pri = PrioritizingInstance(
    ...     schema, schema.instance([f, g]), PriorityRelation([])
    ... )
    >>> q = ConjunctiveQuery((Var("v"),), (Atom("R", (1, Var("v"))),))
    >>> census = answer_census(q, pri, semantics="all")
    >>> census.total, census.fraction(("new",))
    (2, 0.5)
    """
    query.validate_against(prioritizing.schema)
    counts: Dict[Tuple[Any, ...], int] = {}
    total = 0
    for repair in preferred_repairs(prioritizing, semantics=semantics):
        total += 1
        for answer in evaluate(query, repair):
            counts[answer] = counts.get(answer, 0) + 1
    return AnswerCensus(counts=counts, total=total, semantics=semantics)
