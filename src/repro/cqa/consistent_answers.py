"""Consistent query answering over classical and preferred repairs.

The consistent answers of a query ``q`` on an inconsistent instance
``I`` are ``⋂ {q(J) : J is a repair of I}`` (Arenas–Bertossi–Chomicki,
quoted in the paper's introduction).  Restricting the intersection to
*preferred* repairs yields the preferred-CQA semantics the paper's
concluding remarks pose as future work; this module computes all four
variants by repair enumeration:

========================  =============================================
``semantics``             repairs intersected
========================  =============================================
``"all"``                 every (subset) repair
``"global"``              globally-optimal repairs
``"pareto"``              Pareto-optimal repairs
``"completion"``          completion-optimal repairs
========================  =============================================

Enumeration is exponential in general — this is a reference
implementation for moderate instances and a ground truth for future
polynomial algorithms, not a scalable evaluator.  Because the semantics
nest (completion ⊆ global ⊆ pareto ⊆ all), the certain answers grow
along the same chain, which the tests assert.
"""

from __future__ import annotations

from typing import Any, FrozenSet, Iterator, Tuple

from repro.core.checking import (
    check_completion_optimal,
    check_globally_optimal,
    check_pareto_optimal,
)
from repro.core.instance import Instance
from repro.core.priority import PrioritizingInstance
from repro.core.repairs import enumerate_repairs
from repro.cqa.evaluation import evaluate
from repro.cqa.queries import ConjunctiveQuery

from repro.exceptions import UsageError
__all__ = ["consistent_answers", "preferred_repairs"]


def preferred_repairs(
    prioritizing: PrioritizingInstance, semantics: str = "global"
) -> Iterator[Instance]:
    """The repairs selected by ``semantics`` (see module docstring)."""
    schema = prioritizing.schema
    for repair in enumerate_repairs(schema, prioritizing.instance):
        if semantics == "all":
            yield repair
        elif semantics == "global":
            if check_globally_optimal(prioritizing, repair).is_optimal:
                yield repair
        elif semantics == "pareto":
            if check_pareto_optimal(prioritizing, repair).is_optimal:
                yield repair
        elif semantics == "completion":
            if check_completion_optimal(prioritizing, repair).is_optimal:
                yield repair
        else:
            raise UsageError(f"unknown semantics {semantics!r}")


def consistent_answers(
    query: ConjunctiveQuery,
    prioritizing: PrioritizingInstance,
    semantics: str = "global",
) -> FrozenSet[Tuple[Any, ...]]:
    """The certain answers of ``query`` over the selected repairs.

    Examples
    --------
    >>> from repro.core import Schema, Fact, PriorityRelation
    >>> from repro.core import PrioritizingInstance
    >>> from repro.cqa.queries import Atom, ConjunctiveQuery, Var
    >>> schema = Schema.single_relation(["1 -> 2"], arity=2)
    >>> f, g = Fact("R", (1, "new")), Fact("R", (1, "old"))
    >>> pri = PrioritizingInstance(
    ...     schema, schema.instance([f, g]), PriorityRelation([(f, g)])
    ... )
    >>> q = ConjunctiveQuery((Var("v"),), (Atom("R", (1, Var("v"))),))
    >>> consistent_answers(q, pri, semantics="all")
    frozenset()
    >>> consistent_answers(q, pri, semantics="global")
    frozenset({('new',)})
    """
    query.validate_against(prioritizing.schema)
    answers = None
    for repair in preferred_repairs(prioritizing, semantics=semantics):
        repair_answers = evaluate(query, repair)
        answers = (
            repair_answers if answers is None else answers & repair_answers
        )
        if answers is not None and not answers:
            break  # the intersection can only shrink
    return frozenset() if answers is None else answers
