"""Consistent query answering over classical and preferred repairs.

The paper's stated future-work direction, implemented by enumeration as
a reference semantics: conjunctive queries (:mod:`repro.cqa.queries`),
naive evaluation (:mod:`repro.cqa.evaluation`), and certain answers over
all / Pareto-optimal / globally-optimal / completion-optimal repairs
(:mod:`repro.cqa.consistent_answers`).
"""

from repro.cqa.consistent_answers import (
    AnswerCensus,
    answer_census,
    consistent_answers,
    preferred_repairs,
)
from repro.cqa.evaluation import evaluate, holds
from repro.cqa.membership import (
    fact_in_every_preferred_repair,
    fact_in_some_preferred_repair,
    fact_survival_census,
)
from repro.cqa.queries import (
    Atom,
    ConjunctiveQuery,
    Var,
    query_from_dict,
    query_to_dict,
)

__all__ = [
    "AnswerCensus",
    "Atom",
    "ConjunctiveQuery",
    "Var",
    "answer_census",
    "evaluate",
    "holds",
    "consistent_answers",
    "preferred_repairs",
    "query_from_dict",
    "query_to_dict",
    "fact_in_every_preferred_repair",
    "fact_in_some_preferred_repair",
    "fact_survival_census",
]
