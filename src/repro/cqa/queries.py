"""Conjunctive queries over relational instances.

The paper's concluding remarks name *consistent query answering in the
framework of preferred repairs* as the next problem its tools should
unlock; this package implements the semantics by enumeration so the
library can answer such queries on moderate instances (and so future
classification work has a reference implementation to test against).

A conjunctive query is ``q(x̄) :- R1(t̄1), …, Rm(t̄m)`` where each term
is a variable or a constant and every head variable occurs in the body
(safety).  Variables are :class:`Var` objects; anything else is treated
as a constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Sequence, Tuple

from repro.core.schema import Schema
from repro.exceptions import QueryError

__all__ = ["Var", "Atom", "ConjunctiveQuery"]


@dataclass(frozen=True, order=True)
class Var:
    """A query variable, identified by name.

    Examples
    --------
    >>> Var("x") == Var("x")
    True
    >>> Var("x") == Var("y")
    False
    """

    name: str

    def __repr__(self) -> str:
        return f"?{self.name}"


@dataclass(frozen=True)
class Atom:
    """A relational atom ``R(t1, ..., tk)`` with variables or constants.

    Examples
    --------
    >>> atom = Atom("BookLoc", (Var("b"), "fiction", Var("l")))
    >>> sorted(v.name for v in atom.variables())
    ['b', 'l']
    """

    relation: str
    terms: Tuple[Any, ...]

    def __init__(self, relation: str, terms: Sequence[Any]) -> None:
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "terms", tuple(terms))
        if not self.terms:
            raise QueryError("an atom needs at least one term")

    def variables(self) -> FrozenSet[Var]:
        """The variables occurring in this atom."""
        return frozenset(t for t in self.terms if isinstance(t, Var))

    def __repr__(self) -> str:
        inner = ", ".join(repr(t) for t in self.terms)
        return f"{self.relation}({inner})"


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A safe conjunctive query ``q(head) :- body``.

    Examples
    --------
    >>> q = ConjunctiveQuery(
    ...     head=(Var("lib"),),
    ...     body=(
    ...         Atom("BookLoc", (Var("b"), "fiction", Var("lib"))),
    ...     ),
    ... )
    >>> q.is_boolean()
    False
    """

    head: Tuple[Var, ...]
    body: Tuple[Atom, ...]

    def __init__(self, head: Sequence[Var], body: Sequence[Atom]) -> None:
        object.__setattr__(self, "head", tuple(head))
        object.__setattr__(self, "body", tuple(body))
        if not self.body:
            raise QueryError("a conjunctive query needs a non-empty body")
        body_vars = frozenset(
            var for atom in self.body for var in atom.variables()
        )
        unsafe = [var for var in self.head if var not in body_vars]
        if unsafe:
            raise QueryError(
                f"unsafe head variables (not in the body): {unsafe!r}"
            )

    def is_boolean(self) -> bool:
        """Whether the query has an empty head (true/false answer)."""
        return not self.head

    def validate_against(self, schema: Schema) -> None:
        """Check every atom's relation and arity against ``schema``."""
        for atom in self.body:
            if atom.relation not in schema.signature:
                raise QueryError(f"unknown relation in query: {atom.relation!r}")
            expected = schema.signature.arity(atom.relation)
            if len(atom.terms) != expected:
                raise QueryError(
                    f"atom {atom!r} has {len(atom.terms)} terms; relation "
                    f"{atom.relation!r} has arity {expected}"
                )

    def __repr__(self) -> str:
        head = ", ".join(repr(v) for v in self.head)
        body = ", ".join(repr(a) for a in self.body)
        return f"q({head}) :- {body}"
